#include "serve/policy_server.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/logging.h"
#include "util/trace.h"

namespace rlgraph {
namespace serve {

// --- AgentServingEngine ------------------------------------------------------

AgentServingEngine::AgentServingEngine(const Json& config,
                                       SpacePtr state_space,
                                       SpacePtr action_space) {
  agent_ = make_agent(config, std::move(state_space), std::move(action_space));
  agent_->build();
}

void AgentServingEngine::load(const PolicySnapshot& snapshot) {
  RLG_REQUIRE(snapshot.valid(), "cannot load an empty policy snapshot");
  agent_->set_weights(*snapshot.weights);
}

Tensor AgentServingEngine::forward(const Tensor& obs_batch) {
  return agent_->get_actions(obs_batch, /*explore=*/false);
}

void AgentServingEngine::load_quantized(const PolicySnapshot& snapshot) {
  RLG_REQUIRE(snapshot.has_quantized(),
              "cannot load a snapshot without a quantized variant");
  agent_->import_weights_quantized(*snapshot.quantized);
}

bool AgentServingEngine::quantized_ready() const {
  return agent_->quantized_actions_enabled();
}

Tensor AgentServingEngine::forward_quantized(const Tensor& obs_batch) {
  return agent_->get_actions_quantized(obs_batch);
}

// --- RequestClassConfig ------------------------------------------------------

RequestClassConfig RequestClassConfig::from_json(const Json& config) {
  RequestClassConfig rc;
  rc.precision = precision_from_string(config.get_string("precision", "fp32"));
  rc.deadline =
      std::chrono::microseconds(config.get_int("deadline_us", 0));
  rc.tenant = config.get_string("tenant", kDefaultTenant);
  return rc;
}

// --- PolicyServer ------------------------------------------------------------

namespace {

// Explicitly configured padding buckets double as the batcher's flush
// buckets (see PolicyServerConfig::batch_buckets); the implicit
// power-of-two default stays delay-driven.
BatcherConfig batcher_config_for(const PolicyServerConfig& config) {
  BatcherConfig b = config.batcher;
  if (b.flush_buckets.empty() && config.pad_batches &&
      !config.batch_buckets.empty()) {
    b.flush_buckets = config.batch_buckets;
  }
  return b;
}

}  // namespace

PolicyServer::PolicyServer(EngineFactory factory, PolicyServerConfig config)
    : config_(config), factory_(std::move(factory)),
      canary_(config.canary, &metrics_),
      batcher_(batcher_config_for(config), &metrics_, &tenants_),
      latency_hist_(&metrics_.histogram("serve/latency_seconds")) {
  RLG_REQUIRE(config_.num_shards >= 1,
              "PolicyServer needs at least one shard, got "
                  << config_.num_shards);
  RLG_REQUIRE(factory_ != nullptr, "PolicyServer needs an engine factory");
  tenants_.set_default_config(config_.default_tenant);
  for (const auto& entry : config_.tenants) {
    tenants_.register_tenant(entry.first, entry.second);
  }
  if (config_.pad_batches) {
    buckets_ = config_.batch_buckets;
    if (buckets_.empty()) {
      for (int64_t b = 1; b < config_.batcher.max_batch_size; b *= 2) {
        buckets_.push_back(b);
      }
      buckets_.push_back(config_.batcher.max_batch_size);
    }
    std::sort(buckets_.begin(), buckets_.end());
    for (int64_t b : buckets_) {
      RLG_REQUIRE(b >= 1, "batch bucket sizes must be >= 1, got " << b);
    }
  }
}

int64_t PolicyServer::bucket_for(int64_t n) const {
  auto it = std::lower_bound(buckets_.begin(), buckets_.end(), n);
  return it == buckets_.end() ? n : *it;
}

PolicyServer::PolicyServer(Json agent_config, SpacePtr state_space,
                           SpacePtr action_space, PolicyServerConfig config)
    : PolicyServer(
          [agent_config, state_space, action_space](int) {
            return std::make_unique<AgentServingEngine>(
                agent_config, state_space, action_space);
          },
          config) {
  // Single-box state spaces get per-request admission validation; bad
  // observations then fail their own submit instead of poisoning a batch.
  if (state_space->is_box()) {
    const auto& box = static_cast<const BoxSpace&>(*state_space);
    check_obs_ = true;
    obs_dtype_ = box.dtype();
    obs_shape_ = box.value_shape();
  }
}

PolicyServer::~PolicyServer() { shutdown(); }

void PolicyServer::start() {
  if (running_) return;
  RLG_REQUIRE(!batcher_.closed(),
              "PolicyServer cannot restart after shutdown()");
  running_ = true;
  shards_.reserve(static_cast<size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_.emplace_back([this, i] { serve_loop(i); });
  }
}

void PolicyServer::shutdown() {
  batcher_.close();
  for (std::thread& t : shards_) {
    if (t.joinable()) t.join();
  }
  shards_.clear();
  // Anything still queued raced the close and has no shard left to serve it.
  batcher_.shed_all("policy server shut down");
  running_ = false;
}

ServeClock::time_point PolicyServer::deadline_from_now(
    std::chrono::microseconds d) const {
  return d.count() > 0 ? ServeClock::now() + d : kNoDeadline;
}

std::future<ActResult> PolicyServer::act_async(Tensor obs) {
  return act_async(std::move(obs), ActOptions{});
}

std::future<ActResult> PolicyServer::act_async(
    Tensor obs, std::chrono::microseconds deadline) {
  ActOptions options;
  options.deadline = deadline;
  return act_async(std::move(obs), options);
}

std::future<ActResult> PolicyServer::act_async(
    Tensor obs, const std::string& request_class) {
  ActOptions options;
  options.request_class = request_class;
  return act_async(std::move(obs), options);
}

std::future<ActResult> PolicyServer::act_async(
    Tensor obs, Precision precision, std::chrono::microseconds deadline) {
  ActOptions options;
  options.precision = precision;
  options.deadline = deadline;
  return act_async(std::move(obs), options);
}

std::future<ActResult> PolicyServer::act_async(Tensor obs,
                                               const ActOptions& options) {
  RLG_REQUIRE(running_, "PolicyServer::act before start()");
  const RequestClassConfig* rc = nullptr;
  if (!options.request_class.empty()) {
    auto it = config_.request_classes.find(options.request_class);
    if (it == config_.request_classes.end()) {
      throw NotFoundError("unknown request class '" + options.request_class +
                          "'");
    }
    rc = &it->second;
  }
  const Precision precision = options.precision.has_value()
                                  ? *options.precision
                                  : (rc != nullptr ? rc->precision
                                                   : config_.default_precision);
  const std::chrono::microseconds deadline =
      options.deadline.count() > 0
          ? options.deadline
          : (rc != nullptr && rc->deadline.count() > 0
                 ? rc->deadline
                 : config_.default_deadline);
  const std::string& tenant = !options.tenant.empty()
                                  ? options.tenant
                                  : (rc != nullptr ? rc->tenant
                                                   : std::string(kDefaultTenant));
  const uint64_t request_id =
      options.request_id != 0
          ? options.request_id
          : next_request_id_.fetch_add(1, std::memory_order_relaxed);
  if (check_obs_) {
    RLG_REQUIRE(obs.dtype() == obs_dtype_ && obs.shape() == obs_shape_,
                "act observation is " << dtype_name(obs.dtype())
                    << obs.shape().to_string() << ", expected "
                    << dtype_name(obs_dtype_) << obs_shape_.to_string()
                    << " (single observation, no batch rank)");
  }
  return batcher_.submit(std::move(obs), deadline_from_now(deadline),
                         precision, tenant, request_id);
}

ActResult PolicyServer::act(const Tensor& obs) {
  return act_async(obs).get();
}

// --- canary rollout ----------------------------------------------------------

void PolicyServer::start_canary(int64_t candidate_version) {
  PolicySnapshot candidate = store_.snapshot_version(candidate_version);
  if (!candidate.valid()) {
    throw NotFoundError("canary candidate version v" +
                        std::to_string(candidate_version) +
                        " is not in the policy store history");
  }
  // Baseline = the stable version the non-canary traffic keeps: the newest
  // published version that is not the candidate itself (publishing the
  // candidate and immediately canarying it is the normal flow).
  int64_t baseline = 0;
  const int64_t newest = store_.version();
  if (newest != candidate_version) {
    baseline = newest;
  } else {
    for (int64_t v : store_.history_versions()) {
      if (v < candidate_version) baseline = std::max(baseline, v);
    }
  }
  RLG_REQUIRE(baseline > 0,
              "canary rollout needs a published baseline version distinct "
              "from candidate v" << candidate_version);
  canary_.start(baseline, candidate_version);
}

void PolicyServer::end_canary() { canary_.end(); }

void PolicyServer::serve_loop(int shard) {
  std::unique_ptr<ServingEngine> engine;
  std::exception_ptr engine_error;
  try {
    engine = factory_(shard);
  } catch (...) {
    // A shard that cannot build its engine must still drain its share of
    // the queue — starving queued clients forever is worse than erroring
    // them.
    engine_error = std::current_exception();
    metrics_.increment("serve/engine_failures");
    RLG_LOG_ERROR << "serve shard " << shard << " failed to build its engine";
  }

  int64_t have_version = 0;
  int64_t have_quantized_version = 0;

  // Canary replica: built lazily the first time this shard sees a
  // canary-routed request, so shards pay for a second engine only while a
  // rollout actually sends them traffic.
  std::unique_ptr<ServingEngine> canary_engine;
  std::exception_ptr canary_engine_error;
  int64_t canary_have_version = 0;

  // Fail a whole group with one error; canary-outcome recording feeds the
  // controller's error-rate guardband.
  auto fail_group = [&](std::vector<ActRequest>& group,
                        const std::exception_ptr& error, RouteKind side,
                        bool record_outcomes) {
    for (ActRequest& req : group) {
      req.promise.set_exception(error);
      if (record_outcomes) canary_.record(side, 0.0, /*error=*/true);
    }
    metrics_.increment("serve/batch_failures");
  };

  // One partition of a flushed batch, served as a single forward pass
  // through `eng`. A failure stays contained to the group's own requests —
  // other groups' promises may already be satisfied. While a rollout is in
  // flight (record_outcomes), every outcome lands in the controller's
  // per-side window.
  auto serve_group = [&](std::vector<ActRequest>& group, bool quantized,
                         int64_t version, ServingEngine* eng, RouteKind side,
                         bool record_outcomes) {
    if (group.empty()) return;
    try {
      // Pad ragged flushes up to a bucket size so the engine only ever
      // sees a handful of distinct batch shapes (each hitting a cached
      // shape-specialized plan). Padding rows repeat the last observation;
      // their actions are computed and dropped below.
      const int64_t real = static_cast<int64_t>(group.size());
      const int64_t padded = config_.pad_batches ? bucket_for(real) : real;
      std::vector<Tensor> observations;
      observations.reserve(static_cast<size_t>(padded));
      for (const ActRequest& req : group) observations.push_back(req.obs);
      for (int64_t i = real; i < padded; ++i) {
        observations.push_back(observations.back());
      }
      Tensor actions;
      {
        trace::TraceSpan fwd_span("serve", "serve/forward");
        fwd_span.set_arg("batch", padded);
        fwd_span.set_arg("policy_version", version);
        fwd_span.set_arg("int8", quantized ? 1 : 0);
        Tensor stacked = stack_leading(observations);
        actions = quantized ? eng->forward_quantized(stacked)
                            : eng->forward(stacked);
      }
      std::vector<Tensor> per_request = unstack_leading(actions);
      RLG_CHECK_MSG(per_request.size() == static_cast<size_t>(padded),
                    "engine returned " << per_request.size()
                        << " actions for a batch of " << padded);
      if (padded > real) {
        metrics_.increment("serve/padded_rows", padded - real);
      }

      const ServeClock::time_point done = ServeClock::now();
      trace::TraceSpan respond_span("serve", "serve/respond");
      respond_span.set_arg("batch", real);
      for (size_t i = 0; i < group.size(); ++i) {
        const double latency =
            std::chrono::duration<double>(done - group[i].enqueued).count();
        latency_hist_->record(latency);
        if (record_outcomes) canary_.record(side, latency, /*error=*/false);
        ActResult result;
        result.action = std::move(per_request[i]);
        result.policy_version = version;
        result.served_precision =
            quantized ? Precision::kInt8 : Precision::kFp32;
        result.request_id = group[i].request_id;
        group[i].promise.set_value(std::move(result));
      }
      metrics_.increment("serve/requests", real);
      metrics_.increment("serve/batches");
      if (quantized) metrics_.increment("serve/quantized_serves", real);
    } catch (...) {
      fail_group(group, std::current_exception(), side, record_outcomes);
    }
  };

  for (;;) {
    std::vector<ActRequest> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained

    if (engine_error != nullptr) {
      for (ActRequest& req : batch) req.promise.set_exception(engine_error);
      metrics_.increment("serve/batch_failures");
      continue;
    }

    // Canary split first: routing is a pure function of each request id, so
    // the partition is identical no matter which shard flushed the batch.
    // Outcomes are only attributed while the rollout is live.
    const bool canary_active = canary_.active();
    std::vector<ActRequest> canary_group;
    if (canary_active) {
      std::vector<ActRequest> stable;
      stable.reserve(batch.size());
      for (ActRequest& req : batch) {
        if (canary_.route(req.request_id) == RouteKind::kCanary) {
          canary_group.push_back(std::move(req));
        } else {
          stable.push_back(std::move(req));
        }
      }
      batch = std::move(stable);
    }

    // Hot-swap between batches: the whole batch runs one fp32 version and
    // (when present) one quantized version. Per-variant versions move
    // independently — a fp32-only publication advances have_version while
    // the int8 plan keeps serving its last paired version's requests only
    // after a matching quantized publication (stale pairings are rejected
    // below). While a rollout is in flight the stable side stays PINNED to
    // the controller's baseline version even if newer versions (the
    // candidate among them) have been published.
    try {
      PolicySnapshot snap;
      const int64_t newest = store_.version();
      const int64_t target = canary_.serving_version(newest);
      if (target == newest) {
        snap = store_.snapshot();
      } else {
        snap = store_.snapshot_version(target);
        // Pinned version evicted from history (many publishes mid-rollout):
        // degrade to newest rather than serve nothing.
        if (!snap.valid()) snap = store_.snapshot();
      }
      // Quantized first: installing an RLGQ payload restores the fp32
      // variables by DEQUANTIZING (the standalone-process import path), so
      // the exact fp32 snapshot must load after it. The fp32 load then
      // requantizes the int8 shadows with the imported scales — an exact
      // round-trip back to the published int8 weights.
      const bool loaded_quantized =
          snap.has_quantized() && engine->supports_quantized() &&
          snap.version != have_quantized_version;
      if (loaded_quantized) {
        trace::TraceSpan swap_span("serve", "serve/load_quantized");
        swap_span.set_arg("policy_version", snap.version);
        engine->load_quantized(snap);
        have_quantized_version = snap.version;
        metrics_.set_gauge("serve/quantized_policy_version",
                           static_cast<double>(have_quantized_version));
      }
      if (snap.valid() &&
          (snap.version != have_version || loaded_quantized)) {
        trace::TraceSpan swap_span("serve", "serve/load_snapshot");
        swap_span.set_arg("policy_version", snap.version);
        engine->load(snap);
        have_version = snap.version;
        metrics_.set_gauge("serve/policy_version",
                           static_cast<double>(have_version));
      }
    } catch (...) {
      std::exception_ptr error = std::current_exception();
      fail_group(batch, error, RouteKind::kBaseline, canary_active);
      if (!canary_group.empty()) {
        fail_group(canary_group, error, RouteKind::kCanary, canary_active);
      }
      continue;
    }

    // Partition the stable side by requested precision. int8 requests only
    // route to the quantized plan while one is actually loaded AND paired
    // with the current fp32 version; otherwise they fall back to fp32
    // (counted).
    const bool quantized_live = engine->supports_quantized() &&
                                engine->quantized_ready() &&
                                have_quantized_version == have_version;
    std::vector<ActRequest> fp32_group;
    std::vector<ActRequest> int8_group;
    int64_t fallbacks = 0;
    for (ActRequest& req : batch) {
      if (req.precision == Precision::kInt8) {
        if (quantized_live) {
          int8_group.push_back(std::move(req));
          continue;
        }
        ++fallbacks;
      }
      fp32_group.push_back(std::move(req));
    }

    serve_group(fp32_group, /*quantized=*/false, have_version, engine.get(),
                RouteKind::kBaseline, canary_active);
    serve_group(int8_group, /*quantized=*/true, have_quantized_version,
                engine.get(), RouteKind::kBaseline, canary_active);

    // The canary side runs its own replica on the candidate version,
    // fp32-only (int8-in-canary counts as a quantized fallback). Build and
    // load failures fail ONLY the canary group and are recorded as canary
    // errors — a broken candidate rolls itself back through the error-rate
    // guardband instead of taking the stable side down.
    if (!canary_group.empty()) {
      for (const ActRequest& req : canary_group) {
        if (req.precision == Precision::kInt8) ++fallbacks;
      }
      if (canary_engine == nullptr && canary_engine_error == nullptr) {
        try {
          canary_engine = factory_(shard);
        } catch (...) {
          canary_engine_error = std::current_exception();
          metrics_.increment("serve/engine_failures");
          RLG_LOG_ERROR << "serve shard " << shard
                        << " failed to build its canary engine";
        }
      }
      std::exception_ptr canary_error = canary_engine_error;
      if (canary_error == nullptr) {
        try {
          const int64_t candidate = canary_.candidate_version();
          if (candidate != canary_have_version) {
            PolicySnapshot snap = store_.snapshot_version(candidate);
            RLG_REQUIRE(snap.valid(), "canary candidate v" << candidate
                            << " is not in the policy store history");
            trace::TraceSpan swap_span("serve", "serve/load_canary");
            swap_span.set_arg("policy_version", candidate);
            canary_engine->load(snap);
            canary_have_version = candidate;
          }
        } catch (...) {
          canary_error = std::current_exception();
        }
      }
      if (canary_error != nullptr) {
        fail_group(canary_group, canary_error, RouteKind::kCanary,
                   /*record_outcomes=*/true);
      } else {
        serve_group(canary_group, /*quantized=*/false, canary_have_version,
                    canary_engine.get(), RouteKind::kCanary,
                    /*record_outcomes=*/true);
      }
    }

    if (fallbacks > 0) {
      metrics_.increment("serve/quantized_fallbacks", fallbacks);
    }

    // One guardband check per served batch: cheap until a decision epoch
    // fills, and rollback flips routing before the next batch is assembled.
    if (canary_active) canary_.evaluate();
  }
}

}  // namespace serve
}  // namespace rlgraph
