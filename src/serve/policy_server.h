// PolicyServer: a trained agent as a high-throughput inference service.
//
// Clients call act()/act_async() from any number of threads; the dynamic
// batcher (serve/batcher.h) coalesces their observations and serving shards
// run one batched greedy forward pass per flush through the agent's cached
// CompiledPlan — per-call framework overhead is paid once per batch, not
// once per request. Weights come from the versioned PolicyStore: each shard
// checks the store between batches and hot-swaps to the newest snapshot, so
// every response is computed by exactly one published version (reported in
// ActResult::policy_version) and a batch never observes a torn snapshot.
//
// Threading: each shard is a dedicated thread owning a private ServingEngine
// replica — serve loops block on the batcher's condition variable, which a
// task on the shared work-stealing pool must never do (the pool may have
// zero workers under RLGRAPH_NUM_THREADS=1). The batched forward pass
// itself still shards onto the global pool through the intra-op parallel
// kernels, exactly like any other compiled-plan run.
//
// Shutdown is a graceful drain: new submits are rejected with
// OverloadedError, queued requests are served, then shards exit.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "agents/agent.h"
#include "serve/batcher.h"
#include "serve/policy_store.h"

namespace rlgraph {
namespace serve {

// One shard's exclusive model replica. load() and forward() are only ever
// called from the owning shard thread, strictly between batches, so
// implementations need no internal locking.
class ServingEngine {
 public:
  virtual ~ServingEngine() = default;
  // Install a published snapshot (called when the store has a newer
  // version than the one this engine is running).
  virtual void load(const PolicySnapshot& snapshot) = 0;
  // Greedy actions for a stacked observation batch [B, ...] -> [B, ...].
  virtual Tensor forward(const Tensor& obs_batch) = 0;
};

// The standard engine: a replica agent built from the trainer's declarative
// config. forward() is get_actions(batch, explore=false); load() is
// set_weights(), so published snapshots must use the same variable scoping
// as the replica (publishing trainer.get_weights() of an identically
// configured agent does).
class AgentServingEngine : public ServingEngine {
 public:
  AgentServingEngine(const Json& config, SpacePtr state_space,
                     SpacePtr action_space);

  void load(const PolicySnapshot& snapshot) override;
  Tensor forward(const Tensor& obs_batch) override;

  Agent& agent() { return *agent_; }

 private:
  std::unique_ptr<Agent> agent_;
};

struct PolicyServerConfig {
  // Serving shards (threads × engine replicas) pulling from one batcher.
  int num_shards = 1;
  BatcherConfig batcher;
  // Applied to act()/act_async() calls that pass no explicit deadline;
  // zero means requests wait for as long as the queue holds them.
  std::chrono::microseconds default_deadline{0};
  // Round each flushed batch up to a bucket size by repeating the last
  // observation (padding rows are computed and discarded, never answered).
  // A handful of distinct batch sizes means a handful of shape-specialized
  // plans: every forward pass hits a cached batch-N plan with a static
  // memory layout instead of compiling — or dynamically allocating — per
  // ragged flush size.
  bool pad_batches = true;
  // Ascending bucket sizes; empty = powers of two up to
  // batcher.max_batch_size. A batch larger than every bucket is served
  // unpadded at its natural size.
  std::vector<int64_t> batch_buckets;
};

class PolicyServer {
 public:
  // `factory(shard)` runs on the shard's own thread (engines are built
  // where they are used, like raylite actors).
  using EngineFactory = std::function<std::unique_ptr<ServingEngine>(int)>;

  PolicyServer(EngineFactory factory, PolicyServerConfig config = {});
  // Convenience: one AgentServingEngine replica per shard from a
  // declarative agent config. Observations submitted to act() are validated
  // against the state space's leaf signature at admission.
  PolicyServer(Json agent_config, SpacePtr state_space, SpacePtr action_space,
               PolicyServerConfig config = {});

  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  // Spawn the serving shards (idempotent).
  void start();
  // Graceful drain: reject new requests, serve what is queued, join shards.
  void shutdown();
  bool running() const { return running_; }

  // Publish here (directly or via store().publish*) to hot-swap weights.
  PolicyStore& store() { return store_; }

  // Submit one observation (no batch rank). Throws OverloadedError when
  // admission control sheds the request; the future carries TimeoutError if
  // the deadline expires in the queue, or the engine's error if the batched
  // forward pass fails.
  std::future<ActResult> act_async(Tensor obs);
  std::future<ActResult> act_async(Tensor obs,
                                   std::chrono::microseconds deadline);
  // Blocking convenience around act_async.
  ActResult act(const Tensor& obs);

  // Counters: serve/requests, serve/batches, serve/shed_overload,
  // serve/shed_deadline, serve/batch_failures, serve/padded_rows. Histograms:
  // serve/latency_seconds, serve/queue_delay_seconds, serve/batch_size.
  // Gauge: serve/policy_version.
  MetricRegistry& metrics() { return metrics_; }

 private:
  void serve_loop(int shard);
  ServeClock::time_point deadline_from_now(std::chrono::microseconds d) const;
  // Smallest configured bucket >= n, or n itself when none fits.
  int64_t bucket_for(int64_t n) const;

  const PolicyServerConfig config_;
  std::vector<int64_t> buckets_;  // resolved ascending bucket sizes
  EngineFactory factory_;
  // Expected observation signature (agent-config construction only).
  bool check_obs_ = false;
  DType obs_dtype_ = DType::kFloat32;
  Shape obs_shape_;

  MetricRegistry metrics_;
  PolicyStore store_;
  DynamicBatcher batcher_;
  Histogram* latency_hist_;
  std::vector<std::thread> shards_;
  std::atomic<bool> running_{false};
};

}  // namespace serve
}  // namespace rlgraph
