// PolicyServer: a trained agent as a high-throughput inference service.
//
// Clients call act()/act_async() from any number of threads; the dynamic
// batcher (serve/batcher.h) coalesces their observations and serving shards
// run one batched greedy forward pass per flush through the agent's cached
// CompiledPlan — per-call framework overhead is paid once per batch, not
// once per request. Weights come from the versioned PolicyStore: each shard
// checks the store between batches and hot-swaps to the newest snapshot, so
// every response is computed by exactly one published version (reported in
// ActResult::policy_version) and a batch never observes a torn snapshot.
//
// Threading: each shard is a dedicated thread owning a private ServingEngine
// replica — serve loops block on the batcher's condition variable, which a
// task on the shared work-stealing pool must never do (the pool may have
// zero workers under RLGRAPH_NUM_THREADS=1). The batched forward pass
// itself still shards onto the global pool through the intra-op parallel
// kernels, exactly like any other compiled-plan run.
//
// Shutdown is a graceful drain: new submits are rejected with
// OverloadedError, queued requests are served, then shards exit.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "agents/agent.h"
#include "serve/batcher.h"
#include "serve/canary.h"
#include "serve/policy_store.h"
#include "serve/tenant.h"

namespace rlgraph {
namespace serve {

// One shard's exclusive model replica. load() and forward() are only ever
// called from the owning shard thread, strictly between batches, so
// implementations need no internal locking.
class ServingEngine {
 public:
  virtual ~ServingEngine() = default;
  // Install a published snapshot (called when the store has a newer
  // version than the one this engine is running).
  virtual void load(const PolicySnapshot& snapshot) = 0;
  // Greedy actions for a stacked observation batch [B, ...] -> [B, ...].
  virtual Tensor forward(const Tensor& obs_batch) = 0;

  // --- int8 variant (optional) ---------------------------------------------
  // Engines that can serve quantized plans override all three. The serve
  // loop only calls load_quantized on snapshots with has_quantized(), and
  // only calls forward_quantized while quantized_ready() — int8 requests
  // fall back to fp32 otherwise.
  virtual bool supports_quantized() const { return false; }
  virtual void load_quantized(const PolicySnapshot& /*snapshot*/) {}
  virtual bool quantized_ready() const { return false; }
  virtual Tensor forward_quantized(const Tensor& obs_batch) {
    (void)obs_batch;
    throw NotFoundError("this serving engine has no quantized plan");
  }
};

// The standard engine: a replica agent built from the trainer's declarative
// config. forward() is get_actions(batch, explore=false); load() is
// set_weights(), so published snapshots must use the same variable scoping
// as the replica (publishing trainer.get_weights() of an identically
// configured agent does).
class AgentServingEngine : public ServingEngine {
 public:
  AgentServingEngine(const Json& config, SpacePtr state_space,
                     SpacePtr action_space);

  void load(const PolicySnapshot& snapshot) override;
  Tensor forward(const Tensor& obs_batch) override;

  // int8: load_quantized installs the snapshot's RLGQ payload via
  // Agent::import_weights_quantized; forward_quantized runs the agent's
  // int8 greedy plan. Ready once any quantized snapshot loaded (or the
  // factory pre-enabled quantization on the replica).
  bool supports_quantized() const override { return true; }
  void load_quantized(const PolicySnapshot& snapshot) override;
  bool quantized_ready() const override;
  Tensor forward_quantized(const Tensor& obs_batch) override;

  Agent& agent() { return *agent_; }

 private:
  std::unique_ptr<Agent> agent_;
};

// One named request class: clients tag act_async calls with the class name
// and inherit its precision, deadline, and tenant. Parsed from JSON of the
// form {"precision": "int8"|"fp32", "deadline_us": 2500, "tenant": "rt"}.
struct RequestClassConfig {
  Precision precision = Precision::kFp32;
  // Zero inherits the server's default_deadline.
  std::chrono::microseconds deadline{0};
  // Tenant the class's requests are admitted under ("" = default tenant).
  std::string tenant = kDefaultTenant;

  static RequestClassConfig from_json(const Json& config);
};

// Per-call routing options for act_async. Every field is optional; unset
// fields inherit from the request class (when named) and then the server
// defaults. This is the one submission surface the load harness and
// multi-tenant clients use — the positional act_async overloads are
// conveniences over it.
struct ActOptions {
  // Tenant for admission control and fair queueing; "" = the request
  // class's tenant, falling back to the default tenant.
  std::string tenant;
  // Named request class from PolicyServerConfig::request_classes ("" =
  // none; unknown names throw NotFoundError).
  std::string request_class;
  // Overrides the class/server precision when set.
  std::optional<Precision> precision;
  // Overrides the class/server deadline when > 0.
  std::chrono::microseconds deadline{0};
  // Deterministic canary-routing key; 0 auto-assigns from the server's
  // monotonic counter. Pass explicit ids to replay a routing schedule.
  uint64_t request_id = 0;
};

struct PolicyServerConfig {
  // Serving shards (threads × engine replicas) pulling from one batcher.
  int num_shards = 1;
  BatcherConfig batcher;
  // Applied to act()/act_async() calls that pass no explicit deadline;
  // zero means requests wait for as long as the queue holds them.
  std::chrono::microseconds default_deadline{0};
  // Round each flushed batch up to a bucket size by repeating the last
  // observation (padding rows are computed and discarded, never answered).
  // A handful of distinct batch sizes means a handful of shape-specialized
  // plans: every forward pass hits a cached batch-N plan with a static
  // memory layout instead of compiling — or dynamically allocating — per
  // ragged flush size.
  bool pad_batches = true;
  // Ascending bucket sizes; empty = powers of two up to
  // batcher.max_batch_size. A batch larger than every bucket is served
  // unpadded at its natural size. Explicitly configured buckets also become
  // the batcher's flush buckets (a queue sitting exactly on a bucket
  // dispatches immediately, padding-free) unless batcher.flush_buckets is
  // set; the implicit power-of-two default does not (its bucket 1 would
  // flush every request as a singleton).
  std::vector<int64_t> batch_buckets;
  // Precision for requests that name neither a precision nor a request
  // class.
  Precision default_precision = Precision::kFp32;
  // Named request classes for act_async(obs, class_name).
  std::map<std::string, RequestClassConfig> request_classes;
  // --- control plane ---------------------------------------------------------
  // Per-tenant admission quotas / queue bounds / DRR weights; tenants not
  // named here run under default_tenant (unlimited quota unless set).
  std::map<std::string, TenantConfig> tenants;
  TenantConfig default_tenant;
  // Guardbands for canary rollouts started via start_canary().
  CanaryConfig canary;
};

class PolicyServer {
 public:
  // `factory(shard)` runs on the shard's own thread (engines are built
  // where they are used, like raylite actors).
  using EngineFactory = std::function<std::unique_ptr<ServingEngine>(int)>;

  PolicyServer(EngineFactory factory, PolicyServerConfig config = {});
  // Convenience: one AgentServingEngine replica per shard from a
  // declarative agent config. Observations submitted to act() are validated
  // against the state space's leaf signature at admission.
  PolicyServer(Json agent_config, SpacePtr state_space, SpacePtr action_space,
               PolicyServerConfig config = {});

  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  // Spawn the serving shards (idempotent).
  void start();
  // Graceful drain: reject new requests, serve what is queued, join shards.
  void shutdown();
  bool running() const { return running_; }

  // Publish here (directly or via store().publish*) to hot-swap weights.
  PolicyStore& store() { return store_; }

  // Per-tenant admission state (register tenants / inspect quotas).
  TenantRegistry& tenants() { return tenants_; }

  // --- canary rollout --------------------------------------------------------
  // Route config.canary.weight of traffic to `candidate_version` (a
  // version published to the store; it may be newer than the serving
  // version — the baseline stays pinned while the rollout is in flight).
  // The controller auto-rolls-back on guardband breach; check
  // canary().state() or the serve/canary_* metrics. Throws NotFoundError
  // when the candidate is not in the store's version history.
  void start_canary(int64_t candidate_version);
  // Finish the rollout: back to newest-version-wins serving. Call after a
  // promote (publish nothing — the candidate is already newest), after
  // acting on a rollback (republish a fixed candidate), or to abort.
  void end_canary();
  CanaryController& canary() { return canary_; }

  // Submit one observation (no batch rank). Throws OverloadedError when
  // admission control sheds the request; the future carries TimeoutError if
  // the deadline expires in the queue, or the engine's error if the batched
  // forward pass fails.
  std::future<ActResult> act_async(Tensor obs);
  std::future<ActResult> act_async(Tensor obs,
                                   std::chrono::microseconds deadline);
  // Explicit precision (int8 requests fall back to fp32 — counted in
  // serve/quantized_fallbacks — while no quantized variant is loaded).
  std::future<ActResult> act_async(Tensor obs, Precision precision,
                                   std::chrono::microseconds deadline);
  // Route through a named request class from config.request_classes
  // (precision + deadline + tenant); throws NotFoundError for unknown
  // names.
  std::future<ActResult> act_async(Tensor obs,
                                   const std::string& request_class);
  // The full submission surface: tenant, request class, precision,
  // deadline, and an explicit request id in one place.
  std::future<ActResult> act_async(Tensor obs, const ActOptions& options);
  // Blocking convenience around act_async.
  ActResult act(const Tensor& obs);

  // Counters: serve/requests, serve/batches, serve/shed_overload,
  // serve/shed_deadline, serve/shed_total{reason=...} (reason in deadline |
  // overload | tenant_quota | tenant_queue), serve/tenant_shed{tenant=...},
  // serve/batch_failures, serve/padded_rows, serve/bucket_flushes,
  // serve/quantized_serves, serve/quantized_fallbacks, serve/canary_rollbacks
  // (+ _p99 / _error_rate splits), serve/canary_promotions.
  // Histograms: serve/latency_seconds, serve/queue_delay_seconds,
  // serve/batch_size. Gauges: serve/policy_version (per variant:
  // serve/quantized_policy_version), serve/canary_state,
  // serve/canary_rolled_back, serve/canary_weight.
  MetricRegistry& metrics() { return metrics_; }

 private:
  void serve_loop(int shard);
  ServeClock::time_point deadline_from_now(std::chrono::microseconds d) const;
  // Smallest configured bucket >= n, or n itself when none fits.
  int64_t bucket_for(int64_t n) const;

  const PolicyServerConfig config_;
  std::vector<int64_t> buckets_;  // resolved ascending bucket sizes
  EngineFactory factory_;
  // Expected observation signature (agent-config construction only).
  bool check_obs_ = false;
  DType obs_dtype_ = DType::kFloat32;
  Shape obs_shape_;

  MetricRegistry metrics_;
  PolicyStore store_;
  TenantRegistry tenants_;  // before batcher_: the batcher holds a pointer
  CanaryController canary_;
  DynamicBatcher batcher_;
  std::atomic<uint64_t> next_request_id_{1};
  Histogram* latency_hist_;
  std::vector<std::thread> shards_;
  std::atomic<bool> running_{false};
};

}  // namespace serve
}  // namespace rlgraph
