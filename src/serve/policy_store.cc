#include "serve/policy_store.h"

#include "agents/agent.h"
#include "util/errors.h"

namespace rlgraph {
namespace serve {

void PolicyStore::record_history(int64_t version) {
  // The server's snapshot for `version` is immutable once pushed; grabbing
  // it right after push() may already observe a NEWER version if another
  // publisher raced us — skip recording then (that publisher records its
  // own version, and a canary pinning a version that was never quiescent
  // has no business serving it).
  int64_t got = 0;
  std::shared_ptr<const WeightMap> weights = server_.snapshot(&got);
  if (got != version || weights == nullptr) return;
  std::lock_guard<std::mutex> lock(history_mutex_);
  history_[version] = std::move(weights);
  while (history_.size() > history_capacity_) {
    history_.erase(history_.begin());
  }
}

void PolicyStore::set_history_capacity(size_t capacity) {
  RLG_REQUIRE(capacity >= 1, "policy store history capacity must be >= 1");
  std::lock_guard<std::mutex> lock(history_mutex_);
  history_capacity_ = capacity;
  while (history_.size() > history_capacity_) {
    history_.erase(history_.begin());
  }
}

std::vector<int64_t> PolicyStore::history_versions() const {
  std::lock_guard<std::mutex> lock(history_mutex_);
  std::vector<int64_t> versions;
  versions.reserve(history_.size());
  for (const auto& entry : history_) versions.push_back(entry.first);
  return versions;
}

int64_t PolicyStore::publish(WeightMap weights) {
  const int64_t version = server_.push(std::move(weights));
  record_history(version);
  return version;
}

int64_t PolicyStore::publish_serialized(const std::vector<uint8_t>& bytes) {
  return publish(deserialize_weights(bytes));
}

int64_t PolicyStore::publish_quantized(WeightMap weights,
                                       std::vector<uint8_t> quantized_bytes) {
  const int64_t version = server_.push(std::move(weights));
  record_history(version);
  // A snapshot taken between the push and this store sees the new fp32
  // weights without the quantized variant — a brief fp32-only window, never
  // a version mismatch (snapshot() checks the pairing).
  std::lock_guard<std::mutex> lock(quantized_mutex_);
  quantized_ = std::make_shared<const std::vector<uint8_t>>(
      std::move(quantized_bytes));
  quantized_version_ = version;
  return version;
}

PolicySnapshot PolicyStore::snapshot() const {
  PolicySnapshot snap;
  snap.weights = server_.snapshot(&snap.version);
  std::lock_guard<std::mutex> lock(quantized_mutex_);
  if (quantized_ != nullptr && quantized_version_ == snap.version) {
    snap.quantized = quantized_;
  }
  return snap;
}

PolicySnapshot PolicyStore::snapshot_version(int64_t version) const {
  PolicySnapshot snap;
  {
    std::lock_guard<std::mutex> lock(history_mutex_);
    auto it = history_.find(version);
    if (it == history_.end()) return snap;  // unknown/evicted: invalid
    snap.version = version;
    snap.weights = it->second;
  }
  std::lock_guard<std::mutex> lock(quantized_mutex_);
  if (quantized_ != nullptr && quantized_version_ == version) {
    snap.quantized = quantized_;
  }
  return snap;
}

}  // namespace serve
}  // namespace rlgraph
