#include "serve/policy_store.h"

#include "agents/agent.h"

namespace rlgraph {
namespace serve {

int64_t PolicyStore::publish(WeightMap weights) {
  return server_.push(std::move(weights));
}

int64_t PolicyStore::publish_serialized(const std::vector<uint8_t>& bytes) {
  return publish(deserialize_weights(bytes));
}

int64_t PolicyStore::publish_quantized(WeightMap weights,
                                       std::vector<uint8_t> quantized_bytes) {
  const int64_t version = server_.push(std::move(weights));
  // A snapshot taken between the push and this store sees the new fp32
  // weights without the quantized variant — a brief fp32-only window, never
  // a version mismatch (snapshot() checks the pairing).
  std::lock_guard<std::mutex> lock(quantized_mutex_);
  quantized_ = std::make_shared<const std::vector<uint8_t>>(
      std::move(quantized_bytes));
  quantized_version_ = version;
  return version;
}

PolicySnapshot PolicyStore::snapshot() const {
  PolicySnapshot snap;
  snap.weights = server_.snapshot(&snap.version);
  std::lock_guard<std::mutex> lock(quantized_mutex_);
  if (quantized_ != nullptr && quantized_version_ == snap.version) {
    snap.quantized = quantized_;
  }
  return snap;
}

}  // namespace serve
}  // namespace rlgraph
