#include "serve/policy_store.h"

#include "agents/agent.h"

namespace rlgraph {
namespace serve {

int64_t PolicyStore::publish(WeightMap weights) {
  return server_.push(std::move(weights));
}

int64_t PolicyStore::publish_serialized(const std::vector<uint8_t>& bytes) {
  return publish(deserialize_weights(bytes));
}

PolicySnapshot PolicyStore::snapshot() const {
  PolicySnapshot snap;
  snap.weights = server_.snapshot(&snap.version);
  return snap;
}

}  // namespace serve
}  // namespace rlgraph
