// Versioned, hot-swappable policy weights for the serving subsystem.
//
// The trainer publishes immutable weight snapshots; serving shards pick up
// the newest one between batches. Publication rides on the ParameterServer
// shared_ptr double-buffering (execution/param_server.h): a publish swaps in
// a fresh immutable map, in-flight readers keep their version alive through
// their shared_ptr, and snapshot() returns (version, weights) from one
// critical section — a torn pair is impossible and serving never blocks on
// publication.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "execution/param_server.h"

namespace rlgraph {
namespace serve {

using WeightMap = ParameterServer::WeightMap;

// One published policy version. version == 0 (weights null) means nothing
// has been published yet; serving then runs the engines' initial weights.
// A publication may additionally carry an int8 variant: the trainer's
// Agent::export_weights_quantized() bytes (magic "RLGQ"), which serving
// engines install to answer int8-precision requests. Both variants of one
// publication share the version number.
struct PolicySnapshot {
  int64_t version = 0;
  std::shared_ptr<const WeightMap> weights;
  // Null when this version published no quantized variant.
  std::shared_ptr<const std::vector<uint8_t>> quantized;
  bool valid() const { return weights != nullptr; }
  bool has_quantized() const { return quantized != nullptr; }
};

class PolicyStore {
 public:
  // Publish a new snapshot; returns its version (1, 2, ...). Any quantized
  // variant of an earlier version stops being served (the fp32 weights
  // moved on; stale int8 weights must not answer for them).
  int64_t publish(WeightMap weights);

  // Publish from the Agent::export_weights() wire format — the trainer may
  // live in another process and ship bytes instead of tensors.
  int64_t publish_serialized(const std::vector<uint8_t>& bytes);

  // Publish fp32 weights together with their int8 variant (the trainer's
  // export_weights_quantized() bytes); both carry the returned version.
  int64_t publish_quantized(WeightMap weights,
                            std::vector<uint8_t> quantized_bytes);

  // Atomic (version, weights[, quantized]) of the newest publication. The
  // quantized payload is only attached when it belongs to exactly the
  // returned version.
  PolicySnapshot snapshot() const;

  // A specific published version, for canary routing: while a rollout is in
  // flight the baseline shards keep serving the pinned stable version even
  // though a newer candidate has been published. Versions come from a
  // bounded history (the newest `history_capacity` publications, default
  // 8); an unknown or evicted version returns an invalid snapshot.
  // Quantized variants attach only to the version they were published with.
  PolicySnapshot snapshot_version(int64_t version) const;

  // Resize the version history (>= 1); evicts oldest beyond the new bound.
  void set_history_capacity(size_t capacity);

  // Versions currently held in the history, ascending (e.g. to pick a
  // canary baseline: the newest version that is not the candidate).
  std::vector<int64_t> history_versions() const;

  int64_t version() const { return server_.version(); }

  // The underlying server, e.g. to attach a staleness gauge.
  ParameterServer& parameter_server() { return server_; }

 private:
  void record_history(int64_t version);

  ParameterServer server_;
  mutable std::mutex quantized_mutex_;
  std::shared_ptr<const std::vector<uint8_t>> quantized_;
  int64_t quantized_version_ = 0;  // version quantized_ belongs to

  // Bounded version -> weights history backing snapshot_version(). Entries
  // share the immutable maps the ParameterServer published — history costs
  // shared_ptrs, not weight copies.
  mutable std::mutex history_mutex_;
  size_t history_capacity_ = 8;
  std::map<int64_t, std::shared_ptr<const WeightMap>> history_;
};

}  // namespace serve
}  // namespace rlgraph
