// Versioned, hot-swappable policy weights for the serving subsystem.
//
// The trainer publishes immutable weight snapshots; serving shards pick up
// the newest one between batches. Publication rides on the ParameterServer
// shared_ptr double-buffering (execution/param_server.h): a publish swaps in
// a fresh immutable map, in-flight readers keep their version alive through
// their shared_ptr, and snapshot() returns (version, weights) from one
// critical section — a torn pair is impossible and serving never blocks on
// publication.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "execution/param_server.h"

namespace rlgraph {
namespace serve {

using WeightMap = ParameterServer::WeightMap;

// One published policy version. version == 0 (weights null) means nothing
// has been published yet; serving then runs the engines' initial weights.
struct PolicySnapshot {
  int64_t version = 0;
  std::shared_ptr<const WeightMap> weights;
  bool valid() const { return weights != nullptr; }
};

class PolicyStore {
 public:
  // Publish a new snapshot; returns its version (1, 2, ...).
  int64_t publish(WeightMap weights);

  // Publish from the Agent::export_weights() wire format — the trainer may
  // live in another process and ship bytes instead of tensors.
  int64_t publish_serialized(const std::vector<uint8_t>& bytes);

  // Atomic (version, weights) pair of the newest publication.
  PolicySnapshot snapshot() const;

  int64_t version() const { return server_.version(); }

  // The underlying server, e.g. to attach a staleness gauge.
  ParameterServer& parameter_server() { return server_; }

 private:
  ParameterServer server_;
};

}  // namespace serve
}  // namespace rlgraph
