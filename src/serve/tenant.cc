#include "serve/tenant.h"

#include <algorithm>

#include "util/errors.h"

namespace rlgraph {
namespace serve {

TenantConfig TenantConfig::from_json(const Json& config) {
  TenantConfig tc;
  tc.quota_qps = config.get_double("quota_qps", 0.0);
  tc.burst = config.get_double("burst", 0.0);
  tc.queue_capacity =
      static_cast<size_t>(config.get_int("queue_capacity", 0));
  tc.weight = static_cast<uint64_t>(config.get_int("weight", 1));
  RLG_REQUIRE(tc.quota_qps >= 0.0, "tenant quota_qps must be >= 0");
  RLG_REQUIRE(tc.burst >= 0.0, "tenant burst must be >= 0");
  RLG_REQUIRE(tc.weight >= 1, "tenant weight must be >= 1");
  return tc;
}

void TenantRegistry::set_default_config(TenantConfig config) {
  RLG_REQUIRE(config.weight >= 1, "tenant weight must be >= 1");
  std::lock_guard<std::mutex> lock(mutex_);
  default_config_ = config;
}

void TenantRegistry::register_tenant(const std::string& id,
                                     TenantConfig config) {
  RLG_REQUIRE(config.weight >= 1, "tenant weight must be >= 1, tenant '"
                                      << id << "'");
  RLG_REQUIRE(config.quota_qps >= 0.0 && config.burst >= 0.0,
              "tenant quota/burst must be >= 0, tenant '" << id << "'");
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket b;
  b.config = config;
  b.tokens = 0.0;  // filled on first refill (buckets start full)
  buckets_[id] = b;
}

bool TenantRegistry::has(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.count(id) > 0;
}

TenantConfig TenantRegistry::config(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(id);
  return it == buckets_.end() ? default_config_ : it->second.config;
}

std::vector<std::string> TenantRegistry::tenant_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(buckets_.size());
  for (const auto& [id, bucket] : buckets_) ids.push_back(id);
  return ids;
}

TenantRegistry::Bucket& TenantRegistry::bucket_locked(
    const std::string& id) const {
  auto it = buckets_.find(id);
  if (it == buckets_.end()) {
    Bucket b;
    b.config = default_config_;
    it = buckets_.emplace(id, b).first;
  }
  return it->second;
}

void TenantRegistry::refill(Bucket& b, ServeClock::time_point now) {
  const double burst = b.config.burst > 0.0
                           ? b.config.burst
                           : std::max(b.config.quota_qps, 1.0);
  if (!b.primed) {
    // Buckets start full: a tenant's first burst up to `burst` requests is
    // admitted even before any quota has "accrued".
    b.tokens = burst;
    b.last = now;
    b.primed = true;
    return;
  }
  if (now > b.last) {
    const double dt = std::chrono::duration<double>(now - b.last).count();
    b.tokens = std::min(burst, b.tokens + dt * b.config.quota_qps);
    b.last = now;
  }
}

bool TenantRegistry::try_admit(const std::string& id,
                               ServeClock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& b = bucket_locked(id);
  if (b.config.quota_qps <= 0.0) return true;  // unlimited
  refill(b, now);
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

double TenantRegistry::tokens(const std::string& id,
                              ServeClock::time_point now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& b = bucket_locked(id);
  if (b.config.quota_qps <= 0.0) {
    return b.config.burst > 0.0 ? b.config.burst
                                : std::max(b.config.quota_qps, 1.0);
  }
  refill(b, now);
  return b.tokens;
}

}  // namespace serve
}  // namespace rlgraph
