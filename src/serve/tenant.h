// Multi-tenant admission control for the serving control plane.
//
// Every act request names a tenant (the empty string is the default tenant,
// so single-tenant callers need no changes). A TenantRegistry holds the
// per-tenant policy knobs — a token-bucket admission quota, a bound on the
// tenant's sub-queue inside the DynamicBatcher, and a deficit-round-robin
// weight — and the live token-bucket state. Admission is checked at
// submit() time, before a request ever touches the shared queue: a tenant
// that offers 10x its quota is shed at its own bucket with a tenant-scoped
// OverloadedError while every other tenant's traffic is untouched.
//
// Token buckets take the current time as an argument instead of reading the
// clock themselves, so quota tests replay deterministically from synthetic
// timestamps.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace rlgraph {
namespace serve {

using ServeClock = std::chrono::steady_clock;

// No deadline: the request waits as long as the queue holds it.
inline constexpr ServeClock::time_point kNoDeadline =
    ServeClock::time_point::max();

// The id every request without an explicit tenant runs under.
inline const std::string kDefaultTenant = "";

struct TenantConfig {
  // Steady-state admission quota in requests/second; 0 = unlimited (the
  // token bucket always admits).
  double quota_qps = 0.0;
  // Token-bucket depth — how far above quota_qps a short burst may go.
  // 0 picks max(quota_qps, 1): one second of quota, at least one request.
  double burst = 0.0;
  // Bound on this tenant's sub-queue inside the batcher; 0 inherits the
  // batcher's per-tenant default (BatcherConfig::tenant_queue_capacity).
  size_t queue_capacity = 0;
  // Deficit-round-robin quantum: how many requests this tenant may place
  // into each assembling batch per scheduling round, relative to the other
  // tenants with queued work. Must be >= 1.
  uint64_t weight = 1;

  // {"quota_qps": 100, "burst": 200, "queue_capacity": 64, "weight": 2}
  static TenantConfig from_json(const Json& config);
};

class TenantRegistry {
 public:
  TenantRegistry() = default;

  // Unknown tenants are admitted under this config (defaults to an
  // unlimited quota so an unconfigured registry changes nothing).
  void set_default_config(TenantConfig config);
  void register_tenant(const std::string& id, TenantConfig config);
  bool has(const std::string& id) const;
  // The registered config, or the default config for unknown tenants.
  TenantConfig config(const std::string& id) const;
  std::vector<std::string> tenant_ids() const;

  // Token-bucket admission: refill from elapsed time at quota_qps (capped
  // at burst), then spend one token. Buckets start full. Returns false —
  // shed this request, the tenant is over quota — when no token is
  // available. Tenants with quota_qps == 0 always admit.
  bool try_admit(const std::string& id, ServeClock::time_point now);

  // Remaining tokens after refilling to `now` (test/introspection hook;
  // unlimited tenants report burst).
  double tokens(const std::string& id, ServeClock::time_point now) const;

 private:
  struct Bucket {
    TenantConfig config;
    double tokens = 0.0;
    ServeClock::time_point last{};
    bool primed = false;  // first admit initializes `last`
  };

  // Must hold mutex_. Creates the bucket (default config) on first sight.
  Bucket& bucket_locked(const std::string& id) const;
  static void refill(Bucket& b, ServeClock::time_point now);

  mutable std::mutex mutex_;
  mutable std::map<std::string, Bucket> buckets_;
  TenantConfig default_config_;
};

}  // namespace serve
}  // namespace rlgraph
