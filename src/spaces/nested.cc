#include "spaces/nested.h"

#include <algorithm>
#include <sstream>

#include "spaces/space.h"
#include "util/errors.h"

namespace rlgraph {

NestedTensor NestedTensor::dict(
    std::vector<std::pair<std::string, NestedTensor>> entries) {
  NestedTensor out;
  out.kind_ = Kind::kDict;
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.dict_ = std::move(entries);
  return out;
}

NestedTensor NestedTensor::tuple(std::vector<NestedTensor> entries) {
  NestedTensor out;
  out.kind_ = Kind::kTuple;
  out.tuple_ = std::move(entries);
  return out;
}

const Tensor& NestedTensor::tensor() const {
  RLG_REQUIRE(is_tensor(), "NestedTensor is not a plain tensor");
  return tensor_;
}

const std::vector<std::pair<std::string, NestedTensor>>&
NestedTensor::dict_entries() const {
  RLG_REQUIRE(is_dict(), "NestedTensor is not a dict");
  return dict_;
}

const std::vector<NestedTensor>& NestedTensor::tuple_entries() const {
  RLG_REQUIRE(is_tuple(), "NestedTensor is not a tuple");
  return tuple_;
}

const NestedTensor& NestedTensor::at(const std::string& key) const {
  for (const auto& [k, v] : dict_entries()) {
    if (k == key) return v;
  }
  throw NotFoundError("NestedTensor key not found: " + key);
}

const NestedTensor& NestedTensor::at(size_t index) const {
  const auto& entries = tuple_entries();
  RLG_REQUIRE(index < entries.size(), "NestedTensor tuple index out of range");
  return entries[index];
}

void NestedTensor::flatten_into(
    std::vector<std::pair<std::string, Tensor>>* out,
    const std::string& prefix) const {
  switch (kind_) {
    case Kind::kTensor:
      out->emplace_back(prefix, tensor_);
      return;
    case Kind::kDict:
      for (const auto& [k, v] : dict_) {
        v.flatten_into(out, prefix.empty() ? k : prefix + "/" + k);
      }
      return;
    case Kind::kTuple:
      for (size_t i = 0; i < tuple_.size(); ++i) {
        std::string p = std::to_string(i);
        tuple_[i].flatten_into(out, prefix.empty() ? p : prefix + "/" + p);
      }
      return;
  }
}

std::vector<std::pair<std::string, Tensor>> NestedTensor::flatten() const {
  std::vector<std::pair<std::string, Tensor>> out;
  flatten_into(&out, "");
  return out;
}

namespace {

NestedTensor unflatten_rec(
    const Space& space,
    const std::vector<std::pair<std::string, Tensor>>& leaves,
    size_t* cursor) {
  switch (space.kind()) {
    case SpaceKind::kBox: {
      RLG_REQUIRE(*cursor < leaves.size(), "unflatten: not enough leaves");
      return NestedTensor(leaves[(*cursor)++].second);
    }
    case SpaceKind::kDict: {
      const auto& ds = static_cast<const DictSpace&>(space);
      std::vector<std::pair<std::string, NestedTensor>> entries;
      for (const auto& [k, sub] : ds.entries()) {
        entries.emplace_back(k, unflatten_rec(*sub, leaves, cursor));
      }
      return NestedTensor::dict(std::move(entries));
    }
    case SpaceKind::kTuple: {
      const auto& ts = static_cast<const TupleSpace&>(space);
      std::vector<NestedTensor> entries;
      for (const SpacePtr& sub : ts.entries()) {
        entries.push_back(unflatten_rec(*sub, leaves, cursor));
      }
      return NestedTensor::tuple(std::move(entries));
    }
  }
  throw Error("unreachable");
}

}  // namespace

NestedTensor NestedTensor::unflatten(
    const Space& space,
    const std::vector<std::pair<std::string, Tensor>>& leaves) {
  size_t cursor = 0;
  NestedTensor out = unflatten_rec(space, leaves, &cursor);
  RLG_REQUIRE(cursor == leaves.size(),
              "unflatten: leaf count mismatch (consumed "
                  << cursor << " of " << leaves.size() << ")");
  return out;
}

std::string NestedTensor::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kTensor:
      os << tensor_.to_string(8);
      break;
    case Kind::kDict: {
      os << "{";
      bool first = true;
      for (const auto& [k, v] : dict_) {
        if (!first) os << ", ";
        first = false;
        os << k << ": " << v.to_string();
      }
      os << "}";
      break;
    }
    case Kind::kTuple: {
      os << "(";
      for (size_t i = 0; i < tuple_.size(); ++i) {
        if (i > 0) os << ", ";
        os << tuple_[i].to_string();
      }
      os << ")";
      break;
    }
  }
  return os.str();
}

}  // namespace rlgraph
