// NestedTensor: a value of a (possibly container) space — a tensor, an
// ordered string-keyed map, or a tuple. This is what flows through agent
// APIs when states/actions are nested records, and what the splitter/merger
// components decompose.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace rlgraph {

class Space;

class NestedTensor {
 public:
  enum class Kind { kTensor, kDict, kTuple };

  NestedTensor() : kind_(Kind::kTensor) {}
  NestedTensor(Tensor t) : kind_(Kind::kTensor), tensor_(std::move(t)) {}
  static NestedTensor dict(
      std::vector<std::pair<std::string, NestedTensor>> entries);
  static NestedTensor tuple(std::vector<NestedTensor> entries);

  Kind kind() const { return kind_; }
  bool is_tensor() const { return kind_ == Kind::kTensor; }
  bool is_dict() const { return kind_ == Kind::kDict; }
  bool is_tuple() const { return kind_ == Kind::kTuple; }

  const Tensor& tensor() const;
  const std::vector<std::pair<std::string, NestedTensor>>& dict_entries()
      const;
  const std::vector<NestedTensor>& tuple_entries() const;
  const NestedTensor& at(const std::string& key) const;
  const NestedTensor& at(size_t index) const;

  // Flatten to ordered (path, tensor) leaves, matching Space::flatten order.
  std::vector<std::pair<std::string, Tensor>> flatten() const;
  // Rebuild from leaves using a space as the structure template.
  static NestedTensor unflatten(
      const Space& space,
      const std::vector<std::pair<std::string, Tensor>>& leaves);

  std::string to_string() const;

 private:
  void flatten_into(std::vector<std::pair<std::string, Tensor>>* out,
                    const std::string& prefix) const;

  Kind kind_;
  Tensor tensor_;
  std::vector<std::pair<std::string, NestedTensor>> dict_;
  std::vector<NestedTensor> tuple_;
};

}  // namespace rlgraph
