#include "spaces/space.h"

#include <algorithm>
#include <sstream>

#include "spaces/nested.h"
#include "tensor/kernels.h"
#include "util/errors.h"

namespace rlgraph {

void Space::flatten(std::vector<std::pair<std::string, SpacePtr>>* out,
                    const std::string& prefix) const {
  flatten_into(out, prefix);
}

// --- BoxSpace ---------------------------------------------------------------

BoxSpace::BoxSpace(DType dtype, Shape value_shape, double low, double high,
                   int64_t num_categories)
    : dtype_(dtype), value_shape_(std::move(value_shape)), low_(low),
      high_(high), num_categories_(num_categories) {
  RLG_REQUIRE(value_shape_.fully_specified(),
              "box value shape must be fully specified, got "
                  << value_shape_.to_string());
  RLG_REQUIRE(low <= high, "box bounds inverted: [" << low << ", " << high
                                                    << "]");
}

BoxSpace::BoxSpace(DType dtype, Shape value_shape, std::vector<double> lows,
                   std::vector<double> highs)
    : dtype_(dtype), value_shape_(std::move(value_shape)), lows_(std::move(lows)),
      highs_(std::move(highs)), num_categories_(0) {
  RLG_REQUIRE(value_shape_.fully_specified(),
              "box value shape must be fully specified, got "
                  << value_shape_.to_string());
  RLG_REQUIRE(
      static_cast<int64_t>(lows_.size()) == value_shape_.num_elements() &&
          lows_.size() == highs_.size(),
      "per-dim bounds need one (low, high) per value element: got "
          << lows_.size() << "/" << highs_.size() << " for shape "
          << value_shape_.to_string());
  low_ = lows_[0];
  high_ = highs_[0];
  for (size_t i = 0; i < lows_.size(); ++i) {
    RLG_REQUIRE(lows_[i] <= highs_[i], "box bounds inverted at dim "
                                           << i << ": [" << lows_[i] << ", "
                                           << highs_[i] << "]");
    low_ = std::min(low_, lows_[i]);
    high_ = std::max(high_, highs_[i]);
  }
}

Shape BoxSpace::full_shape() const {
  Shape s = value_shape_;
  if (time_rank_) s = s.prepend(kUnknownDim);
  if (batch_rank_) s = s.prepend(kUnknownDim);
  return s;
}

SpacePtr BoxSpace::with_ranks(bool batch, bool time) const {
  std::shared_ptr<BoxSpace> out;
  if (per_dim_bounds()) {
    out = std::make_shared<BoxSpace>(dtype_, value_shape_, lows_, highs_);
  } else {
    out = std::make_shared<BoxSpace>(dtype_, value_shape_, low_, high_,
                                     num_categories_);
  }
  out->batch_rank_ = batch;
  out->time_rank_ = time;
  return out;
}

NestedTensor BoxSpace::sample(Rng& rng, int64_t batch_size,
                              int64_t time_size) const {
  Shape s = value_shape_;
  if (time_rank_) s = s.prepend(time_size);
  if (batch_rank_) s = s.prepend(batch_size);
  switch (dtype_) {
    case DType::kFloat32: {
      double lo = std::max(low_, -1.0e4);
      double hi = std::min(high_, 1.0e4);
      Tensor t = kernels::random_uniform(s, lo, hi, rng);
      if (per_dim_bounds()) {
        // Re-scale each flattened value element into its own interval.
        float* p = t.mutable_data<float>();
        const int64_t n = value_shape_.num_elements();
        for (int64_t i = 0; i < t.num_elements(); ++i) {
          double u = (p[i] - lo) / (hi > lo ? hi - lo : 1.0);
          int64_t d = i % n;
          p[i] = static_cast<float>(lows_[d] + u * (highs_[d] - lows_[d]));
        }
      }
      return NestedTensor(std::move(t));
    }
    case DType::kInt32: {
      int64_t n = num_categories_ > 0
                      ? num_categories_
                      : static_cast<int64_t>(high_ - low_) + 1;
      Tensor t = kernels::random_int(s, n, rng);
      if (num_categories_ == 0 && low_ != 0.0) {
        int32_t* p = t.mutable_data<int32_t>();
        for (int64_t i = 0; i < t.num_elements(); ++i) {
          p[i] += static_cast<int32_t>(low_);
        }
      }
      return NestedTensor(std::move(t));
    }
    case DType::kBool: {
      Tensor t(DType::kBool, s);
      uint8_t* p = t.mutable_data<uint8_t>();
      for (int64_t i = 0; i < t.num_elements(); ++i) {
        p[i] = rng.bernoulli(0.5) ? 1 : 0;
      }
      return NestedTensor(std::move(t));
    }
    case DType::kUInt8: {
      Tensor t = kernels::random_int(s, 256, rng).cast(DType::kUInt8);
      return NestedTensor(std::move(t));
    }
  }
  throw ValueError("unknown dtype in sample");
}

NestedTensor BoxSpace::zeros(int64_t batch_size, int64_t time_size) const {
  Shape s = value_shape_;
  if (time_rank_) s = s.prepend(time_size);
  if (batch_rank_) s = s.prepend(batch_size);
  return NestedTensor(Tensor::zeros(dtype_, s));
}

bool BoxSpace::contains(const NestedTensor& value) const {
  if (!value.is_tensor()) return false;
  const Tensor& t = value.tensor();
  if (t.dtype() != dtype_) return false;
  if (!full_shape().matches(t.shape())) return false;
  if (dtype_ == DType::kFloat32 || dtype_ == DType::kInt32) {
    if (per_dim_bounds()) {
      const int64_t n = value_shape_.num_elements();
      for (int64_t i = 0; i < t.num_elements(); ++i) {
        double v = t.at_flat(i);
        int64_t d = i % n;
        if (v < lows_[d] || v > highs_[d]) return false;
      }
      return true;
    }
    double lo = num_categories_ > 0 ? 0.0 : low_;
    double hi = num_categories_ > 0 ? static_cast<double>(num_categories_ - 1)
                                    : high_;
    for (int64_t i = 0; i < t.num_elements(); ++i) {
      double v = t.at_flat(i);
      if (v < lo || v > hi) return false;
    }
  }
  return true;
}

bool BoxSpace::equals(const Space& other) const {
  if (other.kind() != SpaceKind::kBox) return false;
  const auto& o = static_cast<const BoxSpace&>(other);
  return dtype_ == o.dtype_ && value_shape_ == o.value_shape_ &&
         low_ == o.low_ && high_ == o.high_ && lows_ == o.lows_ &&
         highs_ == o.highs_ && num_categories_ == o.num_categories_ &&
         batch_rank_ == o.batch_rank_ && time_rank_ == o.time_rank_;
}

std::string BoxSpace::to_string() const {
  std::ostringstream os;
  os << dtype_name(dtype_) << "Box" << full_shape().to_string();
  if (num_categories_ > 0) os << "{" << num_categories_ << "}";
  return os.str();
}

Json BoxSpace::to_json() const {
  Json j;
  switch (dtype_) {
    case DType::kFloat32: j["type"] = "float"; break;
    case DType::kInt32: j["type"] = "int"; break;
    case DType::kBool: j["type"] = "bool"; break;
    case DType::kUInt8: j["type"] = "uint8"; break;
  }
  JsonArray dims;
  for (int64_t d : value_shape_.dims()) dims.push_back(Json(d));
  j["shape"] = Json(dims);
  if (num_categories_ > 0) {
    j["num_categories"] = Json(num_categories_);
  } else if (dtype_ == DType::kFloat32) {
    if (per_dim_bounds()) {
      JsonArray lows, highs;
      for (double v : lows_) lows.push_back(Json(v));
      for (double v : highs_) highs.push_back(Json(v));
      j["low"] = Json(lows);
      j["high"] = Json(highs);
    } else {
      j["low"] = Json(low_);
      j["high"] = Json(high_);
    }
  }
  if (batch_rank_) j["add_batch_rank"] = Json(true);
  if (time_rank_) j["add_time_rank"] = Json(true);
  return j;
}

void BoxSpace::flatten_into(
    std::vector<std::pair<std::string, SpacePtr>>* out,
    const std::string& prefix) const {
  out->emplace_back(prefix, shared_from_this());
}

SpacePtr FloatBox(Shape shape, double low, double high) {
  return std::make_shared<BoxSpace>(DType::kFloat32, std::move(shape), low,
                                    high);
}

SpacePtr FloatBox(Shape shape, std::vector<double> lows,
                  std::vector<double> highs) {
  return std::make_shared<BoxSpace>(DType::kFloat32, std::move(shape),
                                    std::move(lows), std::move(highs));
}

SpacePtr IntBox(int64_t num_categories, Shape shape) {
  RLG_REQUIRE(num_categories > 0, "IntBox requires num_categories > 0");
  return std::make_shared<BoxSpace>(DType::kInt32, std::move(shape), 0,
                                    static_cast<double>(num_categories - 1),
                                    num_categories);
}

SpacePtr BoolBox(Shape shape) {
  return std::make_shared<BoxSpace>(DType::kBool, std::move(shape), 0, 1);
}

// --- DictSpace ---------------------------------------------------------------

DictSpace::DictSpace(std::vector<std::pair<std::string, SpacePtr>> entries)
    : entries_(std::move(entries)) {
  RLG_REQUIRE(!entries_.empty(), "Dict space requires at least one entry");
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < entries_.size(); ++i) {
    RLG_REQUIRE(entries_[i].first != entries_[i - 1].first,
                "duplicate Dict space key: " << entries_[i].first);
  }
}

SpacePtr DictSpace::at(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  throw NotFoundError("Dict space key not found: " + key);
}

SpacePtr DictSpace::with_ranks(bool batch, bool time) const {
  std::vector<std::pair<std::string, SpacePtr>> entries;
  entries.reserve(entries_.size());
  for (const auto& [k, v] : entries_) {
    entries.emplace_back(k, v->with_ranks(batch, time));
  }
  auto out = std::make_shared<DictSpace>(std::move(entries));
  out->batch_rank_ = batch;
  out->time_rank_ = time;
  return out;
}

NestedTensor DictSpace::sample(Rng& rng, int64_t batch_size,
                               int64_t time_size) const {
  std::vector<std::pair<std::string, NestedTensor>> entries;
  entries.reserve(entries_.size());
  for (const auto& [k, v] : entries_) {
    entries.emplace_back(k, v->sample(rng, batch_size, time_size));
  }
  return NestedTensor::dict(std::move(entries));
}

NestedTensor DictSpace::zeros(int64_t batch_size, int64_t time_size) const {
  std::vector<std::pair<std::string, NestedTensor>> entries;
  entries.reserve(entries_.size());
  for (const auto& [k, v] : entries_) {
    entries.emplace_back(k, v->zeros(batch_size, time_size));
  }
  return NestedTensor::dict(std::move(entries));
}

bool DictSpace::contains(const NestedTensor& value) const {
  if (!value.is_dict()) return false;
  const auto& ve = value.dict_entries();
  if (ve.size() != entries_.size()) return false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (ve[i].first != entries_[i].first) return false;
    if (!entries_[i].second->contains(ve[i].second)) return false;
  }
  return true;
}

bool DictSpace::equals(const Space& other) const {
  if (other.kind() != SpaceKind::kDict) return false;
  const auto& o = static_cast<const DictSpace&>(other);
  if (entries_.size() != o.entries_.size()) return false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first != o.entries_[i].first) return false;
    if (!entries_[i].second->equals(*o.entries_[i].second)) return false;
  }
  return true;
}

std::string DictSpace::to_string() const {
  std::ostringstream os;
  os << "Dict{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) os << ", ";
    os << entries_[i].first << ": " << entries_[i].second->to_string();
  }
  os << "}";
  return os.str();
}

Json DictSpace::to_json() const {
  Json j;
  j["type"] = "dict";
  Json spaces;
  for (const auto& [k, v] : entries_) spaces[k] = v->to_json();
  j["spaces"] = spaces;
  return j;
}

void DictSpace::flatten_into(
    std::vector<std::pair<std::string, SpacePtr>>* out,
    const std::string& prefix) const {
  for (const auto& [k, v] : entries_) {
    v->flatten(out, prefix.empty() ? k : prefix + "/" + k);
  }
}

// --- TupleSpace ----------------------------------------------------------------

TupleSpace::TupleSpace(std::vector<SpacePtr> entries)
    : entries_(std::move(entries)) {
  RLG_REQUIRE(!entries_.empty(), "Tuple space requires at least one entry");
}

SpacePtr TupleSpace::with_ranks(bool batch, bool time) const {
  std::vector<SpacePtr> entries;
  entries.reserve(entries_.size());
  for (const SpacePtr& v : entries_) entries.push_back(v->with_ranks(batch, time));
  auto out = std::make_shared<TupleSpace>(std::move(entries));
  out->batch_rank_ = batch;
  out->time_rank_ = time;
  return out;
}

NestedTensor TupleSpace::sample(Rng& rng, int64_t batch_size,
                                int64_t time_size) const {
  std::vector<NestedTensor> entries;
  entries.reserve(entries_.size());
  for (const SpacePtr& v : entries_) {
    entries.push_back(v->sample(rng, batch_size, time_size));
  }
  return NestedTensor::tuple(std::move(entries));
}

NestedTensor TupleSpace::zeros(int64_t batch_size, int64_t time_size) const {
  std::vector<NestedTensor> entries;
  entries.reserve(entries_.size());
  for (const SpacePtr& v : entries_) {
    entries.push_back(v->zeros(batch_size, time_size));
  }
  return NestedTensor::tuple(std::move(entries));
}

bool TupleSpace::contains(const NestedTensor& value) const {
  if (!value.is_tuple()) return false;
  const auto& ve = value.tuple_entries();
  if (ve.size() != entries_.size()) return false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i]->contains(ve[i])) return false;
  }
  return true;
}

bool TupleSpace::equals(const Space& other) const {
  if (other.kind() != SpaceKind::kTuple) return false;
  const auto& o = static_cast<const TupleSpace&>(other);
  if (entries_.size() != o.entries_.size()) return false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i]->equals(*o.entries_[i])) return false;
  }
  return true;
}

std::string TupleSpace::to_string() const {
  std::ostringstream os;
  os << "Tuple(";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) os << ", ";
    os << entries_[i]->to_string();
  }
  os << ")";
  return os.str();
}

Json TupleSpace::to_json() const {
  Json j;
  j["type"] = "tuple";
  JsonArray spaces;
  for (const SpacePtr& v : entries_) spaces.push_back(v->to_json());
  j["spaces"] = Json(spaces);
  return j;
}

void TupleSpace::flatten_into(
    std::vector<std::pair<std::string, SpacePtr>>* out,
    const std::string& prefix) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    std::string p = std::to_string(i);
    entries_[i]->flatten(out, prefix.empty() ? p : prefix + "/" + p);
  }
}

SpacePtr Dict(std::vector<std::pair<std::string, SpacePtr>> entries) {
  return std::make_shared<DictSpace>(std::move(entries));
}

SpacePtr Tuple(std::vector<SpacePtr> entries) {
  return std::make_shared<TupleSpace>(std::move(entries));
}

// --- JSON parsing ----------------------------------------------------------------

SpacePtr Space::from_json(const Json& spec) {
  const std::string type = spec.get_string("type", "float");
  SpacePtr out;
  if (type == "dict") {
    std::vector<std::pair<std::string, SpacePtr>> entries;
    for (const auto& [k, v] : spec.at("spaces").as_object()) {
      entries.emplace_back(k, from_json(v));
    }
    out = Dict(std::move(entries));
  } else if (type == "tuple") {
    std::vector<SpacePtr> entries;
    for (const Json& v : spec.at("spaces").as_array()) {
      entries.push_back(from_json(v));
    }
    out = Tuple(std::move(entries));
  } else {
    std::vector<int64_t> dims;
    if (spec.has("shape")) {
      for (const Json& d : spec.at("shape").as_array()) {
        dims.push_back(d.as_int());
      }
    }
    Shape shape{dims};
    if (type == "float") {
      if (spec.has("low") && spec.at("low").is_array()) {
        std::vector<double> lows, highs;
        for (const Json& v : spec.at("low").as_array()) {
          lows.push_back(v.as_double());
        }
        for (const Json& v : spec.at("high").as_array()) {
          highs.push_back(v.as_double());
        }
        out = FloatBox(shape, std::move(lows), std::move(highs));
      } else {
        out = FloatBox(shape, spec.get_double("low", -1e30),
                       spec.get_double("high", 1e30));
      }
    } else if (type == "int") {
      out = IntBox(spec.get_int("num_categories", 2), shape);
    } else if (type == "bool") {
      out = BoolBox(shape);
    } else {
      throw ConfigError("unknown space type: " + type);
    }
  }
  bool batch = spec.get_bool("add_batch_rank", false);
  bool time = spec.get_bool("add_time_rank", false);
  if (batch || time) out = out->with_ranks(batch, time);
  return out;
}

}  // namespace rlgraph
