// RLgraph spaces: backend-independent descriptions of tensor signatures.
//
// "Developers ... only need to specify type and shape of input spaces to an
// algorithm's outermost container component." Spaces carry dtype, value
// shape, optional batch/time ranks (represented as leading unknown dims) and
// bounds. Container spaces (Dict, Tuple) describe nested records and drive
// the auto split/merge utilities.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/json.h"
#include "util/random.h"

namespace rlgraph {

class Space;
using SpacePtr = std::shared_ptr<const Space>;

enum class SpaceKind { kBox, kDict, kTuple };

class NestedTensor;  // defined in spaces/nested.h

class Space : public std::enable_shared_from_this<Space> {
 public:
  virtual ~Space() = default;

  virtual SpaceKind kind() const = 0;
  bool is_box() const { return kind() == SpaceKind::kBox; }
  bool is_container() const { return !is_box(); }

  bool has_batch_rank() const { return batch_rank_; }
  bool has_time_rank() const { return time_rank_; }

  // Return a copy of this space with batch/time ranks added (recursively for
  // containers). Rank layout is [batch, time, ...value].
  SpacePtr with_batch_rank() const { return with_ranks(true, time_rank_); }
  SpacePtr with_time_rank() const { return with_ranks(batch_rank_, true); }
  virtual SpacePtr with_ranks(bool batch, bool time) const = 0;

  // Sample a value; unknown (batch/time) dims take the given extents.
  virtual NestedTensor sample(Rng& rng, int64_t batch_size = 1,
                              int64_t time_size = 1) const = 0;
  // Zero value of the same signature.
  virtual NestedTensor zeros(int64_t batch_size = 1,
                             int64_t time_size = 1) const = 0;
  // Signature + bounds check.
  virtual bool contains(const NestedTensor& value) const = 0;

  virtual bool equals(const Space& other) const = 0;
  virtual std::string to_string() const = 0;
  virtual Json to_json() const = 0;

  // Flatten into ordered (path, leaf-box) pairs; "" path for a bare box,
  // "a/b" style paths inside containers.
  void flatten(std::vector<std::pair<std::string, SpacePtr>>* out,
               const std::string& prefix = "") const;

  // Parse from a JSON spec, e.g.
  //   {"type": "float", "shape": [84, 84, 4], "low": 0, "high": 1}
  //   {"type": "int", "num_categories": 6}
  //   {"type": "dict", "spaces": {"discrete": {...}, "cont": {...}}}
  static SpacePtr from_json(const Json& spec);

 protected:
  virtual void flatten_into(
      std::vector<std::pair<std::string, SpacePtr>>* out,
      const std::string& prefix) const = 0;

  bool batch_rank_ = false;
  bool time_rank_ = false;
};

// A (possibly bounded) dense box of one dtype.
class BoxSpace : public Space {
 public:
  BoxSpace(DType dtype, Shape value_shape, double low, double high,
           int64_t num_categories = 0);
  // Per-dimension bounds over the flattened value shape (continuous action
  // spaces with heterogeneous actuator limits). Vector length must equal
  // value_shape.num_elements().
  BoxSpace(DType dtype, Shape value_shape, std::vector<double> lows,
           std::vector<double> highs);

  SpaceKind kind() const override { return SpaceKind::kBox; }
  DType dtype() const { return dtype_; }
  // Value shape without batch/time ranks.
  const Shape& value_shape() const { return value_shape_; }
  // Full signature including leading unknown batch/time dims.
  Shape full_shape() const;
  double low() const { return low_; }
  double high() const { return high_; }
  // Bounds for flattened value element i (scalar bounds broadcast).
  double low(int64_t i) const { return lows_.empty() ? low_ : lows_[i]; }
  double high(int64_t i) const { return highs_.empty() ? high_ : highs_[i]; }
  bool per_dim_bounds() const { return !lows_.empty(); }
  // > 0 for categorical int spaces (action spaces).
  int64_t num_categories() const { return num_categories_; }

  SpacePtr with_ranks(bool batch, bool time) const override;
  NestedTensor sample(Rng& rng, int64_t batch_size,
                      int64_t time_size) const override;
  NestedTensor zeros(int64_t batch_size, int64_t time_size) const override;
  bool contains(const NestedTensor& value) const override;
  bool equals(const Space& other) const override;
  std::string to_string() const override;
  Json to_json() const override;

 protected:
  void flatten_into(std::vector<std::pair<std::string, SpacePtr>>* out,
                    const std::string& prefix) const override;

 private:
  DType dtype_;
  Shape value_shape_;
  double low_;
  double high_;
  // Non-empty iff per-dimension bounds were given; length ==
  // value_shape_.num_elements().
  std::vector<double> lows_;
  std::vector<double> highs_;
  int64_t num_categories_;
};

// Convenience factories mirroring the paper's FloatBox / IntBox / BoolBox.
SpacePtr FloatBox(Shape shape = {}, double low = -1e30, double high = 1e30);
SpacePtr FloatBox(Shape shape, std::vector<double> lows,
                  std::vector<double> highs);
SpacePtr IntBox(int64_t num_categories, Shape shape = {});
SpacePtr BoolBox(Shape shape = {});

class DictSpace : public Space {
 public:
  explicit DictSpace(std::vector<std::pair<std::string, SpacePtr>> entries);

  SpaceKind kind() const override { return SpaceKind::kDict; }
  const std::vector<std::pair<std::string, SpacePtr>>& entries() const {
    return entries_;
  }
  SpacePtr at(const std::string& key) const;

  SpacePtr with_ranks(bool batch, bool time) const override;
  NestedTensor sample(Rng& rng, int64_t batch_size,
                      int64_t time_size) const override;
  NestedTensor zeros(int64_t batch_size, int64_t time_size) const override;
  bool contains(const NestedTensor& value) const override;
  bool equals(const Space& other) const override;
  std::string to_string() const override;
  Json to_json() const override;

 protected:
  void flatten_into(std::vector<std::pair<std::string, SpacePtr>>* out,
                    const std::string& prefix) const override;

 private:
  std::vector<std::pair<std::string, SpacePtr>> entries_;  // sorted by key
};

class TupleSpace : public Space {
 public:
  explicit TupleSpace(std::vector<SpacePtr> entries);

  SpaceKind kind() const override { return SpaceKind::kTuple; }
  const std::vector<SpacePtr>& entries() const { return entries_; }

  SpacePtr with_ranks(bool batch, bool time) const override;
  NestedTensor sample(Rng& rng, int64_t batch_size,
                      int64_t time_size) const override;
  NestedTensor zeros(int64_t batch_size, int64_t time_size) const override;
  bool contains(const NestedTensor& value) const override;
  bool equals(const Space& other) const override;
  std::string to_string() const override;
  Json to_json() const override;

 protected:
  void flatten_into(std::vector<std::pair<std::string, SpacePtr>>* out,
                    const std::string& prefix) const override;

 private:
  std::vector<SpacePtr> entries_;
};

// Helper used across factories: make a Dict space from an initializer list.
SpacePtr Dict(std::vector<std::pair<std::string, SpacePtr>> entries);
SpacePtr Tuple(std::vector<SpacePtr> entries);

}  // namespace rlgraph
