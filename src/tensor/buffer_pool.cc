#include "tensor/buffer_pool.h"

#include <new>

namespace rlgraph {

namespace {
thread_local BufferPool* t_current_pool = nullptr;
}  // namespace

BufferPool::BufferPool(size_t max_pooled_bytes)
    : state_(std::make_shared<State>()) {
  state_->max_pooled = max_pooled_bytes;
}

BufferPool::~BufferPool() { trim(); }

std::shared_ptr<void> BufferPool::allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;
  void* p = nullptr;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    auto it = state_->free_lists.find(bytes);
    if (it != state_->free_lists.end() && !it->second.empty()) {
      p = it->second.back();
      it->second.pop_back();
      state_->pooled -= bytes;
      state_->reused += static_cast<int64_t>(bytes);
    } else {
      state_->allocated += static_cast<int64_t>(bytes);
    }
  }
  if (p == nullptr) p = ::operator new(bytes);
  // The deleter owns a reference to the pool state, so returns stay valid
  // after the BufferPool object itself is gone.
  std::shared_ptr<State> state = state_;
  return std::shared_ptr<void>(p, [state, bytes](void* q) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (state->pooled + bytes <= state->max_pooled) {
        state->free_lists[bytes].push_back(q);
        state->pooled += bytes;
        return;
      }
    }
    ::operator delete(q);
  });
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  for (auto& [bytes, list] : state_->free_lists) {
    for (void* p : list) ::operator delete(p);
    list.clear();
  }
  state_->free_lists.clear();
  state_->pooled = 0;
}

int64_t BufferPool::bytes_reused() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->reused;
}

int64_t BufferPool::bytes_allocated() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->allocated;
}

int64_t BufferPool::pooled_bytes() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return static_cast<int64_t>(state_->pooled);
}

BufferPool* BufferPool::current() { return t_current_pool; }

BufferPoolScope::BufferPoolScope(BufferPool* pool) : previous_(t_current_pool) {
  t_current_pool = pool;
}

BufferPoolScope::~BufferPoolScope() { t_current_pool = previous_; }

}  // namespace rlgraph
