#include "tensor/buffer_pool.h"

#include <atomic>
#include <mutex>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rlgraph {

namespace {
thread_local BufferPool* t_current_pool = nullptr;
thread_local PlannedAllocScope* t_planned_scope = nullptr;
}  // namespace

struct BufferPool::State {
  std::mutex mutex;  // guards free_lists only; counters are atomic
  std::unordered_map<size_t, std::vector<void*>> free_lists;
  size_t max_pooled;
  std::atomic<size_t> pooled{0};
  std::atomic<int64_t> reused{0};
  std::atomic<int64_t> allocated{0};
};

// Bounded per-thread stash of freed buffers. The deleter parks a buffer
// here when the freeing thread has room, and allocate() checks it before
// the shared lists, so a thread that frees and reallocates the same shapes
// run after run (every parallel-executor worker does) never touches the
// shared mutex. Entries pin their pool's State; thread exit returns them
// to the shared lists (or the heap, if the pool is over its cap).
struct BufferPool::ThreadCache {
  struct Entry {
    std::shared_ptr<State> state;
    size_t bytes = 0;
    void* ptr = nullptr;
  };
  static constexpr size_t kCapacity = 16;
  Entry entries[kCapacity];
  size_t size = 0;

  static ThreadCache& get() {
    thread_local ThreadCache cache;
    return cache;
  }

  ~ThreadCache() {
    for (size_t i = 0; i < size; ++i) release_to_shared(entries[i]);
  }

  static void release_to_shared(Entry& e) {
    {
      std::lock_guard<std::mutex> lock(e.state->mutex);
      // pooled already counts this entry; only the list membership moves.
      e.state->free_lists[e.bytes].push_back(e.ptr);
    }
    e.state.reset();
  }

  bool put(const std::shared_ptr<State>& state, size_t bytes, void* p) {
    if (size == kCapacity) return false;
    entries[size].state = state;
    entries[size].bytes = bytes;
    entries[size].ptr = p;
    ++size;
    return true;
  }

  void* take(const State* state, size_t bytes) {
    for (size_t i = size; i-- > 0;) {
      if (entries[i].state.get() == state && entries[i].bytes == bytes) {
        void* p = entries[i].ptr;
        entries[i] = std::move(entries[--size]);
        entries[size] = Entry{};
        return p;
      }
    }
    return nullptr;
  }
};

BufferPool::BufferPool(size_t max_pooled_bytes)
    : state_(std::make_shared<State>()) {
  state_->max_pooled = max_pooled_bytes;
}

BufferPool::~BufferPool() { trim(); }

std::shared_ptr<void> BufferPool::allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;
  void* p = ThreadCache::get().take(state_.get(), bytes);
  if (p != nullptr) {
    state_->pooled.fetch_sub(bytes, std::memory_order_relaxed);
    state_->reused.fetch_add(static_cast<int64_t>(bytes),
                             std::memory_order_relaxed);
  } else {
    std::lock_guard<std::mutex> lock(state_->mutex);
    auto it = state_->free_lists.find(bytes);
    if (it != state_->free_lists.end() && !it->second.empty()) {
      p = it->second.back();
      it->second.pop_back();
      state_->pooled.fetch_sub(bytes, std::memory_order_relaxed);
      state_->reused.fetch_add(static_cast<int64_t>(bytes),
                               std::memory_order_relaxed);
    } else {
      state_->allocated.fetch_add(static_cast<int64_t>(bytes),
                                  std::memory_order_relaxed);
    }
  }
  if (p == nullptr) p = ::operator new(bytes);
  // The deleter owns a reference to the pool state, so returns stay valid
  // after the BufferPool object itself is gone.
  std::shared_ptr<State> state = state_;
  return std::shared_ptr<void>(p, [state, bytes](void* q) {
    // Retention check is racy-but-benign: a transient overshoot of
    // max_pooled by a few buffers is acceptable, permanent growth is not.
    if (state->pooled.load(std::memory_order_relaxed) + bytes <=
        state->max_pooled) {
      state->pooled.fetch_add(bytes, std::memory_order_relaxed);
      if (ThreadCache::get().put(state, bytes, q)) return;
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->free_lists[bytes].push_back(q);
      }
      return;
    }
    ::operator delete(q);
  });
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  size_t freed = 0;
  for (auto& [bytes, list] : state_->free_lists) {
    for (void* p : list) ::operator delete(p);
    freed += bytes * list.size();
    list.clear();
  }
  state_->free_lists.clear();
  state_->pooled.fetch_sub(freed, std::memory_order_relaxed);
}

int64_t BufferPool::bytes_reused() const {
  return state_->reused.load(std::memory_order_relaxed);
}

int64_t BufferPool::bytes_allocated() const {
  return state_->allocated.load(std::memory_order_relaxed);
}

int64_t BufferPool::pooled_bytes() const {
  return static_cast<int64_t>(state_->pooled.load(std::memory_order_relaxed));
}

BufferPool* BufferPool::current() { return t_current_pool; }

BufferPoolScope::BufferPoolScope(BufferPool* pool) : previous_(t_current_pool) {
  t_current_pool = pool;
}

BufferPoolScope::~BufferPoolScope() { t_current_pool = previous_; }

PlannedAllocScope::PlannedAllocScope() : previous_(t_planned_scope) {
  t_planned_scope = this;
}

PlannedAllocScope::~PlannedAllocScope() { t_planned_scope = previous_; }

void PlannedAllocScope::add(size_t bytes, std::shared_ptr<void> storage) {
  entries_.push_back(Entry{bytes == 0 ? 1 : bytes, std::move(storage)});
}

std::shared_ptr<void> PlannedAllocScope::try_take(size_t bytes) {
  PlannedAllocScope* scope = t_planned_scope;
  if (scope == nullptr) return nullptr;
  for (Entry& e : scope->entries_) {
    if (e.bytes == bytes && e.storage != nullptr) {
      return std::move(e.storage);  // leaves a consumed (null) entry behind
    }
  }
  return nullptr;
}

}  // namespace rlgraph
