// Size-class buffer pool backing steady-state tensor allocation.
//
// A CompiledPlan run produces the same tensor shapes on every invocation;
// without pooling, each run pays one heap allocation per intermediate. The
// pool recycles buffers by exact byte size: while a pool is active on the
// current thread (see BufferPoolScope), Tensor allocations are served from
// its free lists, and buffers return to the pool when their last Tensor
// handle dies — whenever that happens, on whatever thread. The return path
// is carried by the buffer's deleter, which keeps the pool state alive via
// a shared_ptr, so a pool may be destroyed while buffers it allocated are
// still in flight (they then free normally).
//
// Thread safety: the shared free lists are mutex-guarded, and each thread
// additionally keeps a small bounded cache of recently freed buffers, so
// the steady-state alloc/free cycle on parallel-executor threads skips the
// shared mutex entirely. Stats counters are atomics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rlgraph {

class BufferPool {
 public:
  // `max_pooled_bytes` caps how many bytes the free lists may retain;
  // returns beyond the cap free immediately.
  explicit BufferPool(size_t max_pooled_bytes = 64ull << 20);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Allocate `bytes` from this thread's cache, the shared free lists
  // (exact-size match), or the heap.
  std::shared_ptr<void> allocate(size_t bytes);

  // Drop all retained free buffers from the shared lists. Buffers parked
  // in other threads' caches stay there until those threads free or exit.
  void trim();

  // --- stats ---------------------------------------------------------------
  // Bytes served from the free lists or a thread cache (reuse) vs. fresh
  // heap allocations.
  int64_t bytes_reused() const;
  int64_t bytes_allocated() const;
  // Bytes currently retained (shared lists + thread caches).
  int64_t pooled_bytes() const;

  // The pool active on this thread (set by BufferPoolScope), or nullptr.
  static BufferPool* current();

 private:
  friend class BufferPoolScope;

  struct State;
  struct ThreadCache;

  std::shared_ptr<State> state_;
};

// RAII activation of a pool for the current thread. Nests (restores the
// previously active pool on destruction).
class BufferPoolScope {
 public:
  explicit BufferPoolScope(BufferPool* pool);
  ~BufferPoolScope();

  BufferPoolScope(const BufferPoolScope&) = delete;
  BufferPoolScope& operator=(const BufferPoolScope&) = delete;

 private:
  BufferPool* previous_;
};

// Compile-time-planned output storage for one plan step (see the arena
// planner in graph/exec_plan.h). While a scope is active on the current
// thread, tensor allocations whose byte size exactly matches a pending
// planned block are served that block instead of going to the pool — this
// is how a shape-specialized plan's kernel outputs land at their preplanned
// arena offsets without changing the kernel ABI. Sizes that match nothing
// (kernel temporaries, unplanned outputs) fall through to the pool/heap as
// usual. Blocks are consumed at most once per scope.
class PlannedAllocScope {
 public:
  PlannedAllocScope();
  ~PlannedAllocScope();

  PlannedAllocScope(const PlannedAllocScope&) = delete;
  PlannedAllocScope& operator=(const PlannedAllocScope&) = delete;

  // Register one planned block (storage aliases the plan's arena).
  void add(size_t bytes, std::shared_ptr<void> storage);

  // Drop any unconsumed blocks but keep the entry vector's capacity, so a
  // scope reused across a plan's steps stages ranges without allocating.
  void reset() { entries_.clear(); }

  // Called by the tensor allocator: pop a pending block of exactly `bytes`,
  // or nullptr when no scope is active / nothing matches.
  static std::shared_ptr<void> try_take(size_t bytes);

 private:
  struct Entry {
    size_t bytes;
    std::shared_ptr<void> storage;
  };
  std::vector<Entry> entries_;
  PlannedAllocScope* previous_;
};

}  // namespace rlgraph
