// Element types supported by the tensor substrate.
#pragma once

#include <cstdint>
#include <string>

#include "util/errors.h"

namespace rlgraph {

enum class DType : uint8_t {
  kFloat32 = 0,
  kInt32 = 1,
  kUInt8 = 2,
  kBool = 3,
  kInt8 = 4,
};

inline size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return 4;
    case DType::kInt32: return 4;
    case DType::kUInt8: return 1;
    case DType::kBool: return 1;
    case DType::kInt8: return 1;
  }
  throw ValueError("unknown dtype");
}

inline const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return "float32";
    case DType::kInt32: return "int32";
    case DType::kUInt8: return "uint8";
    case DType::kBool: return "bool";
    case DType::kInt8: return "int8";
  }
  return "?";
}

inline DType dtype_from_name(const std::string& name) {
  if (name == "float32" || name == "float") return DType::kFloat32;
  if (name == "int32" || name == "int") return DType::kInt32;
  if (name == "uint8") return DType::kUInt8;
  if (name == "bool") return DType::kBool;
  if (name == "int8") return DType::kInt8;
  throw ValueError("unknown dtype name: " + name);
}

// Maps C++ types to DType tags for the typed Tensor accessors.
template <typename T>
struct DTypeOf;
template <>
struct DTypeOf<float> {
  static constexpr DType value = DType::kFloat32;
};
template <>
struct DTypeOf<int32_t> {
  static constexpr DType value = DType::kInt32;
};
template <>
struct DTypeOf<uint8_t> {
  static constexpr DType value = DType::kUInt8;
};
template <>
struct DTypeOf<bool> {
  static constexpr DType value = DType::kBool;
};
template <>
struct DTypeOf<int8_t> {
  static constexpr DType value = DType::kInt8;
};

}  // namespace rlgraph
