#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/thread_pool.h"

namespace rlgraph {
namespace kernels {

namespace {

// --- intra-op sharding -------------------------------------------------------
//
// Grain sizes are the cost thresholds of the parallel_for cost model:
// elements (or flops) per shard below which forking is not worth a wakeup.
// Every sharded kernel writes disjoint output ranges per shard (or combines
// per-shard partials in a fixed tree), so parallel results are bitwise
// identical to the serial path at any thread count.
constexpr int64_t kCheapGrain = 1 << 14;  // streaming arithmetic: add, relu
constexpr int64_t kMathGrain = 1 << 12;   // transcendental maps: exp, tanh
constexpr int64_t kGrainFlops = 1 << 16;  // matmul/conv: flops per shard

// Serial ops skip the type-erased dispatch entirely: a single shard is
// bitwise identical to the unsharded loop for disjoint-write bodies.
template <typename Body>
void shard_range(int64_t grain, int64_t n, Body&& body) {
  if (n <= 0) return;
  if (n <= grain || global_parallelism() <= 1) {
    body(int64_t{0}, n);
    return;
  }
  parallel_for(grain, n, std::forward<Body>(body));
}

// Rows-of-work variant: `cost` is the per-row work estimate used to derive
// the grain so that one shard carries at least kGrainFlops worth of work.
inline int64_t rows_grain(int64_t flops_per_row) {
  return std::max<int64_t>(1, kGrainFlops / std::max<int64_t>(1, flops_per_row));
}

// Iterator state for broadcasting: maps a flat output index to flat input
// indices given per-input strides (stride 0 on broadcast dimensions).
struct BroadcastPlan {
  Shape out_shape;
  std::vector<int64_t> a_strides;
  std::vector<int64_t> b_strides;
};

std::vector<int64_t> contiguous_strides(const Shape& s) {
  std::vector<int64_t> strides(static_cast<size_t>(s.rank()));
  int64_t acc = 1;
  for (int i = s.rank() - 1; i >= 0; --i) {
    strides[static_cast<size_t>(i)] = acc;
    acc *= s.dim(i);
  }
  return strides;
}

BroadcastPlan make_plan(const Shape& a, const Shape& b) {
  BroadcastPlan plan;
  plan.out_shape = broadcast_shapes(a, b);
  RLG_REQUIRE(plan.out_shape.fully_specified(),
              "broadcast of partial shapes at runtime");
  int rank = plan.out_shape.rank();
  auto as = contiguous_strides(a);
  auto bs = contiguous_strides(b);
  plan.a_strides.assign(static_cast<size_t>(rank), 0);
  plan.b_strides.assign(static_cast<size_t>(rank), 0);
  for (int i = 0; i < rank; ++i) {
    int ai = a.rank() - rank + i;
    int bi = b.rank() - rank + i;
    if (ai >= 0 && a.dim(ai) != 1) {
      plan.a_strides[static_cast<size_t>(i)] = as[static_cast<size_t>(ai)];
    }
    if (bi >= 0 && b.dim(bi) != 1) {
      plan.b_strides[static_cast<size_t>(i)] = bs[static_cast<size_t>(bi)];
    }
  }
  return plan;
}

// Apply binary fn elementwise with broadcasting; Fa/Fb are input element
// types, Fo is the output element type.
template <typename Fa, typename Fo, typename Fn>
Tensor binary_broadcast(const Tensor& a, const Tensor& b, DType out_dtype,
                        Fn fn) {
  if (a.shape() == b.shape()) {
    // Fast path: no index arithmetic; shards write disjoint output ranges.
    Tensor out(out_dtype, a.shape());
    const Fa* pa = a.data<Fa>();
    const Fa* pb = b.data<Fa>();
    Fo* po = out.mutable_data<Fo>();
    shard_range(kCheapGrain, a.num_elements(),
                [pa, pb, po, fn](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    po[i] = fn(pa[i], pb[i]);
                  }
                });
    return out;
  }
  BroadcastPlan plan = make_plan(a.shape(), b.shape());
  Tensor out(out_dtype, plan.out_shape);
  const Fa* pa = a.data<Fa>();
  const Fa* pb = b.data<Fa>();
  Fo* po = out.mutable_data<Fo>();
  int rank = plan.out_shape.rank();
  int64_t n = plan.out_shape.num_elements();
  // Each shard seeds its odometer (and the two strided input cursors) from
  // its first flat index, then walks its range exactly like the serial loop.
  shard_range(kCheapGrain, n, [&plan, pa, pb, po, fn, rank](int64_t begin,
                                                           int64_t end) {
    std::vector<int64_t> idx(static_cast<size_t>(rank), 0);
    int64_t ia = 0, ib = 0;
    int64_t rem = begin;
    for (int d = rank - 1; d >= 0; --d) {
      auto du = static_cast<size_t>(d);
      idx[du] = rem % plan.out_shape.dim(d);
      rem /= plan.out_shape.dim(d);
      ia += idx[du] * plan.a_strides[du];
      ib += idx[du] * plan.b_strides[du];
    }
    for (int64_t flat = begin; flat < end; ++flat) {
      po[flat] = fn(pa[ia], pb[ib]);
      // Odometer increment.
      for (int d = rank - 1; d >= 0; --d) {
        auto du = static_cast<size_t>(d);
        ++idx[du];
        ia += plan.a_strides[du];
        ib += plan.b_strides[du];
        if (idx[du] < plan.out_shape.dim(d)) break;
        ia -= plan.a_strides[du] * idx[du];
        ib -= plan.b_strides[du] * idx[du];
        idx[du] = 0;
      }
    }
  });
  return out;
}

template <typename Fn>
Tensor binary_numeric(const Tensor& a, const Tensor& b, Fn fn,
                      const char* op) {
  RLG_REQUIRE(a.dtype() == b.dtype(), op << ": dtype mismatch "
                                         << dtype_name(a.dtype()) << " vs "
                                         << dtype_name(b.dtype()));
  if (a.dtype() == DType::kFloat32) {
    return binary_broadcast<float, float>(a, b, DType::kFloat32, fn);
  }
  if (a.dtype() == DType::kInt32) {
    return binary_broadcast<int32_t, int32_t>(a, b, DType::kInt32, fn);
  }
  throw ValueError(std::string(op) + ": unsupported dtype " +
                   dtype_name(a.dtype()));
}

template <typename Fn>
Tensor compare(const Tensor& a, const Tensor& b, Fn fn, const char* op) {
  RLG_REQUIRE(a.dtype() == b.dtype(), op << ": dtype mismatch");
  if (a.dtype() == DType::kFloat32) {
    return binary_broadcast<float, uint8_t>(a, b, DType::kBool, fn);
  }
  if (a.dtype() == DType::kInt32) {
    return binary_broadcast<int32_t, uint8_t>(a, b, DType::kBool, fn);
  }
  throw ValueError(std::string(op) + ": unsupported dtype");
}

template <typename Fn>
Tensor unary_float(const Tensor& a, Fn fn, const char* op) {
  check_dtype(a, DType::kFloat32, op);
  Tensor out(DType::kFloat32, a.shape());
  const float* pa = a.data<float>();
  float* po = out.mutable_data<float>();
  shard_range(kMathGrain, a.num_elements(),
              [pa, po, fn](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) po[i] = fn(pa[i]);
              });
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_numeric(a, b, [](auto x, auto y) { return x + y; }, "add");
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_numeric(a, b, [](auto x, auto y) { return x - y; }, "sub");
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_numeric(a, b, [](auto x, auto y) { return x * y; }, "mul");
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_numeric(a, b, [](auto x, auto y) { return x / y; }, "div");
}

Tensor minimum(const Tensor& a, const Tensor& b) {
  return binary_numeric(
      a, b, [](auto x, auto y) { return x < y ? x : y; }, "minimum");
}

Tensor maximum(const Tensor& a, const Tensor& b) {
  return binary_numeric(
      a, b, [](auto x, auto y) { return x > y ? x : y; }, "maximum");
}

Tensor equal(const Tensor& a, const Tensor& b) {
  return compare(
      a, b, [](auto x, auto y) -> uint8_t { return x == y ? 1 : 0; }, "equal");
}

Tensor greater(const Tensor& a, const Tensor& b) {
  return compare(
      a, b, [](auto x, auto y) -> uint8_t { return x > y ? 1 : 0; },
      "greater");
}

Tensor less(const Tensor& a, const Tensor& b) {
  return compare(
      a, b, [](auto x, auto y) -> uint8_t { return x < y ? 1 : 0; }, "less");
}

Tensor logical_and(const Tensor& a, const Tensor& b) {
  check_dtype(a, DType::kBool, "logical_and");
  check_dtype(b, DType::kBool, "logical_and");
  return binary_broadcast<uint8_t, uint8_t>(
      a, b, DType::kBool,
      [](uint8_t x, uint8_t y) -> uint8_t { return (x && y) ? 1 : 0; });
}

Tensor logical_or(const Tensor& a, const Tensor& b) {
  check_dtype(a, DType::kBool, "logical_or");
  check_dtype(b, DType::kBool, "logical_or");
  return binary_broadcast<uint8_t, uint8_t>(
      a, b, DType::kBool,
      [](uint8_t x, uint8_t y) -> uint8_t { return (x || y) ? 1 : 0; });
}

Tensor logical_not(const Tensor& a) {
  check_dtype(a, DType::kBool, "logical_not");
  Tensor out(DType::kBool, a.shape());
  const uint8_t* pa = a.data<uint8_t>();
  uint8_t* po = out.mutable_data<uint8_t>();
  for (int64_t i = 0; i < a.num_elements(); ++i) po[i] = pa[i] ? 0 : 1;
  return out;
}

Tensor neg(const Tensor& a) {
  return unary_float(a, [](float x) { return -x; }, "neg");
}
Tensor exp(const Tensor& a) {
  return unary_float(a, [](float x) { return std::exp(x); }, "exp");
}
Tensor log(const Tensor& a) {
  return unary_float(a, [](float x) { return std::log(x); }, "log");
}
Tensor sqrt(const Tensor& a) {
  return unary_float(a, [](float x) { return std::sqrt(x); }, "sqrt");
}
Tensor square(const Tensor& a) {
  return unary_float(a, [](float x) { return x * x; }, "square");
}
Tensor abs(const Tensor& a) {
  return unary_float(a, [](float x) { return std::fabs(x); }, "abs");
}
Tensor relu(const Tensor& a) {
  return unary_float(a, [](float x) { return x > 0.0f ? x : 0.0f; }, "relu");
}
Tensor sigmoid(const Tensor& a) {
  return unary_float(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); }, "sigmoid");
}
Tensor tanh(const Tensor& a) {
  return unary_float(a, [](float x) { return std::tanh(x); }, "tanh");
}
Tensor softplus(const Tensor& a) {
  // max(x, 0) + log1p(exp(-|x|)): never overflows, and keeps full float
  // precision for large |x| where the naive log(1 + exp(x)) saturates.
  return unary_float(
      a,
      [](float x) {
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::abs(x)));
      },
      "softplus");
}
Tensor clip(const Tensor& a, double lo, double hi) {
  float flo = static_cast<float>(lo);
  float fhi = static_cast<float>(hi);
  return unary_float(
      a, [flo, fhi](float x) { return std::min(fhi, std::max(flo, x)); },
      "clip");
}

Tensor where(const Tensor& cond, const Tensor& a, const Tensor& b) {
  check_dtype(cond, DType::kBool, "where");
  check_same_shape(a, b, "where");
  RLG_REQUIRE(a.dtype() == b.dtype(), "where: branch dtype mismatch");
  // Broadcast cond against value shape: cond either matches exactly or
  // matches the leading dimensions of a (per-row select).
  Tensor out(a.dtype(), a.shape());
  const uint8_t* pc = cond.data<uint8_t>();
  int64_t n = a.num_elements();
  int64_t cn = cond.num_elements();
  RLG_REQUIRE(cn > 0 && n % cn == 0,
              "where: cond shape " << cond.shape().to_string()
                                   << " incompatible with "
                                   << a.shape().to_string());
  int64_t inner = n / cn;
  size_t esize = dtype_size(a.dtype());
  const auto* pa = static_cast<const uint8_t*>(a.raw());
  const auto* pb = static_cast<const uint8_t*>(b.raw());
  auto* po = static_cast<uint8_t*>(out.mutable_raw());
  shard_range(rows_grain(inner), cn,
              [pc, pa, pb, po, inner, esize](int64_t c0, int64_t c1) {
                for (int64_t c = c0; c < c1; ++c) {
                  const uint8_t* src = pc[c] ? pa : pb;
                  std::memcpy(po + static_cast<size_t>(c * inner) * esize,
                              src + static_cast<size_t>(c * inner) * esize,
                              static_cast<size_t>(inner) * esize);
                }
              });
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_dtype(a, DType::kFloat32, "matmul");
  check_dtype(b, DType::kFloat32, "matmul");
  RLG_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul requires rank-2 operands, got "
                  << a.shape().to_string() << " x " << b.shape().to_string());
  int64_t m = a.shape().dim(0), k = a.shape().dim(1);
  int64_t k2 = b.shape().dim(0), n = b.shape().dim(1);
  RLG_REQUIRE(k == k2, "matmul inner dims mismatch: " << k << " vs " << k2);
  Tensor out = Tensor::zeros(DType::kFloat32, Shape{m, n});
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* po = out.mutable_data<float>();
  // Shard over output rows (disjoint writes); within a shard, block the k
  // dimension so the touched rows of b stay cache-resident, keeping the ikj
  // inner order. Per output element the accumulation still runs over k in
  // ascending order, so results are bitwise identical at any thread count.
  constexpr int64_t kKBlock = 256;
  shard_range(rows_grain(2 * k * n), m,
              [pa, pb, po, k, n](int64_t r0, int64_t r1) {
                for (int64_t kb = 0; kb < k; kb += kKBlock) {
                  int64_t ke = std::min(k, kb + kKBlock);
                  for (int64_t i = r0; i < r1; ++i) {
                    const float* arow = pa + i * k;
                    float* orow = po + i * n;
                    for (int64_t kk = kb; kk < ke; ++kk) {
                      float av = arow[kk];
                      if (av == 0.0f) continue;
                      const float* brow = pb + kk * n;
                      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
                    }
                  }
                }
              });
  return out;
}

Tensor transpose2d(const Tensor& a) {
  check_dtype(a, DType::kFloat32, "transpose2d");
  RLG_REQUIRE(a.shape().rank() == 2, "transpose2d requires rank 2");
  int64_t m = a.shape().dim(0), n = a.shape().dim(1);
  Tensor out(DType::kFloat32, Shape{n, m});
  const float* pa = a.data<float>();
  float* po = out.mutable_data<float>();
  // Blocked transpose: both the reads (pa rows) and the column-strided
  // writes (po) stay within one kTile x kTile block that fits in L1, instead
  // of striding the full output column per element. Shards take disjoint
  // row ranges of the input.
  constexpr int64_t kTile = 32;
  shard_range(rows_grain(n), m, [pa, po, m, n](int64_t r0, int64_t r1) {
    for (int64_t i0 = r0; i0 < r1; i0 += kTile) {
      int64_t i1 = std::min(r1, i0 + kTile);
      for (int64_t j0 = 0; j0 < n; j0 += kTile) {
        int64_t j1 = std::min(n, j0 + kTile);
        for (int64_t j = j0; j < j1; ++j) {
          for (int64_t i = i0; i < i1; ++i) po[j * m + i] = pa[i * n + j];
        }
      }
    }
  });
  return out;
}

namespace {
struct ConvDims {
  int64_t batch, in_h, in_w, in_c;
  int64_t kh, kw, out_c;
  int64_t out_h, out_w;
  int64_t pad_h, pad_w;  // top/left padding
};

ConvDims conv_dims(const Shape& input, const Shape& filter, int stride,
                   bool same_padding) {
  RLG_REQUIRE(input.rank() == 4 && filter.rank() == 4,
              "conv2d expects NHWC input and [kh,kw,cin,cout] filter");
  ConvDims d;
  d.batch = input.dim(0);
  d.in_h = input.dim(1);
  d.in_w = input.dim(2);
  d.in_c = input.dim(3);
  d.kh = filter.dim(0);
  d.kw = filter.dim(1);
  RLG_REQUIRE(filter.dim(2) == d.in_c, "conv2d filter cin mismatch");
  d.out_c = filter.dim(3);
  if (same_padding) {
    d.out_h = (d.in_h + stride - 1) / stride;
    d.out_w = (d.in_w + stride - 1) / stride;
    int64_t pad_total_h =
        std::max<int64_t>(0, (d.out_h - 1) * stride + d.kh - d.in_h);
    int64_t pad_total_w =
        std::max<int64_t>(0, (d.out_w - 1) * stride + d.kw - d.in_w);
    d.pad_h = pad_total_h / 2;
    d.pad_w = pad_total_w / 2;
  } else {
    RLG_REQUIRE(d.in_h >= d.kh && d.in_w >= d.kw,
                "conv2d valid padding: kernel larger than input");
    d.out_h = (d.in_h - d.kh) / stride + 1;
    d.out_w = (d.in_w - d.kw) / stride + 1;
    d.pad_h = 0;
    d.pad_w = 0;
  }
  return d;
}
}  // namespace

Tensor conv2d(const Tensor& input, const Tensor& filter, int stride,
              bool same_padding) {
  check_dtype(input, DType::kFloat32, "conv2d");
  check_dtype(filter, DType::kFloat32, "conv2d");
  ConvDims d = conv_dims(input.shape(), filter.shape(), stride, same_padding);
  Tensor out =
      Tensor::zeros(DType::kFloat32, Shape{d.batch, d.out_h, d.out_w, d.out_c});
  const float* pi = input.data<float>();
  const float* pf = filter.data<float>();
  float* po = out.mutable_data<float>();
  // Shard over batch x out_h: every (b, oh) pair owns a disjoint slice of
  // the output, and the per-pixel accumulation order is unchanged, so the
  // result is bitwise identical to the serial loop.
  int64_t conv_row_flops = 2 * d.out_w * d.kh * d.kw * d.in_c * d.out_c;
  shard_range(rows_grain(conv_row_flops), d.batch * d.out_h,
              [&d, pi, pf, po, stride](int64_t row0, int64_t row1) {
    for (int64_t row = row0; row < row1; ++row) {
      int64_t b = row / d.out_h;
      int64_t oh = row % d.out_h;
      for (int64_t ow = 0; ow < d.out_w; ++ow) {
        float* opix = po + ((b * d.out_h + oh) * d.out_w + ow) * d.out_c;
        for (int64_t fh = 0; fh < d.kh; ++fh) {
          int64_t ih = oh * stride + fh - d.pad_h;
          if (ih < 0 || ih >= d.in_h) continue;
          for (int64_t fw = 0; fw < d.kw; ++fw) {
            int64_t iw = ow * stride + fw - d.pad_w;
            if (iw < 0 || iw >= d.in_w) continue;
            const float* ipix = pi + ((b * d.in_h + ih) * d.in_w + iw) * d.in_c;
            const float* fpix = pf + (fh * d.kw + fw) * d.in_c * d.out_c;
            for (int64_t c = 0; c < d.in_c; ++c) {
              float iv = ipix[c];
              if (iv == 0.0f) continue;
              const float* frow = fpix + c * d.out_c;
              for (int64_t oc = 0; oc < d.out_c; ++oc) {
                opix[oc] += iv * frow[oc];
              }
            }
          }
        }
      }
    }
  });
  return out;
}

Tensor conv2d_backprop_input(const Shape& input_shape, const Tensor& filter,
                             const Tensor& grad_out, int stride,
                             bool same_padding) {
  ConvDims d = conv_dims(input_shape, filter.shape(), stride, same_padding);
  Tensor grad_in = Tensor::zeros(DType::kFloat32, input_shape);
  const float* pf = filter.data<float>();
  const float* pg = grad_out.data<float>();
  float* po = grad_in.mutable_data<float>();
  // Output rows (oh) with stride < kernel height scatter into overlapping
  // input rows, so the finest race-free shard is one batch image.
  int64_t image_flops = 2 * d.out_h * d.out_w * d.kh * d.kw * d.in_c * d.out_c;
  shard_range(rows_grain(image_flops), d.batch,
              [&d, pf, pg, po, stride](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
    for (int64_t oh = 0; oh < d.out_h; ++oh) {
      for (int64_t ow = 0; ow < d.out_w; ++ow) {
        const float* gpix = pg + ((b * d.out_h + oh) * d.out_w + ow) * d.out_c;
        for (int64_t fh = 0; fh < d.kh; ++fh) {
          int64_t ih = oh * stride + fh - d.pad_h;
          if (ih < 0 || ih >= d.in_h) continue;
          for (int64_t fw = 0; fw < d.kw; ++fw) {
            int64_t iw = ow * stride + fw - d.pad_w;
            if (iw < 0 || iw >= d.in_w) continue;
            float* ipix = po + ((b * d.in_h + ih) * d.in_w + iw) * d.in_c;
            const float* fpix = pf + (fh * d.kw + fw) * d.in_c * d.out_c;
            for (int64_t c = 0; c < d.in_c; ++c) {
              const float* frow = fpix + c * d.out_c;
              float acc = 0.0f;
              for (int64_t oc = 0; oc < d.out_c; ++oc) {
                acc += gpix[oc] * frow[oc];
              }
              ipix[c] += acc;
            }
          }
        }
      }
    }
    }
  });
  return grad_in;
}

Tensor conv2d_backprop_filter(const Tensor& input, const Shape& filter_shape,
                              const Tensor& grad_out, int stride,
                              bool same_padding) {
  ConvDims d = conv_dims(input.shape(), filter_shape, stride, same_padding);
  const float* pi = input.data<float>();
  const float* pg = grad_out.data<float>();
  // Every batch image scatters into the whole filter, so shards accumulate
  // private partial gradients over disjoint batch ranges, combined below in
  // a fixed pairwise tree — shard boundaries and tree shape depend only on
  // the problem size, never the thread count.
  auto accumulate = [&d, pi, pg, stride](float* po, int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      for (int64_t oh = 0; oh < d.out_h; ++oh) {
        for (int64_t ow = 0; ow < d.out_w; ++ow) {
          const float* gpix =
              pg + ((b * d.out_h + oh) * d.out_w + ow) * d.out_c;
          for (int64_t fh = 0; fh < d.kh; ++fh) {
            int64_t ih = oh * stride + fh - d.pad_h;
            if (ih < 0 || ih >= d.in_h) continue;
            for (int64_t fw = 0; fw < d.kw; ++fw) {
              int64_t iw = ow * stride + fw - d.pad_w;
              if (iw < 0 || iw >= d.in_w) continue;
              const float* ipix =
                  pi + ((b * d.in_h + ih) * d.in_w + iw) * d.in_c;
              float* fpix = po + (fh * d.kw + fw) * d.in_c * d.out_c;
              for (int64_t c = 0; c < d.in_c; ++c) {
                float iv = ipix[c];
                if (iv == 0.0f) continue;
                float* frow = fpix + c * d.out_c;
                for (int64_t oc = 0; oc < d.out_c; ++oc) {
                  frow[oc] += iv * gpix[oc];
                }
              }
            }
          }
        }
      }
    }
  };

  int64_t image_flops = 2 * d.out_h * d.out_w * d.kh * d.kw * d.in_c * d.out_c;
  ShardBounds sb = shard_bounds(rows_grain(image_flops), d.batch);
  if (sb.num_shards <= 1) {
    Tensor grad_f = Tensor::zeros(DType::kFloat32, filter_shape);
    accumulate(grad_f.mutable_data<float>(), 0, d.batch);
    return grad_f;
  }
  std::vector<Tensor> partials(static_cast<size_t>(sb.num_shards));
  parallel_shards(rows_grain(image_flops), d.batch,
                  [&](int64_t shard, int64_t b0, int64_t b1) {
                    Tensor p = Tensor::zeros(DType::kFloat32, filter_shape);
                    accumulate(p.mutable_data<float>(), b0, b1);
                    partials[static_cast<size_t>(shard)] = std::move(p);
                  });
  int64_t filter_elems = partials[0].num_elements();
  for (int64_t step = 1; step < sb.num_shards; step *= 2) {
    for (int64_t i = 0; i + step < sb.num_shards; i += 2 * step) {
      float* dst = partials[static_cast<size_t>(i)].mutable_data<float>();
      const float* src = partials[static_cast<size_t>(i + step)].data<float>();
      for (int64_t e = 0; e < filter_elems; ++e) dst[e] += src[e];
    }
  }
  return partials[0];
}

namespace {
// Generic reduction over one axis (or all). Combine must be associative.
template <typename Fn>
Tensor reduce(const Tensor& a, int axis, bool keep_dims, float init, Fn fn,
              bool mean) {
  check_dtype(a, DType::kFloat32, "reduce");
  const float* pa = a.data<float>();
  if (axis == -1) {
    // Full reduction: per-shard linear folds combined in a fixed pairwise
    // tree. Shard boundaries depend only on the element count, so the
    // result is bitwise identical at any thread count (a single shard is
    // exactly the classic serial fold).
    int64_t n = a.num_elements();
    ShardBounds sb = shard_bounds(kCheapGrain, n);
    float acc = init;
    if (sb.num_shards <= 1) {
      for (int64_t i = 0; i < n; ++i) acc = fn(acc, pa[i]);
    } else {
      std::vector<float> partials(static_cast<size_t>(sb.num_shards), init);
      parallel_shards(kCheapGrain, n,
                      [&partials, pa, init, fn](int64_t shard, int64_t begin,
                                                int64_t end) {
                        float p = init;
                        for (int64_t i = begin; i < end; ++i) p = fn(p, pa[i]);
                        partials[static_cast<size_t>(shard)] = p;
                      });
      for (int64_t step = 1; step < sb.num_shards; step *= 2) {
        for (int64_t i = 0; i + step < sb.num_shards; i += 2 * step) {
          partials[static_cast<size_t>(i)] =
              fn(partials[static_cast<size_t>(i)],
                 partials[static_cast<size_t>(i + step)]);
        }
      }
      acc = partials[0];
    }
    if (mean && n > 0) {
      acc /= static_cast<float>(n);
    }
    if (!keep_dims) return Tensor::scalar(acc);
    std::vector<int64_t> dims(static_cast<size_t>(a.shape().rank()), 1);
    return Tensor::filled(DType::kFloat32, Shape(dims), acc);
  }
  RLG_REQUIRE(axis >= 0 && axis < a.shape().rank(),
              "reduce axis " << axis << " out of range for "
                             << a.shape().to_string());
  int64_t outer = 1, inner = 1;
  int64_t extent = a.shape().dim(axis);
  for (int i = 0; i < axis; ++i) outer *= a.shape().dim(i);
  for (int i = axis + 1; i < a.shape().rank(); ++i) inner *= a.shape().dim(i);
  std::vector<int64_t> out_dims;
  for (int i = 0; i < a.shape().rank(); ++i) {
    if (i == axis) {
      if (keep_dims) out_dims.push_back(1);
    } else {
      out_dims.push_back(a.shape().dim(i));
    }
  }
  Tensor out(DType::kFloat32, Shape(out_dims));
  float* po = out.mutable_data<float>();
  // Axis reduction: every output element folds its own extent, so sharding
  // over the flat output index writes disjoint ranges and is trivially
  // bitwise-stable.
  shard_range(rows_grain(extent), outer * inner,
              [pa, po, inner, extent, init, fn, mean](int64_t t0, int64_t t1) {
                for (int64_t t = t0; t < t1; ++t) {
                  int64_t o = t / inner;
                  int64_t in = t % inner;
                  float acc = init;
                  for (int64_t e = 0; e < extent; ++e) {
                    acc = fn(acc, pa[(o * extent + e) * inner + in]);
                  }
                  if (mean && extent > 0) acc /= static_cast<float>(extent);
                  po[t] = acc;
                }
              });
  return out;
}
}  // namespace

Tensor reduce_sum(const Tensor& a, int axis, bool keep_dims) {
  return reduce(
      a, axis, keep_dims, 0.0f, [](float acc, float v) { return acc + v; },
      /*mean=*/false);
}

Tensor reduce_mean(const Tensor& a, int axis, bool keep_dims) {
  return reduce(
      a, axis, keep_dims, 0.0f, [](float acc, float v) { return acc + v; },
      /*mean=*/true);
}

Tensor reduce_max(const Tensor& a, int axis, bool keep_dims) {
  return reduce(
      a, axis, keep_dims, -std::numeric_limits<float>::infinity(),
      [](float acc, float v) { return v > acc ? v : acc; }, /*mean=*/false);
}

Tensor sum_to_shape(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a;
  check_dtype(a, DType::kFloat32, "sum_to_shape");
  RLG_REQUIRE(target.fully_specified(), "sum_to_shape needs concrete target");
  // Reduce leading extra dims, then any dims where target is 1.
  Tensor cur = a;
  while (cur.shape().rank() > target.rank()) {
    cur = reduce_sum(cur, 0, /*keep_dims=*/false);
  }
  for (int i = 0; i < target.rank(); ++i) {
    if (target.dim(i) == 1 && cur.shape().dim(i) != 1) {
      cur = reduce_sum(cur, i, /*keep_dims=*/true);
    }
  }
  RLG_REQUIRE(cur.shape() == target, "sum_to_shape: cannot reduce "
                                         << a.shape().to_string() << " to "
                                         << target.to_string());
  return cur;
}

Tensor softmax(const Tensor& a) {
  check_dtype(a, DType::kFloat32, "softmax");
  RLG_REQUIRE(a.shape().rank() >= 1, "softmax requires rank >= 1");
  int64_t cols = a.shape().dim(a.shape().rank() - 1);
  int64_t rows = a.num_elements() / cols;
  Tensor out(DType::kFloat32, a.shape());
  const float* pa = a.data<float>();
  float* po = out.mutable_data<float>();
  shard_range(rows_grain(cols), rows, [pa, po, cols](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* row = pa + r * cols;
      float* orow = po + r * cols;
      float mx = row[0];
      for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
      float sum = 0.0f;
      for (int64_t c = 0; c < cols; ++c) {
        orow[c] = std::exp(row[c] - mx);
        sum += orow[c];
      }
      for (int64_t c = 0; c < cols; ++c) orow[c] /= sum;
    }
  });
  return out;
}

Tensor log_softmax(const Tensor& a) {
  check_dtype(a, DType::kFloat32, "log_softmax");
  int64_t cols = a.shape().dim(a.shape().rank() - 1);
  int64_t rows = a.num_elements() / cols;
  Tensor out(DType::kFloat32, a.shape());
  const float* pa = a.data<float>();
  float* po = out.mutable_data<float>();
  shard_range(rows_grain(cols), rows, [pa, po, cols](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* row = pa + r * cols;
      float* orow = po + r * cols;
      float mx = row[0];
      for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
      float sum = 0.0f;
      for (int64_t c = 0; c < cols; ++c) sum += std::exp(row[c] - mx);
      float lse = mx + std::log(sum);
      for (int64_t c = 0; c < cols; ++c) orow[c] = row[c] - lse;
    }
  });
  return out;
}

Tensor argmax(const Tensor& a) {
  check_dtype(a, DType::kFloat32, "argmax");
  RLG_REQUIRE(a.shape().rank() >= 1, "argmax requires rank >= 1");
  int64_t cols = a.shape().dim(a.shape().rank() - 1);
  int64_t rows = a.num_elements() / cols;
  Shape out_shape = a.shape().drop_front(0);
  // Remove last dim.
  std::vector<int64_t> dims(a.shape().dims().begin(),
                            a.shape().dims().end() - 1);
  Tensor out(DType::kInt32, Shape(dims));
  const float* pa = a.data<float>();
  int32_t* po = out.mutable_data<int32_t>();
  shard_range(rows_grain(cols), rows, [pa, po, cols](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* row = pa + r * cols;
      int64_t best = 0;
      for (int64_t c = 1; c < cols; ++c) {
        if (row[c] > row[best]) best = c;
      }
      po[r] = static_cast<int32_t>(best);
    }
  });
  return out;
}

Tensor one_hot(const Tensor& indices, int64_t depth) {
  check_dtype(indices, DType::kInt32, "one_hot");
  Shape out_shape = indices.shape().concat(Shape{depth});
  Tensor out = Tensor::zeros(DType::kFloat32, out_shape);
  const int32_t* pi = indices.data<int32_t>();
  float* po = out.mutable_data<float>();
  for (int64_t i = 0; i < indices.num_elements(); ++i) {
    int32_t idx = pi[i];
    RLG_REQUIRE(idx >= 0 && idx < depth,
                "one_hot index " << idx << " out of range [0, " << depth
                                 << ")");
    po[i * depth + idx] = 1.0f;
  }
  return out;
}

Tensor gather_rows(const Tensor& params, const Tensor& indices) {
  check_dtype(indices, DType::kInt32, "gather_rows");
  RLG_REQUIRE(params.shape().rank() >= 1, "gather_rows requires rank >= 1");
  RLG_REQUIRE(indices.shape().rank() == 1, "gather_rows indices must be 1-D");
  int64_t n = params.shape().dim(0);
  int64_t row_elems = params.num_elements() / std::max<int64_t>(n, 1);
  size_t row_bytes = static_cast<size_t>(row_elems) * dtype_size(params.dtype());
  Shape out_shape =
      Shape{indices.shape().dim(0)}.concat(params.shape().drop_front(1));
  Tensor out(params.dtype(), out_shape);
  const int32_t* pi = indices.data<int32_t>();
  const auto* pp = static_cast<const uint8_t*>(params.raw());
  auto* po = static_cast<uint8_t*>(out.mutable_raw());
  for (int64_t i = 0; i < indices.num_elements(); ++i) {
    int32_t idx = pi[i];
    RLG_REQUIRE(idx >= 0 && idx < n, "gather_rows index out of range");
    std::memcpy(po + static_cast<size_t>(i) * row_bytes,
                pp + static_cast<size_t>(idx) * row_bytes, row_bytes);
  }
  return out;
}

Tensor select_columns(const Tensor& values, const Tensor& indices) {
  check_dtype(values, DType::kFloat32, "select_columns");
  check_dtype(indices, DType::kInt32, "select_columns");
  RLG_REQUIRE(values.shape().rank() == 2, "select_columns values must be 2-D");
  RLG_REQUIRE(indices.shape().rank() == 1 &&
                  indices.shape().dim(0) == values.shape().dim(0),
              "select_columns indices must be [batch]");
  int64_t batch = values.shape().dim(0);
  int64_t cols = values.shape().dim(1);
  Tensor out(DType::kFloat32, Shape{batch});
  const float* pv = values.data<float>();
  const int32_t* pi = indices.data<int32_t>();
  float* po = out.mutable_data<float>();
  for (int64_t b = 0; b < batch; ++b) {
    int32_t c = pi[b];
    RLG_REQUIRE(c >= 0 && c < cols, "select_columns index out of range");
    po[b] = pv[b * cols + c];
  }
  return out;
}

Tensor concat(const std::vector<Tensor>& parts, int axis) {
  RLG_REQUIRE(!parts.empty(), "concat of zero tensors");
  const Shape& first = parts[0].shape();
  RLG_REQUIRE(axis >= 0 && axis < first.rank(), "concat axis out of range");
  int64_t total_axis = 0;
  for (const Tensor& p : parts) {
    RLG_REQUIRE(p.dtype() == parts[0].dtype(), "concat dtype mismatch");
    RLG_REQUIRE(p.shape().rank() == first.rank(), "concat rank mismatch");
    for (int i = 0; i < first.rank(); ++i) {
      if (i != axis) {
        RLG_REQUIRE(p.shape().dim(i) == first.dim(i),
                    "concat non-axis dim mismatch at axis " << i);
      }
    }
    total_axis += p.shape().dim(axis);
  }
  Shape out_shape = first.with_dim(axis, total_axis);
  Tensor out(parts[0].dtype(), out_shape);
  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= first.dim(i);
  int64_t inner = 1;
  for (int i = axis + 1; i < first.rank(); ++i) inner *= first.dim(i);
  size_t esize = dtype_size(parts[0].dtype());
  auto* po = static_cast<uint8_t*>(out.mutable_raw());
  size_t out_row = static_cast<size_t>(total_axis * inner) * esize;
  size_t offset = 0;
  for (const Tensor& p : parts) {
    size_t p_row = static_cast<size_t>(p.shape().dim(axis) * inner) * esize;
    const auto* pp = static_cast<const uint8_t*>(p.raw());
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + static_cast<size_t>(o) * out_row + offset,
                  pp + static_cast<size_t>(o) * p_row, p_row);
    }
    offset += p_row;
  }
  return out;
}

std::vector<Tensor> split(const Tensor& t, int axis,
                          const std::vector<int64_t>& sizes) {
  RLG_REQUIRE(axis >= 0 && axis < t.shape().rank(), "split axis out of range");
  int64_t total = 0;
  for (int64_t s : sizes) total += s;
  RLG_REQUIRE(total == t.shape().dim(axis),
              "split sizes sum " << total << " != dim " << t.shape().dim(axis));
  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= t.shape().dim(i);
  int64_t inner = 1;
  for (int i = axis + 1; i < t.shape().rank(); ++i) inner *= t.shape().dim(i);
  size_t esize = dtype_size(t.dtype());
  const auto* pt = static_cast<const uint8_t*>(t.raw());
  size_t in_row = static_cast<size_t>(total * inner) * esize;
  std::vector<Tensor> out;
  out.reserve(sizes.size());
  size_t offset = 0;
  for (int64_t s : sizes) {
    Shape shape = t.shape().with_dim(axis, s);
    Tensor part(t.dtype(), shape);
    auto* pp = static_cast<uint8_t*>(part.mutable_raw());
    size_t p_row = static_cast<size_t>(s * inner) * esize;
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(pp + static_cast<size_t>(o) * p_row,
                  pt + static_cast<size_t>(o) * in_row + offset, p_row);
    }
    offset += p_row;
    out.push_back(std::move(part));
  }
  return out;
}

Tensor slice_rows(const Tensor& t, int64_t begin, int64_t size) {
  RLG_REQUIRE(t.shape().rank() >= 1, "slice_rows requires rank >= 1");
  int64_t n = t.shape().dim(0);
  RLG_REQUIRE(begin >= 0 && size >= 0 && begin + size <= n,
              "slice_rows [" << begin << ", " << begin + size
                             << ") out of range for " << n << " rows");
  int64_t row_elems = n == 0 ? 0 : t.num_elements() / n;
  size_t row_bytes = static_cast<size_t>(row_elems) * dtype_size(t.dtype());
  Shape out_shape = Shape{size}.concat(t.shape().drop_front(1));
  Tensor out(t.dtype(), out_shape);
  std::memcpy(out.mutable_raw(),
              static_cast<const uint8_t*>(t.raw()) +
                  static_cast<size_t>(begin) * row_bytes,
              static_cast<size_t>(size) * row_bytes);
  return out;
}

Tensor stack_rows(const std::vector<Tensor>& parts) {
  RLG_REQUIRE(!parts.empty(), "stack_rows of zero tensors");
  const Shape& s = parts[0].shape();
  Shape out_shape = s.prepend(static_cast<int64_t>(parts.size()));
  Tensor out(parts[0].dtype(), out_shape);
  size_t row_bytes = parts[0].byte_size();
  auto* po = static_cast<uint8_t*>(out.mutable_raw());
  for (size_t i = 0; i < parts.size(); ++i) {
    RLG_REQUIRE(parts[i].shape() == s && parts[i].dtype() == parts[0].dtype(),
                "stack_rows: inhomogeneous parts");
    std::memcpy(po + i * row_bytes, parts[i].raw(), row_bytes);
  }
  return out;
}

Tensor random_uniform(const Shape& shape, double lo, double hi, Rng& rng) {
  Tensor t(DType::kFloat32, shape);
  float* p = t.mutable_data<float>();
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor random_normal(const Shape& shape, double mean, double stddev, Rng& rng) {
  Tensor t(DType::kFloat32, shape);
  float* p = t.mutable_data<float>();
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor random_int(const Shape& shape, int64_t n, Rng& rng) {
  Tensor t(DType::kInt32, shape);
  int32_t* p = t.mutable_data<int32_t>();
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    p[i] = static_cast<int32_t>(rng.uniform_int(n));
  }
  return t;
}

namespace {
// Exactly the activation expressions of the standalone unary kernels, so a
// fused epilogue produces bit-identical results to the unfused op.
inline float apply_fused_activation(float v, FusedActivation act) {
  switch (act) {
    case FusedActivation::kNone: return v;
    case FusedActivation::kRelu: return v > 0.0f ? v : 0.0f;
    case FusedActivation::kTanh: return std::tanh(v);
    case FusedActivation::kSigmoid: return 1.0f / (1.0f + std::exp(-v));
  }
  return v;
}
}  // namespace

FusedActivation fused_activation_from_string(const std::string& name) {
  if (name.empty() || name == "none" || name == "linear") {
    return FusedActivation::kNone;
  }
  if (name == "relu") return FusedActivation::kRelu;
  if (name == "tanh") return FusedActivation::kTanh;
  if (name == "sigmoid") return FusedActivation::kSigmoid;
  throw ValueError("fused activation: unsupported \"" + name + "\"");
}

Tensor fused_dense(const Tensor& x, const Tensor& w, const Tensor& bias,
                   FusedActivation act) {
  check_dtype(x, DType::kFloat32, "fused_dense");
  check_dtype(w, DType::kFloat32, "fused_dense");
  check_dtype(bias, DType::kFloat32, "fused_dense");
  RLG_REQUIRE(x.shape().rank() == 2 && w.shape().rank() == 2,
              "fused_dense requires rank-2 operands, got "
                  << x.shape().to_string() << " x " << w.shape().to_string());
  int64_t m = x.shape().dim(0), k = x.shape().dim(1);
  int64_t k2 = w.shape().dim(0), n = w.shape().dim(1);
  RLG_REQUIRE(k == k2,
              "fused_dense inner dims mismatch: " << k << " vs " << k2);
  RLG_REQUIRE(bias.shape().rank() == 1 && bias.shape().dim(0) == n,
              "fused_dense bias must be [" << n << "], got "
                                           << bias.shape().to_string());
  Tensor out = Tensor::zeros(DType::kFloat32, Shape{m, n});
  const float* pa = x.data<float>();
  const float* pb = w.data<float>();
  const float* pbias = bias.data<float>();
  float* po = out.mutable_data<float>();
  // Same shard grain, k-blocking, and ascending-k accumulation as matmul;
  // the bias + activation epilogue runs per owned row after the full k loop,
  // inside the same shard, so fused == MatMul -> Add -> act bit for bit.
  constexpr int64_t kKBlock = 256;
  shard_range(rows_grain(2 * k * n), m,
              [pa, pb, pbias, po, k, n, act](int64_t r0, int64_t r1) {
                for (int64_t kb = 0; kb < k; kb += kKBlock) {
                  int64_t ke = std::min(k, kb + kKBlock);
                  for (int64_t i = r0; i < r1; ++i) {
                    const float* arow = pa + i * k;
                    float* orow = po + i * n;
                    for (int64_t kk = kb; kk < ke; ++kk) {
                      float av = arow[kk];
                      if (av == 0.0f) continue;
                      const float* brow = pb + kk * n;
                      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
                    }
                  }
                }
                for (int64_t i = r0; i < r1; ++i) {
                  float* orow = po + i * n;
                  for (int64_t j = 0; j < n; ++j) {
                    orow[j] = apply_fused_activation(orow[j] + pbias[j], act);
                  }
                }
              });
  return out;
}

Tensor fused_conv2d(const Tensor& input, const Tensor& filter,
                    const Tensor& bias, int stride, bool same_padding,
                    FusedActivation act) {
  check_dtype(input, DType::kFloat32, "fused_conv2d");
  check_dtype(filter, DType::kFloat32, "fused_conv2d");
  check_dtype(bias, DType::kFloat32, "fused_conv2d");
  ConvDims d = conv_dims(input.shape(), filter.shape(), stride, same_padding);
  RLG_REQUIRE(bias.shape().rank() == 1 && bias.shape().dim(0) == d.out_c,
              "fused_conv2d bias must be [" << d.out_c << "], got "
                                            << bias.shape().to_string());
  Tensor out =
      Tensor::zeros(DType::kFloat32, Shape{d.batch, d.out_h, d.out_w, d.out_c});
  const float* pi = input.data<float>();
  const float* pf = filter.data<float>();
  const float* pbias = bias.data<float>();
  float* po = out.mutable_data<float>();
  // conv2d's shard decomposition and accumulation order, plus a per-pixel
  // bias + activation epilogue on the shard's own output rows.
  int64_t conv_row_flops = 2 * d.out_w * d.kh * d.kw * d.in_c * d.out_c;
  shard_range(rows_grain(conv_row_flops), d.batch * d.out_h,
              [&d, pi, pf, pbias, po, stride, act](int64_t row0, int64_t row1) {
    for (int64_t row = row0; row < row1; ++row) {
      int64_t b = row / d.out_h;
      int64_t oh = row % d.out_h;
      for (int64_t ow = 0; ow < d.out_w; ++ow) {
        float* opix = po + ((b * d.out_h + oh) * d.out_w + ow) * d.out_c;
        for (int64_t fh = 0; fh < d.kh; ++fh) {
          int64_t ih = oh * stride + fh - d.pad_h;
          if (ih < 0 || ih >= d.in_h) continue;
          for (int64_t fw = 0; fw < d.kw; ++fw) {
            int64_t iw = ow * stride + fw - d.pad_w;
            if (iw < 0 || iw >= d.in_w) continue;
            const float* ipix = pi + ((b * d.in_h + ih) * d.in_w + iw) * d.in_c;
            const float* fpix = pf + (fh * d.kw + fw) * d.in_c * d.out_c;
            for (int64_t c = 0; c < d.in_c; ++c) {
              float iv = ipix[c];
              if (iv == 0.0f) continue;
              const float* frow = fpix + c * d.out_c;
              for (int64_t oc = 0; oc < d.out_c; ++oc) {
                opix[oc] += iv * frow[oc];
              }
            }
          }
        }
        for (int64_t oc = 0; oc < d.out_c; ++oc) {
          opix[oc] = apply_fused_activation(opix[oc] + pbias[oc], act);
        }
      }
    }
  });
  return out;
}

namespace {
struct CompiledLink {
  float (*un)(float) = nullptr;
  float (*bin)(float, float) = nullptr;
  bool chain_left = true;
  int extra = -1;
};

CompiledLink compile_link(const EwiseLink& link, size_t num_extras) {
  CompiledLink c;
  if (link.binary) {
    c.chain_left = link.chain_left;
    c.extra = link.extra;
    RLG_REQUIRE(link.extra >= 0 &&
                    static_cast<size_t>(link.extra) < num_extras,
                "fused_elementwise: extra index " << link.extra
                                                  << " out of range");
    // Same lambdas as the standalone binary kernels.
    if (link.op == "Add") c.bin = +[](float x, float y) { return x + y; };
    else if (link.op == "Sub") c.bin = +[](float x, float y) { return x - y; };
    else if (link.op == "Mul") c.bin = +[](float x, float y) { return x * y; };
    else if (link.op == "Div") c.bin = +[](float x, float y) { return x / y; };
    else if (link.op == "Minimum")
      c.bin = +[](float x, float y) { return x < y ? x : y; };
    else if (link.op == "Maximum")
      c.bin = +[](float x, float y) { return x > y ? x : y; };
    else
      throw ValueError("fused_elementwise: unsupported binary op " + link.op);
  } else {
    // Same lambdas as the standalone unary kernels.
    if (link.op == "Neg") c.un = +[](float x) { return -x; };
    else if (link.op == "Exp") c.un = +[](float x) { return std::exp(x); };
    else if (link.op == "Log") c.un = +[](float x) { return std::log(x); };
    else if (link.op == "Sqrt") c.un = +[](float x) { return std::sqrt(x); };
    else if (link.op == "Square") c.un = +[](float x) { return x * x; };
    else if (link.op == "Abs") c.un = +[](float x) { return std::fabs(x); };
    else if (link.op == "Relu")
      c.un = +[](float x) { return x > 0.0f ? x : 0.0f; };
    else if (link.op == "Sigmoid")
      c.un = +[](float x) { return 1.0f / (1.0f + std::exp(-x)); };
    else if (link.op == "Tanh") c.un = +[](float x) { return std::tanh(x); };
    else
      throw ValueError("fused_elementwise: unsupported unary op " + link.op);
  }
  return c;
}
}  // namespace

Tensor fused_elementwise(const Tensor& x, const std::vector<Tensor>& extras,
                         const std::vector<EwiseLink>& links) {
  check_dtype(x, DType::kFloat32, "fused_elementwise");
  for (const Tensor& e : extras) {
    check_dtype(e, DType::kFloat32, "fused_elementwise");
  }
  std::vector<CompiledLink> steps;
  steps.reserve(links.size());
  for (const EwiseLink& l : links) steps.push_back(compile_link(l, extras.size()));
  const Shape& oshape = x.shape();
  int rank = oshape.rank();
  int64_t n = oshape.num_elements();
  // Per-extra broadcast strides against the chain (= output) shape, stride 0
  // on broadcast dimensions — the same cursor scheme as binary_broadcast, so
  // each extra element pairs with the same chain element as in the unfused
  // broadcast op.
  std::vector<std::vector<int64_t>> estrides(extras.size());
  for (size_t e = 0; e < extras.size(); ++e) {
    const Shape& es = extras[e].shape();
    RLG_REQUIRE(es.rank() <= rank,
                "fused_elementwise: extra " << es.to_string()
                                            << " does not broadcast into "
                                            << oshape.to_string());
    auto cs = contiguous_strides(es);
    estrides[e].assign(static_cast<size_t>(rank), 0);
    for (int i = 0; i < rank; ++i) {
      int ei = es.rank() - rank + i;
      if (ei >= 0 && es.dim(ei) != 1) {
        RLG_REQUIRE(es.dim(ei) == oshape.dim(i),
                    "fused_elementwise: extra " << es.to_string()
                                                << " does not broadcast into "
                                                << oshape.to_string());
        estrides[e][static_cast<size_t>(i)] = cs[static_cast<size_t>(ei)];
      }
    }
  }
  Tensor out(DType::kFloat32, oshape);
  const float* px = x.data<float>();
  std::vector<const float*> pext(extras.size());
  for (size_t e = 0; e < extras.size(); ++e) pext[e] = extras[e].data<float>();
  float* po = out.mutable_data<float>();
  size_t ne = extras.size();
  shard_range(kMathGrain, n, [&](int64_t begin, int64_t end) {
    // Seed the odometer and every extra's strided cursor from the shard's
    // first flat index, then walk exactly like the serial loop.
    std::vector<int64_t> idx(static_cast<size_t>(rank), 0);
    std::vector<int64_t> cursor(ne, 0);
    int64_t rem = begin;
    for (int d = rank - 1; d >= 0; --d) {
      auto du = static_cast<size_t>(d);
      idx[du] = rem % oshape.dim(d);
      rem /= oshape.dim(d);
      for (size_t e = 0; e < ne; ++e) cursor[e] += idx[du] * estrides[e][du];
    }
    for (int64_t flat = begin; flat < end; ++flat) {
      float v = px[flat];
      for (const CompiledLink& s : steps) {
        if (s.un) {
          v = s.un(v);
        } else {
          float o = pext[static_cast<size_t>(s.extra)]
                        [cursor[static_cast<size_t>(s.extra)]];
          v = s.chain_left ? s.bin(v, o) : s.bin(o, v);
        }
      }
      po[flat] = v;
      for (int d = rank - 1; d >= 0; --d) {
        auto du = static_cast<size_t>(d);
        ++idx[du];
        for (size_t e = 0; e < ne; ++e) cursor[e] += estrides[e][du];
        if (idx[du] < oshape.dim(d)) break;
        for (size_t e = 0; e < ne; ++e) cursor[e] -= estrides[e][du] * idx[du];
        idx[du] = 0;
      }
    }
  });
  return out;
}

Tensor quantize_linear(const Tensor& a, float scale) {
  check_dtype(a, DType::kFloat32, "quantize_linear");
  RLG_REQUIRE(std::isfinite(scale) && scale > 0.0f,
              "quantize_linear: scale must be finite and positive, got "
                  << scale);
  Tensor out(DType::kInt8, a.shape());
  const float* pa = a.data<float>();
  int8_t* po = out.mutable_data<int8_t>();
  shard_range(kCheapGrain, a.num_elements(),
              [pa, po, scale](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  float q = std::round(pa[i] / scale);
                  if (q > 127.0f) q = 127.0f;
                  if (q < -127.0f) q = -127.0f;
                  po[i] = static_cast<int8_t>(q);
                }
              });
  return out;
}

Tensor dequantize_linear(const Tensor& a, float scale) {
  check_dtype(a, DType::kInt8, "dequantize_linear");
  RLG_REQUIRE(std::isfinite(scale) && scale > 0.0f,
              "dequantize_linear: scale must be finite and positive, got "
                  << scale);
  Tensor out(DType::kFloat32, a.shape());
  const int8_t* pa = a.data<int8_t>();
  float* po = out.mutable_data<float>();
  shard_range(kCheapGrain, a.num_elements(),
              [pa, po, scale](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  po[i] = static_cast<float>(pa[i]) * scale;
                }
              });
  return out;
}

Tensor matmul_int8(const Tensor& a, const Tensor& b, float rescale) {
  check_dtype(a, DType::kInt8, "matmul_int8");
  check_dtype(b, DType::kInt8, "matmul_int8");
  RLG_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul_int8 requires rank-2 operands, got "
                  << a.shape().to_string() << " x " << b.shape().to_string());
  int64_t m = a.shape().dim(0), k = a.shape().dim(1);
  int64_t k2 = b.shape().dim(0), n = b.shape().dim(1);
  RLG_REQUIRE(k == k2,
              "matmul_int8 inner dims mismatch: " << k << " vs " << k2);
  Tensor out(DType::kFloat32, Shape{m, n});
  const int8_t* pa = a.data<int8_t>();
  const int8_t* pb = b.data<int8_t>();
  float* po = out.mutable_data<float>();
  // Integer accumulation is exact and associative, so sharding only needs
  // disjoint output rows; each row accumulates into an int32 scratch vector
  // and converts once at the end (single rounding step per element).
  shard_range(rows_grain(2 * k * n), m,
              [pa, pb, po, k, n, rescale](int64_t r0, int64_t r1) {
                std::vector<int32_t> acc(static_cast<size_t>(n));
                for (int64_t i = r0; i < r1; ++i) {
                  std::fill(acc.begin(), acc.end(), 0);
                  const int8_t* arow = pa + i * k;
                  for (int64_t kk = 0; kk < k; ++kk) {
                    int32_t av = arow[kk];
                    if (av == 0) continue;
                    const int8_t* brow = pb + kk * n;
                    for (int64_t j = 0; j < n; ++j) {
                      acc[static_cast<size_t>(j)] +=
                          av * static_cast<int32_t>(brow[j]);
                    }
                  }
                  float* orow = po + i * n;
                  for (int64_t j = 0; j < n; ++j) {
                    orow[j] = static_cast<float>(acc[static_cast<size_t>(j)]) *
                              rescale;
                  }
                }
              });
  return out;
}

Tensor cast(const Tensor& a, DType target) { return a.cast(target); }

}  // namespace kernels
}  // namespace rlgraph
