// Numeric kernels backing the op set of both backends.
//
// Kernels are pure functions Tensor(s) -> Tensor. Elementwise binary kernels
// support full numpy-style broadcasting; sum_to_shape provides the reverse
// reduction used by gradient rules. Convolution is NHWC with explicit
// forward and backward kernels.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/random.h"

namespace rlgraph {
namespace kernels {

// --- Elementwise binary (broadcasting, float32 unless noted) ---------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);
Tensor maximum(const Tensor& a, const Tensor& b);
// Comparisons return kBool tensors; operands may be float32 or int32.
Tensor equal(const Tensor& a, const Tensor& b);
Tensor greater(const Tensor& a, const Tensor& b);
Tensor less(const Tensor& a, const Tensor& b);
// Logical ops on kBool.
Tensor logical_and(const Tensor& a, const Tensor& b);
Tensor logical_or(const Tensor& a, const Tensor& b);
Tensor logical_not(const Tensor& a);

// --- Elementwise unary (float32) -------------------------------------------
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor square(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh(const Tensor& a);
// Numerically stable log(1 + exp(x)).
Tensor softplus(const Tensor& a);
Tensor clip(const Tensor& a, double lo, double hi);

// where(cond: bool, a, b) with broadcasting of cond against a/b.
Tensor where(const Tensor& cond, const Tensor& a, const Tensor& b);

// --- Linear algebra ---------------------------------------------------------
// a: [M, K], b: [K, N] -> [M, N]; float32.
Tensor matmul(const Tensor& a, const Tensor& b);
// 2-D transpose.
Tensor transpose2d(const Tensor& a);

// --- Convolution (NHWC) -----------------------------------------------------
// input: [B, H, W, Cin], filter: [kh, kw, Cin, Cout]; "same" padding iff
// same_padding, stride >= 1. Output [B, Ho, Wo, Cout].
Tensor conv2d(const Tensor& input, const Tensor& filter, int stride,
              bool same_padding);
Tensor conv2d_backprop_input(const Shape& input_shape, const Tensor& filter,
                             const Tensor& grad_out, int stride,
                             bool same_padding);
Tensor conv2d_backprop_filter(const Tensor& input, const Shape& filter_shape,
                              const Tensor& grad_out, int stride,
                              bool same_padding);

// --- Reductions -------------------------------------------------------------
// axis == -1 means "reduce all dimensions to a scalar"; keep_dims retains a
// size-1 dimension at the reduced axis.
Tensor reduce_sum(const Tensor& a, int axis, bool keep_dims);
Tensor reduce_mean(const Tensor& a, int axis, bool keep_dims);
Tensor reduce_max(const Tensor& a, int axis, bool keep_dims);
// Sum a broadcast result back down to `target` shape (gradient of broadcast).
Tensor sum_to_shape(const Tensor& a, const Shape& target);

// --- Softmax family (last axis, float32) ------------------------------------
Tensor softmax(const Tensor& a);
Tensor log_softmax(const Tensor& a);

// --- Indexing ---------------------------------------------------------------
// argmax over the last axis -> int32 tensor with that axis removed.
Tensor argmax(const Tensor& a);
// one_hot(indices int32 [...], depth) -> float32 [..., depth].
Tensor one_hot(const Tensor& indices, int64_t depth);
// Gather rows: params [N, ...], indices int32 [M] -> [M, ...].
Tensor gather_rows(const Tensor& params, const Tensor& indices);
// Batched column select: values [B, N], indices int32 [B] -> [B].
Tensor select_columns(const Tensor& values, const Tensor& indices);

// --- Shape manipulation ------------------------------------------------------
Tensor concat(const std::vector<Tensor>& parts, int axis);
std::vector<Tensor> split(const Tensor& t, int axis,
                          const std::vector<int64_t>& sizes);
// slice along axis 0: rows [begin, begin+size).
Tensor slice_rows(const Tensor& t, int64_t begin, int64_t size);
// Stack rank-R tensors into rank R+1 along a new axis 0.
Tensor stack_rows(const std::vector<Tensor>& parts);

// --- Random ------------------------------------------------------------------
Tensor random_uniform(const Shape& shape, double lo, double hi, Rng& rng);
Tensor random_normal(const Shape& shape, double mean, double stddev, Rng& rng);
// Random integers in [0, n) as int32.
Tensor random_int(const Shape& shape, int64_t n, Rng& rng);

// --- Fused composites --------------------------------------------------------
// The pattern-fusion pass lowers MatMul+AddBias(+activation) and
// Conv2D+AddBias(+activation) onto these. Bias add and activation run in the
// accumulation loop's epilogue within the same output shard, so results are
// bitwise identical to the unfused op sequence at any thread count.
enum class FusedActivation { kNone = 0, kRelu = 1, kTanh = 2, kSigmoid = 3 };
FusedActivation fused_activation_from_string(const std::string& name);
// x: [M, K], w: [K, N], bias: [N] -> act(x @ w + bias), float32.
Tensor fused_dense(const Tensor& x, const Tensor& w, const Tensor& bias,
                   FusedActivation act);
// NHWC conv + per-channel bias [Cout] + activation.
Tensor fused_conv2d(const Tensor& input, const Tensor& filter,
                    const Tensor& bias, int stride, bool same_padding,
                    FusedActivation act);

// One link of a fused elementwise chain: a unary map, or a binary op
// combining the running value with `extras[extra]` (which broadcasts into
// the chain shape; stride-0 iteration on broadcast dimensions).
struct EwiseLink {
  std::string op;          // "Relu", "Add", ...
  bool binary = false;
  bool chain_left = true;  // binary: running value is the left operand
  int extra = -1;          // binary: index into `extras`
};
Tensor fused_elementwise(const Tensor& x, const std::vector<Tensor>& extras,
                         const std::vector<EwiseLink>& links);

// --- Int8 quantization -------------------------------------------------------
// Symmetric per-tensor linear quantization:
//   q = clamp(round(x / scale), -127, 127) as int8.
Tensor quantize_linear(const Tensor& a, float scale);
Tensor dequantize_linear(const Tensor& a, float scale);
// a: int8 [M, K], b: int8 [K, N] -> float32 [M, N]. Accumulates in int32 and
// rescales by `rescale` (= scale_a * scale_b) at the output.
Tensor matmul_int8(const Tensor& a, const Tensor& b, float rescale);

// --- Misc --------------------------------------------------------------------
Tensor cast(const Tensor& a, DType target);

}  // namespace kernels
}  // namespace rlgraph
