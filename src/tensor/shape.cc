#include "tensor/shape.h"

#include <algorithm>
#include <sstream>

#include "util/errors.h"

namespace rlgraph {

int64_t Shape::dim(int i) const {
  RLG_REQUIRE(i >= 0 && i < rank(),
              "shape dim index " << i << " out of range for rank " << rank());
  return dims_[static_cast<size_t>(i)];
}

bool Shape::fully_specified() const {
  return std::all_of(dims_.begin(), dims_.end(),
                     [](int64_t d) { return d >= 0; });
}

int64_t Shape::num_elements() const {
  RLG_REQUIRE(fully_specified(),
              "num_elements on partial shape " << to_string());
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

bool Shape::matches(const Shape& concrete) const {
  if (rank() != concrete.rank()) return false;
  for (int i = 0; i < rank(); ++i) {
    if (dims_[static_cast<size_t>(i)] != kUnknownDim &&
        dims_[static_cast<size_t>(i)] != concrete.dims_[static_cast<size_t>(i)]) {
      return false;
    }
  }
  return true;
}

Shape Shape::with_dim(int axis, int64_t value) const {
  RLG_REQUIRE(axis >= 0 && axis < rank(),
              "with_dim axis " << axis << " out of range");
  Shape s = *this;
  s.dims_[static_cast<size_t>(axis)] = value;
  return s;
}

Shape Shape::prepend(int64_t value) const {
  Shape s;
  s.dims_.reserve(dims_.size() + 1);
  s.dims_.push_back(value);
  s.dims_.insert(s.dims_.end(), dims_.begin(), dims_.end());
  return s;
}

Shape Shape::concat(const Shape& other) const {
  Shape s = *this;
  s.dims_.insert(s.dims_.end(), other.dims_.begin(), other.dims_.end());
  return s;
}

Shape Shape::drop_front(int n) const {
  RLG_REQUIRE(n >= 0 && n <= rank(), "drop_front(" << n << ") on rank "
                                                   << rank());
  Shape s;
  s.dims_.assign(dims_.begin() + n, dims_.end());
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    if (dims_[i] == kUnknownDim) {
      os << "?";
    } else {
      os << dims_[i];
    }
  }
  os << ")";
  return os.str();
}

Shape broadcast_shapes(const Shape& a, const Shape& b) {
  // Align trailing dimensions.
  int rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> out(static_cast<size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    int ai = a.rank() - 1 - i;
    int bi = b.rank() - 1 - i;
    int64_t da = ai >= 0 ? a.dim(ai) : 1;
    int64_t db = bi >= 0 ? b.dim(bi) : 1;
    int64_t d;
    if (da == db) {
      d = da;
    } else if (da == 1) {
      d = db;
    } else if (db == 1) {
      d = da;
    } else if (da == kUnknownDim || db == kUnknownDim) {
      d = kUnknownDim;
    } else {
      throw ValueError("cannot broadcast shapes " + a.to_string() + " and " +
                       b.to_string());
    }
    out[static_cast<size_t>(rank - 1 - i)] = d;
  }
  return Shape(std::move(out));
}

}  // namespace rlgraph
