// Tensor shapes, with support for unspecified ("wildcard") dimensions.
//
// Spaces describe tensors whose batch/time extents are unknown until runtime;
// those ranks are represented as -1 (kUnknownDim). Concrete tensors always
// have fully-specified shapes.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace rlgraph {

inline constexpr int64_t kUnknownDim = -1;

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const;
  int64_t operator[](int i) const { return dim(i); }
  const std::vector<int64_t>& dims() const { return dims_; }

  bool is_scalar() const { return dims_.empty(); }
  // True iff no dimension is kUnknownDim.
  bool fully_specified() const;
  // Number of elements; requires fully_specified().
  int64_t num_elements() const;

  // Structural equality (unknown dims must match exactly).
  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // True if `concrete` (fully specified) is an instance of this possibly
  // partial shape: same rank, and every known dim matches.
  bool matches(const Shape& concrete) const;

  // Returns a copy with dimension `axis` replaced.
  Shape with_dim(int axis, int64_t value) const;
  // Returns a copy with a new dimension inserted at the front.
  Shape prepend(int64_t value) const;
  // Concatenate two shapes.
  Shape concat(const Shape& other) const;
  // Drop the first `n` dimensions.
  Shape drop_front(int n) const;

  std::string to_string() const;

 private:
  std::vector<int64_t> dims_;
};

// Result shape of broadcasting two shapes together (numpy rules restricted to
// "same rank, or one side has size-1/missing leading dims").
Shape broadcast_shapes(const Shape& a, const Shape& b);

}  // namespace rlgraph
