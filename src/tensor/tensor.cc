#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/buffer_pool.h"

namespace rlgraph {

namespace {
std::shared_ptr<void> allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;  // keep a valid pointer for 0-element tensors
  // A shape-specialized plan step may have preplanned this allocation into
  // its arena (exact byte-size match); that beats any pool lookup.
  if (std::shared_ptr<void> planned = PlannedAllocScope::try_take(bytes)) {
    return planned;
  }
  if (BufferPool* pool = BufferPool::current()) return pool->allocate(bytes);
  return std::shared_ptr<void>(::operator new(bytes),
                               [](void* p) { ::operator delete(p); });
}
}  // namespace

Tensor::Tensor() : Tensor(DType::kFloat32, Shape{}) {
  *mutable_data<float>() = 0.0f;
}

Tensor::Tensor(DType dtype, const Shape& shape)
    : dtype_(dtype), shape_(shape) {
  RLG_REQUIRE(shape.fully_specified(),
              "Tensor requires fully specified shape, got "
                  << shape.to_string());
  num_elements_ = shape.num_elements();
  buffer_ = allocate(byte_size());
}

Tensor Tensor::zeros(DType dtype, const Shape& shape) {
  Tensor t(dtype, shape);
  std::memset(t.mutable_raw(), 0, t.byte_size());
  return t;
}

Tensor Tensor::filled(DType dtype, const Shape& shape, double value) {
  Tensor t(dtype, shape);
  for (int64_t i = 0; i < t.num_elements(); ++i) t.set_flat(i, value);
  return t;
}

Tensor Tensor::scalar(float v) {
  Tensor t(DType::kFloat32, Shape{});
  *t.mutable_data<float>() = v;
  return t;
}

Tensor Tensor::scalar_int(int32_t v) {
  Tensor t(DType::kInt32, Shape{});
  *t.mutable_data<int32_t>() = v;
  return t;
}

Tensor Tensor::scalar_bool(bool v) {
  Tensor t(DType::kBool, Shape{});
  *t.mutable_data<uint8_t>() = v ? 1 : 0;
  return t;
}

Tensor Tensor::from_floats(const Shape& shape, std::vector<float> values) {
  Tensor t(DType::kFloat32, shape);
  RLG_REQUIRE(static_cast<int64_t>(values.size()) == t.num_elements(),
              "from_floats: " << values.size() << " values for shape "
                              << shape.to_string());
  std::memcpy(t.mutable_raw(), values.data(), t.byte_size());
  return t;
}

Tensor Tensor::from_ints(const Shape& shape, std::vector<int32_t> values) {
  Tensor t(DType::kInt32, shape);
  RLG_REQUIRE(static_cast<int64_t>(values.size()) == t.num_elements(),
              "from_ints: " << values.size() << " values for shape "
                            << shape.to_string());
  std::memcpy(t.mutable_raw(), values.data(), t.byte_size());
  return t;
}

Tensor Tensor::from_bools(const Shape& shape, const std::vector<bool>& values) {
  Tensor t(DType::kBool, shape);
  RLG_REQUIRE(static_cast<int64_t>(values.size()) == t.num_elements(),
              "from_bools: " << values.size() << " values for shape "
                             << shape.to_string());
  uint8_t* out = t.mutable_data<uint8_t>();
  for (size_t i = 0; i < values.size(); ++i) out[i] = values[i] ? 1 : 0;
  return t;
}

double Tensor::scalar_value() const {
  RLG_REQUIRE(num_elements_ == 1,
              "scalar_value on tensor with " << num_elements_ << " elements");
  return at_flat(0);
}

double Tensor::at_flat(int64_t i) const {
  RLG_REQUIRE(i >= 0 && i < num_elements_, "flat index out of range");
  switch (dtype_) {
    case DType::kFloat32: return static_cast<const float*>(buffer_.get())[i];
    case DType::kInt32: return static_cast<const int32_t*>(buffer_.get())[i];
    case DType::kUInt8: return static_cast<const uint8_t*>(buffer_.get())[i];
    case DType::kBool: return static_cast<const uint8_t*>(buffer_.get())[i];
    case DType::kInt8: return static_cast<const int8_t*>(buffer_.get())[i];
  }
  throw ValueError("unknown dtype");
}

void Tensor::set_flat(int64_t i, double v) {
  RLG_REQUIRE(i >= 0 && i < num_elements_, "flat index out of range");
  switch (dtype_) {
    case DType::kFloat32:
      static_cast<float*>(buffer_.get())[i] = static_cast<float>(v);
      return;
    case DType::kInt32:
      static_cast<int32_t*>(buffer_.get())[i] = static_cast<int32_t>(v);
      return;
    case DType::kUInt8:
      static_cast<uint8_t*>(buffer_.get())[i] = static_cast<uint8_t>(v);
      return;
    case DType::kBool:
      static_cast<uint8_t*>(buffer_.get())[i] = v != 0.0 ? 1 : 0;
      return;
    case DType::kInt8:
      static_cast<int8_t*>(buffer_.get())[i] = static_cast<int8_t>(v);
      return;
  }
  throw ValueError("unknown dtype");
}

Tensor Tensor::clone() const {
  Tensor t(dtype_, shape_);
  std::memcpy(t.mutable_raw(), buffer_.get(), byte_size());
  return t;
}

Tensor Tensor::reshaped(const Shape& shape) const {
  RLG_REQUIRE(shape.fully_specified() &&
                  shape.num_elements() == num_elements_,
              "reshape " << shape_.to_string() << " -> " << shape.to_string()
                         << " changes element count");
  Tensor t = *this;
  t.shape_ = shape;
  return t;
}

Tensor Tensor::cast(DType target) const {
  if (target == dtype_) return *this;
  Tensor t(target, shape_);
  for (int64_t i = 0; i < num_elements_; ++i) t.set_flat(i, at_flat(i));
  return t;
}

std::vector<float> Tensor::to_floats() const {
  std::vector<float> out(static_cast<size_t>(num_elements_));
  if (dtype_ == DType::kFloat32) {
    std::memcpy(out.data(), buffer_.get(), byte_size());
  } else {
    for (int64_t i = 0; i < num_elements_; ++i) {
      out[static_cast<size_t>(i)] = static_cast<float>(at_flat(i));
    }
  }
  return out;
}

std::vector<int32_t> Tensor::to_ints() const {
  std::vector<int32_t> out(static_cast<size_t>(num_elements_));
  if (dtype_ == DType::kInt32) {
    std::memcpy(out.data(), buffer_.get(), byte_size());
  } else {
    for (int64_t i = 0; i < num_elements_; ++i) {
      out[static_cast<size_t>(i)] = static_cast<int32_t>(at_flat(i));
    }
  }
  return out;
}

bool Tensor::equals(const Tensor& other) const {
  return dtype_ == other.dtype_ && shape_ == other.shape_ &&
         std::memcmp(buffer_.get(), other.buffer_.get(), byte_size()) == 0;
}

bool Tensor::all_close(const Tensor& other, double tol) const {
  if (dtype_ != other.dtype_ || shape_ != other.shape_) return false;
  for (int64_t i = 0; i < num_elements_; ++i) {
    double a = at_flat(i);
    double b = other.at_flat(i);
    if (std::isnan(a) != std::isnan(b)) return false;
    if (!std::isnan(a) && std::fabs(a - b) > tol) return false;
  }
  return true;
}

std::string Tensor::to_string(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor<" << dtype_name(dtype_) << ", " << shape_.to_string() << ">[";
  int64_t n = std::min(num_elements_, max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << at_flat(i);
  }
  if (n < num_elements_) os << ", ...";
  os << "]";
  return os.str();
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  RLG_REQUIRE(a.shape() == b.shape(),
              op << ": shape mismatch " << a.shape().to_string() << " vs "
                 << b.shape().to_string());
}

void check_dtype(const Tensor& t, DType expected, const char* op) {
  RLG_REQUIRE(t.dtype() == expected, op << ": expected dtype "
                                        << dtype_name(expected) << ", got "
                                        << dtype_name(t.dtype()));
}

Tensor stack_leading(const std::vector<Tensor>& parts) {
  RLG_REQUIRE(!parts.empty(), "stack_leading: no tensors to stack");
  const Tensor& first = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    RLG_REQUIRE(parts[i].dtype() == first.dtype() &&
                    parts[i].shape() == first.shape(),
                "stack_leading: part " << i << " is "
                    << dtype_name(parts[i].dtype())
                    << parts[i].shape().to_string() << ", expected "
                    << dtype_name(first.dtype()) << first.shape().to_string());
  }
  Tensor out(first.dtype(),
             first.shape().prepend(static_cast<int64_t>(parts.size())));
  uint8_t* dst = static_cast<uint8_t*>(out.mutable_raw());
  const size_t stride = first.byte_size();
  for (size_t i = 0; i < parts.size(); ++i) {
    std::memcpy(dst + i * stride, parts[i].raw(), stride);
  }
  return out;
}

std::vector<Tensor> unstack_leading(const Tensor& batch) {
  RLG_REQUIRE(batch.shape().rank() >= 1,
              "unstack_leading: need rank >= 1, got scalar");
  const int64_t n = batch.shape().dim(0);
  const Shape part_shape = batch.shape().drop_front(1);
  const size_t stride =
      static_cast<size_t>(part_shape.num_elements()) * dtype_size(batch.dtype());
  const uint8_t* src = static_cast<const uint8_t*>(batch.raw());
  std::vector<Tensor> parts;
  parts.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Tensor part(batch.dtype(), part_shape);
    std::memcpy(part.mutable_raw(), src + static_cast<size_t>(i) * stride,
                stride);
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace rlgraph
