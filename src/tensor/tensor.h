// Dense n-dimensional array with shared, immutable-by-convention storage.
//
// Tensors are cheap to copy (shared buffer). Kernels allocate fresh output
// buffers; in-place mutation is reserved for variable storage, which always
// owns a unique buffer (see clone()).
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/shape.h"
#include "util/errors.h"

namespace rlgraph {

class Tensor {
 public:
  // Default: empty float scalar-less tensor (rank-0 with one element 0).
  Tensor();

  // Uninitialized tensor of the given dtype/shape (shape must be fully
  // specified).
  Tensor(DType dtype, const Shape& shape);

  // Zero-filled factory.
  static Tensor zeros(DType dtype, const Shape& shape);
  static Tensor filled(DType dtype, const Shape& shape, double value);

  // Scalar factories.
  static Tensor scalar(float v);
  static Tensor scalar_int(int32_t v);
  static Tensor scalar_bool(bool v);

  // Build from a flat vector (row-major); size must match shape.
  static Tensor from_floats(const Shape& shape, std::vector<float> values);
  static Tensor from_ints(const Shape& shape, std::vector<int32_t> values);
  static Tensor from_bools(const Shape& shape, const std::vector<bool>& values);

  DType dtype() const { return dtype_; }
  const Shape& shape() const { return shape_; }
  int64_t num_elements() const { return num_elements_; }
  size_t byte_size() const {
    return static_cast<size_t>(num_elements_) * dtype_size(dtype_);
  }

  // Typed element access. T must match dtype (checked).
  template <typename T>
  const T* data() const {
    check_type<T>();
    return static_cast<const T*>(buffer_.get());
  }
  template <typename T>
  T* mutable_data() {
    check_type<T>();
    return static_cast<T*>(buffer_.get());
  }
  const void* raw() const { return buffer_.get(); }
  void* mutable_raw() { return buffer_.get(); }

  // Convenience scalar extraction (converts across numeric dtypes).
  double scalar_value() const;
  // Element i (flat index) converted to double.
  double at_flat(int64_t i) const;
  void set_flat(int64_t i, double v);

  // Deep copy with a freshly owned buffer.
  Tensor clone() const;

  // Same buffer, different shape (element count must match).
  Tensor reshaped(const Shape& shape) const;

  // Converts to the target dtype (element-wise cast).
  Tensor cast(DType target) const;

  // Flat copies out / in.
  std::vector<float> to_floats() const;
  std::vector<int32_t> to_ints() const;

  // True if same dtype/shape and bitwise-equal contents.
  bool equals(const Tensor& other) const;
  // True if same dtype/shape and max abs diff <= tol (numeric dtypes).
  bool all_close(const Tensor& other, double tol = 1e-6) const;

  std::string to_string(int64_t max_elements = 16) const;

 private:
  template <typename T>
  void check_type() const {
    constexpr DType want = DTypeOf<std::remove_cv_t<T>>::value;
    // Bool tensors are stored as bytes and may be accessed as uint8_t.
    RLG_REQUIRE(want == dtype_ ||
                    (want == DType::kUInt8 && dtype_ == DType::kBool),
                "tensor dtype mismatch: have " << dtype_name(dtype_));
  }

  DType dtype_;
  Shape shape_;
  int64_t num_elements_;
  std::shared_ptr<void> buffer_;
};

// Checked shape/dtype assertion helpers for kernels.
void check_same_shape(const Tensor& a, const Tensor& b, const char* op);
void check_dtype(const Tensor& t, DType expected, const char* op);

// --- batching by leading dimension -------------------------------------------
// The serving batcher coalesces per-request tensors into one batched plan
// run with these: stack_leading([x_1..x_n]) -> [n, ...] and
// unstack_leading([n, ...]) -> n tensors of shape [...]. All parts must
// share dtype and shape (ValueError otherwise).
Tensor stack_leading(const std::vector<Tensor>& parts);
std::vector<Tensor> unstack_leading(const Tensor& batch);

}  // namespace rlgraph
