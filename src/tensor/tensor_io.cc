#include "tensor/tensor_io.h"

#include <limits>

namespace rlgraph {

void write_tensor(ByteWriter* writer, const Tensor& tensor) {
  writer->write_u8(static_cast<uint8_t>(tensor.dtype()));
  writer->write_u32(static_cast<uint32_t>(tensor.shape().rank()));
  for (int64_t d : tensor.shape().dims()) writer->write_i64(d);
  writer->write_u64(tensor.byte_size());
  writer->write_bytes(tensor.raw(), tensor.byte_size());
}

Tensor read_tensor(ByteReader* reader) {
  const uint8_t dtype_byte = reader->read_u8();
  if (dtype_byte > static_cast<uint8_t>(DType::kInt8)) {
    throw SerializationError("tensor stream has invalid dtype tag " +
                             std::to_string(dtype_byte));
  }
  DType dtype = static_cast<DType>(dtype_byte);
  uint32_t rank = reader->read_u32();
  std::vector<int64_t> dims(rank);
  for (uint32_t d = 0; d < rank; ++d) {
    dims[d] = reader->read_i64();
    if (dims[d] < 0) {
      throw SerializationError("tensor stream has negative dimension " +
                               std::to_string(dims[d]));
    }
  }
  uint64_t nbytes = reader->read_u64();
  // Validate the declared byte count against dtype/dims and the bytes left
  // in the stream BEFORE allocating, so corrupt dims fail as the documented
  // SerializationError instead of a multi-GB allocation or bad_alloc.
  uint64_t expected = dtype_size(dtype);
  for (int64_t d : dims) {
    if (d != 0 &&
        expected > std::numeric_limits<uint64_t>::max() /
                       static_cast<uint64_t>(d)) {
      throw SerializationError("tensor stream byte size overflows (corrupt "
                               "dimensions)");
    }
    expected *= static_cast<uint64_t>(d);
  }
  if (expected != nbytes) {
    throw SerializationError(
        "tensor stream byte count " + std::to_string(nbytes) +
        " does not match declared dtype/shape (" + std::to_string(expected) +
        " expected)");
  }
  if (nbytes > reader->remaining()) {
    throw SerializationError(
        "tensor stream truncated: " + std::to_string(nbytes) +
        " bytes declared, " + std::to_string(reader->remaining()) +
        " remaining");
  }
  Tensor t(dtype, Shape(dims));
  reader->read_bytes(t.mutable_raw(), nbytes);
  return t;
}

}  // namespace rlgraph
