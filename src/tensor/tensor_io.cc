#include "tensor/tensor_io.h"

namespace rlgraph {

void write_tensor(ByteWriter* writer, const Tensor& tensor) {
  writer->write_u8(static_cast<uint8_t>(tensor.dtype()));
  writer->write_u32(static_cast<uint32_t>(tensor.shape().rank()));
  for (int64_t d : tensor.shape().dims()) writer->write_i64(d);
  writer->write_u64(tensor.byte_size());
  writer->write_bytes(tensor.raw(), tensor.byte_size());
}

Tensor read_tensor(ByteReader* reader) {
  const uint8_t dtype_byte = reader->read_u8();
  if (dtype_byte > static_cast<uint8_t>(DType::kBool)) {
    throw SerializationError("tensor stream has invalid dtype tag " +
                             std::to_string(dtype_byte));
  }
  DType dtype = static_cast<DType>(dtype_byte);
  uint32_t rank = reader->read_u32();
  std::vector<int64_t> dims(rank);
  for (uint32_t d = 0; d < rank; ++d) {
    dims[d] = reader->read_i64();
    if (dims[d] < 0) {
      throw SerializationError("tensor stream has negative dimension " +
                               std::to_string(dims[d]));
    }
  }
  uint64_t nbytes = reader->read_u64();
  Tensor t(dtype, Shape(dims));
  if (t.byte_size() != nbytes) {
    throw SerializationError(
        "tensor stream byte count " + std::to_string(nbytes) +
        " does not match shape " + t.shape().to_string());
  }
  reader->read_bytes(t.mutable_raw(), nbytes);
  return t;
}

}  // namespace rlgraph
