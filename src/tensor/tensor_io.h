// Tensor wire codec shared by the weight-snapshot format ("RLGW",
// agents/agent.cc) and the cross-process raylite transport (sample batches,
// parameter-server resync). One tensor serializes as:
//
//   u8  dtype tag
//   u32 rank, then rank x i64 dims
//   u64 byte count, then the raw little-endian buffer
//
// read_tensor validates the dtype tag, dimension signs, and the byte count
// against the decoded shape, throwing SerializationError on any mismatch —
// a truncated or corrupt stream never produces a silently wrong tensor.
#pragma once

#include "tensor/tensor.h"
#include "util/serialization.h"

namespace rlgraph {

void write_tensor(ByteWriter* writer, const Tensor& tensor);
Tensor read_tensor(ByteReader* reader);

}  // namespace rlgraph
