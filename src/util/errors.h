// Error types and checking macros used across RLgraph.
//
// RLgraph reports programmer and configuration errors via exceptions derived
// from rlgraph::Error. The RLG_CHECK* macros are used for internal invariant
// checks; build-time user errors (bad spaces, unknown ops, ...) throw the
// more specific subclasses so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rlgraph {

// Base class of all RLgraph errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A value (shape, dtype, argument) failed validation.
class ValueError : public Error {
 public:
  using Error::Error;
};

// Something was looked up by name and not found (op type, API method, ...).
class NotFoundError : public Error {
 public:
  using Error::Error;
};

// The component-graph build detected a constraint violation (e.g. a graph
// function executed before its component was input-complete).
class BuildError : public Error {
 public:
  using Error::Error;
};

// Errors from the JSON parser / config handling.
class ConfigError : public Error {
 public:
  using Error::Error;
};

// A serialized payload (weight snapshot, variable checkpoint) failed
// validation: truncated stream, wrong magic or version, corrupt metadata, or
// contents that do not match the graph it is being loaded into.
class SerializationError : public Error {
 public:
  using Error::Error;
};

// A timed wait (future get_for, queue pop_for) expired before completion.
class TimeoutError : public Error {
 public:
  using Error::Error;
};

// Admission control rejected a request: the serving queue is at capacity,
// a tenant exhausted its admission quota, or the server is shutting down.
// Clients should back off and retry. Multi-tenant admission control tags the
// error with the shedding scope — a global condition (every tenant is
// affected, the whole box is saturated) versus a tenant-local one (only this
// tenant's quota or sub-queue is exhausted; other tenants are unaffected) —
// plus the tenant id, so clients and tests can tell "back off, the service
// is overloaded" from "back off, *you* are over quota".
class OverloadedError : public Error {
 public:
  enum class Scope { kUnspecified, kGlobal, kTenant };

  using Error::Error;
  OverloadedError(const std::string& what, Scope scope, std::string tenant)
      : Error(what), scope_(scope), tenant_(std::move(tenant)) {}

  Scope scope() const { return scope_; }
  const std::string& tenant() const { return tenant_; }

 private:
  Scope scope_ = Scope::kUnspecified;
  std::string tenant_;
};

// A raylite actor is no longer able to serve calls: its factory threw, an
// injected crash killed it, or it failed while tasks were still queued.
// Futures of calls that were lost to the failure carry this error.
class ActorDeadError : public Error {
 public:
  using Error::Error;
};

// A supervised actor slot is permanently gone: the supervisor exhausted its
// restart budget and gave the worker up. Subclasses ActorDeadError so
// existing dead-worker handling still applies, but callers (and
// raylite::wait_for users calling get()) can distinguish "dead, a restart is
// coming" from "lost for good — reroute permanently".
class ActorLostError : public ActorDeadError {
 public:
  using ActorDeadError::ActorDeadError;
};

// The net transport could not establish a connection (refused, timed out,
// unreachable, bad address).
class ConnectionError : public Error {
 public:
  using Error::Error;
};

// An established connection died (peer crash, heartbeat timeout, partition,
// injected disconnect). In-flight RPC futures resolve with this error; the
// client may still reconnect — see ActorLostError for the permanent case.
class ConnectionLostError : public ConnectionError {
 public:
  using ConnectionError::ConnectionError;
};

// A deterministically injected fault (raylite::FaultInjector); distinct from
// organic failures so chaos tests can assert on the source.
class InjectedFaultError : public Error {
 public:
  using Error::Error;
};

namespace internal {

// Stream-style message collector that throws on destruction via Raise().
class ErrorStream {
 public:
  template <typename T>
  ErrorStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rlgraph

// Internal invariant check; failure indicates a bug in RLgraph itself.
#define RLG_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ::rlgraph::Error(std::string("RLG_CHECK failed: " #cond " at ") + \
                             __FILE__ + ":" + std::to_string(__LINE__));    \
    }                                                                       \
  } while (0)

#define RLG_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::rlgraph::internal::ErrorStream es_;                                 \
      es_ << "RLG_CHECK failed: " #cond " at " << __FILE__ << ":"           \
          << __LINE__ << ": " << msg;                                       \
      throw ::rlgraph::Error(es_.str());                                    \
    }                                                                       \
  } while (0)

// User-facing validation; throws ValueError with the streamed message.
#define RLG_REQUIRE(cond, msg)                                   \
  do {                                                           \
    if (!(cond)) {                                               \
      ::rlgraph::internal::ErrorStream es_;                      \
      es_ << msg;                                                \
      throw ::rlgraph::ValueError(es_.str());                    \
    }                                                            \
  } while (0)
