#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace rlgraph {

namespace {
const Json& shared_null() {
  static const Json null;
  return null;
}
}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw ConfigError("JSON value is not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) throw ConfigError("JSON value is not a number");
  return num_;
}

int64_t Json::as_int() const {
  if (type_ != Type::kNumber) throw ConfigError("JSON value is not a number");
  return static_cast<int64_t>(num_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw ConfigError("JSON value is not a string");
  return str_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::kArray) throw ConfigError("JSON value is not an array");
  return arr_;
}

JsonArray& Json::as_array() {
  if (type_ != Type::kArray) throw ConfigError("JSON value is not an array");
  return arr_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::kObject) throw ConfigError("JSON value is not an object");
  return obj_;
}

JsonObject& Json::as_object() {
  if (type_ != Type::kObject) throw ConfigError("JSON value is not an object");
  return obj_;
}

bool Json::has(const std::string& key) const {
  return type_ == Type::kObject && obj_.count(key) > 0;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) throw ConfigError("JSON value is not an object");
  auto it = obj_.find(key);
  if (it == obj_.end()) throw NotFoundError("JSON key not found: " + key);
  return it->second;
}

const Json& Json::get(const std::string& key) const {
  if (type_ != Type::kObject) return shared_null();
  auto it = obj_.find(key);
  return it == obj_.end() ? shared_null() : it->second;
}

bool Json::get_bool(const std::string& key, bool def) const {
  const Json& v = get(key);
  return v.is_null() ? def : v.as_bool();
}

int64_t Json::get_int(const std::string& key, int64_t def) const {
  const Json& v = get(key);
  return v.is_null() ? def : v.as_int();
}

double Json::get_double(const std::string& key, double def) const {
  const Json& v = get(key);
  return v.is_null() ? def : v.as_double();
}

std::string Json::get_string(const std::string& key,
                             const std::string& def) const {
  const Json& v = get(key);
  return v.is_null() ? def : v.as_string();
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw ConfigError("JSON value is not an object");
  return obj_[key];
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return arr_ == other.arr_;
    case Type::kObject: return obj_ == other.obj_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Writer.

namespace {

void escape_string(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void format_number(double v, std::string* out) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

void newline_indent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: format_number(num_, out); break;
    case Type::kString: escape_string(str_, out); break;
    case Type::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out->push_back(',');
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_string(k, out);
        *out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over the full JSON grammar.

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    int line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ConfigError("JSON parse error at line " + std::to_string(line) +
                      ", column " + std::to_string(col) + ": " + msg);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(const char* lit) {
    size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      advance();
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      char c = advance();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      advance();
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = advance();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = advance();
      if (c == '"') break;
      if (c == '\\') {
        char esc = advance();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs in configs are out of scope for RL configs).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    size_t start = pos_;
    if (peek() == '-') advance();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return Json(std::stod(text_.substr(start, pos_ - start)));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace rlgraph
