// A small, self-contained JSON value type, parser and writer.
//
// RLgraph agents are configured declaratively (paper §3.4): a JSON document
// names the algorithm and its components (network layer list, memory type,
// optimizer, device strategy, ...). This module provides the value model
// those configs are expressed in. It supports the full JSON grammar plus
// convenience typed accessors with defaults.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/errors.h"

namespace rlgraph {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys ordered, which makes writer output deterministic.
using JsonObject = std::map<std::string, Json>;

// A JSON value: null, bool, number (stored as double, with integer
// preservation for values that round-trip), string, array or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(size_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::kArray), arr_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Strict accessors; throw ConfigError on type mismatch.
  bool as_bool() const;
  double as_double() const;
  int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  // Object helpers.
  bool has(const std::string& key) const;
  // Throws NotFoundError if absent.
  const Json& at(const std::string& key) const;
  // Returns a shared null if absent.
  const Json& get(const std::string& key) const;
  // Typed getters with defaults (absent key or null value -> default).
  bool get_bool(const std::string& key, bool def) const;
  int64_t get_int(const std::string& key, int64_t def) const;
  double get_double(const std::string& key, double def) const;
  std::string get_string(const std::string& key, const std::string& def) const;

  // Mutating object access; converts a null value into an object.
  Json& operator[](const std::string& key);

  // Serialize. indent < 0 -> compact single line.
  std::string dump(int indent = -1) const;

  // Parse from text; throws ConfigError with line/column on failure.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

}  // namespace rlgraph
