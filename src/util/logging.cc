#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace rlgraph {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized, read env on first use.
std::mutex g_io_mutex;

int level_from_env() {
  const char* env = std::getenv("RLGRAPH_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "DEBUG") == 0) return 0;
  if (std::strcmp(env, "INFO") == 0) return 1;
  if (std::strcmp(env, "WARN") == 0) return 2;
  if (std::strcmp(env, "ERROR") == 0) return 3;
  return static_cast<int>(LogLevel::kWarn);
}

int effective_level() {
  int l = g_level.load(std::memory_order_relaxed);
  if (l < 0) {
    l = level_from_env();
    g_level.store(l, std::memory_order_relaxed);
  }
  return l;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() { return static_cast<LogLevel>(effective_level()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= effective_level()), level_(level) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << level_name(level_) << " "
            << (base != nullptr ? base + 1 : file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_io_mutex);
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal
}  // namespace rlgraph
