// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Usage: RLG_LOG(INFO) << "built " << n << " components";
// Level is controlled globally via set_log_level() or the RLGRAPH_LOG_LEVEL
// environment variable (DEBUG|INFO|WARN|ERROR, default WARN so tests and
// benchmarks stay quiet).
#pragma once

#include <sstream>
#include <string>

namespace rlgraph {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rlgraph

#define RLG_LOG(severity)                                               \
  ::rlgraph::internal::LogMessage(::rlgraph::LogLevel::k##severity,     \
                                  __FILE__, __LINE__)

#define RLG_LOG_DEBUG RLG_LOG(Debug)
#define RLG_LOG_INFO RLG_LOG(Info)
#define RLG_LOG_WARN RLG_LOG(Warn)
#define RLG_LOG_ERROR RLG_LOG(Error)
