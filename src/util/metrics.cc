#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rlgraph {

void SummaryStats::record(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  sum_sq_ += v * v;
}

double SummaryStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double SummaryStats::stddev() const {
  if (count_ < 2) return 0.0;
  double m = mean();
  double var = sum_sq_ / static_cast<double>(count_) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::string SummaryStats::to_string() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " min=" << min()
     << " max=" << max() << " stddev=" << stddev();
  return os.str();
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram() { reset(); }

int Histogram::bucket_index(double v) {
  if (!(v >= kMinValue)) return 0;  // underflow (also NaN, <= 0)
  if (v >= kMaxValue) return kNumBuckets + 1;
  int idx = static_cast<int>(std::log10(v / kMinValue) *
                             static_cast<double>(kBucketsPerDecade));
  if (idx < 0) idx = 0;
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx + 1;
}

double Histogram::bucket_midpoint(int index) {
  if (index <= 0) return kMinValue;
  if (index > kNumBuckets) return kMaxValue;
  double lo = kMinValue *
              std::pow(10.0, static_cast<double>(index - 1) /
                                 static_cast<double>(kBucketsPerDecade));
  double hi = lo * std::pow(10.0, 1.0 / static_cast<double>(kBucketsPerDecade));
  return std::sqrt(lo * hi);
}

void Histogram::record(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::count() const {
  int64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::mean() const {
  int64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  int64_t counts[kNumBuckets + 2];
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets + 2; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets + 2; ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) return bucket_midpoint(i);
  }
  return kMaxValue;
}

double HistogramSnapshot::quantile(double q) const {
  int64_t total = 0;
  for (int64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= rank) {
      return Histogram::bucket_midpoint(static_cast<int>(i));
    }
  }
  return Histogram::kMaxValue;
}

std::string HistogramSnapshot::to_string() const {
  std::ostringstream os;
  os << "count=" << count << " mean=" << mean() << " p50=" << p50()
     << " p95=" << p95() << " p99=" << p99();
  return os.str();
}

HistogramSnapshot Histogram::snapshot_total() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets + 2);
  for (int i = 0; i < kNumBuckets + 2; ++i) {
    int64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[static_cast<size_t>(i)] = c;
    snap.count += c;
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

HistogramSnapshot Histogram::snapshot_window() {
  std::lock_guard<std::mutex> lock(window_mutex_);
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets + 2);
  for (int i = 0; i < kNumBuckets + 2; ++i) {
    // Cumulative counts only grow; the delta against the stored baseline is
    // exactly what landed since the previous window. Records racing this
    // walk land in whichever window observes them — never lost, never
    // counted twice.
    int64_t cur = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[static_cast<size_t>(i)] = cur - window_base_[i];
    snap.count += cur - window_base_[i];
    window_base_[i] = cur;
  }
  double cur_sum = sum_.load(std::memory_order_relaxed);
  snap.sum = cur_sum - window_base_sum_;
  window_base_sum_ = cur_sum;
  return snap;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(window_mutex_);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (int64_t& b : window_base_) b = 0;
  window_base_sum_ = 0.0;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << mean() << " p50=" << p50()
     << " p95=" << p95() << " p99=" << p99() << " max=" << max_seen();
  return os.str();
}

// --- MetricRegistry ----------------------------------------------------------

void MetricRegistry::increment(const std::string& name, int64_t by) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += by;
}

void MetricRegistry::record_time(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  timers_[name].record(seconds);
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricRegistry::record_value(const std::string& name, double v) {
  histogram(name).record(v);
}

std::vector<std::string> MetricRegistry::histogram_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) names.push_back(name);
  return names;
}

void MetricRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

double MetricRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::map<std::string, double> MetricRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

int64_t MetricRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

SummaryStats MetricRegistry::timer(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  return it == timers_.end() ? SummaryStats{} : it->second;
}

std::map<std::string, int64_t> MetricRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::string MetricRegistry::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << ": " << value << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    os << name << ": " << value << "\n";
  }
  for (const auto& [name, stats] : timers_) {
    os << name << ": " << stats.to_string() << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    os << name << ": " << hist->to_string() << "\n";
  }
  return os.str();
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

}  // namespace rlgraph
