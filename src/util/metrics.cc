#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rlgraph {

void SummaryStats::record(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  sum_sq_ += v * v;
}

double SummaryStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double SummaryStats::stddev() const {
  if (count_ < 2) return 0.0;
  double m = mean();
  double var = sum_sq_ / static_cast<double>(count_) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::string SummaryStats::to_string() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " min=" << min()
     << " max=" << max() << " stddev=" << stddev();
  return os.str();
}

void MetricRegistry::increment(const std::string& name, int64_t by) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += by;
}

void MetricRegistry::record_time(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  timers_[name].record(seconds);
}

void MetricRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

double MetricRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::map<std::string, double> MetricRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

int64_t MetricRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

SummaryStats MetricRegistry::timer(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  return it == timers_.end() ? SummaryStats{} : it->second;
}

std::map<std::string, int64_t> MetricRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::string MetricRegistry::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << ": " << value << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    os << name << ": " << value << "\n";
  }
  for (const auto& [name, stats] : timers_) {
    os << name << ": " << stats.to_string() << "\n";
  }
  return os.str();
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

}  // namespace rlgraph
