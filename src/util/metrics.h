// Lightweight timing and throughput instrumentation.
//
// The benchmark harness reports the same quantities the paper does
// (environment frames per second, build seconds, mean worker reward), all
// collected through these helpers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rlgraph {

// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() { reset(); }
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Streaming summary statistics (count/mean/min/max/stddev) over doubles.
class SummaryStats {
 public:
  void record(double v);
  int64_t count() const { return count_; }
  double mean() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double stddev() const;
  std::string to_string() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// An immutable point-in-time view of a Histogram's counts — either the
// all-time distribution or the delta since the previous window snapshot.
// Quantiles use the same bucket geometry (and carry the same ~one-bucket
// approximation) as the live histogram, but walk plain ints: a snapshot is
// cheap to copy, compare, and reason about in control-plane decisions.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double mean() const { return count == 0 ? 0.0 : sum / double(count); }
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  std::string to_string() const;

  // Per-bucket counts, same layout as Histogram ([0]=under, [last]=over).
  // Public so tests can poke at it; most callers only need the quantiles.
  std::vector<int64_t> buckets;
};

// Fixed log-bucketed distribution with lock-light recording, used for
// serving latency and batch-size distributions where many threads record
// concurrently on a hot path.
//
// Buckets are geometric: kBucketsPerDecade per power of ten across
// [kMinValue, kMaxValue), plus underflow/overflow buckets. record() is a
// single relaxed atomic increment (plus a relaxed max update); quantile()
// walks a snapshot of the counts. Quantiles are therefore approximate to
// one bucket width (~15% relative), which is plenty for p50/p95/p99 of
// latencies spanning microseconds to seconds.
class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 16;
  static constexpr int kNumDecades = 8;  // 1e-6 .. 1e2
  static constexpr int kNumBuckets = kBucketsPerDecade * kNumDecades;
  static constexpr double kMinValue = 1e-6;
  static constexpr double kMaxValue = 1e2;

  Histogram();

  // Record one observation. Values below kMinValue (including <= 0) land in
  // the underflow bucket, values >= kMaxValue in the overflow bucket.
  void record(double v);

  int64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double max_seen() const { return max_.load(std::memory_order_relaxed); }

  // Value below which a fraction q (in [0, 1]) of observations fall,
  // estimated as the geometric midpoint of the covering bucket. Returns 0
  // for an empty histogram.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  // The all-time distribution as a plain-int snapshot.
  HistogramSnapshot snapshot_total() const;

  // Windowed view for control-plane decisions (canary rollback, per-version
  // p99): the observations recorded since the PREVIOUS snapshot_window()
  // call (or since construction/reset for the first call), leaving the
  // cumulative counts untouched. Each call consumes its window — successive
  // calls partition the recording timeline into disjoint windows, so a
  // regression that started five minutes ago is not diluted by five hours
  // of healthy all-time history. Not for hot paths: takes an internal lock
  // against concurrent snapshot_window()/reset().
  HistogramSnapshot snapshot_window();

  void reset();
  // "count=N mean=... p50=... p95=... p99=... max=..."
  std::string to_string() const;

  static double bucket_midpoint(int index);

 private:
  static int bucket_index(double v);

  std::atomic<int64_t> buckets_[kNumBuckets + 2];  // [0]=under, [last]=over
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};

  // Baseline for snapshot_window deltas; only touched under window_mutex_.
  std::mutex window_mutex_;
  int64_t window_base_[kNumBuckets + 2] = {};
  double window_base_sum_ = 0.0;
};

// Thread-safe registry of named counters, gauges, and timers, used by
// executors to expose per-run metrics (session calls, samples processed,
// queue waits, worker restarts, weight staleness).
class MetricRegistry {
 public:
  void increment(const std::string& name, int64_t by = 1);
  void record_time(const std::string& name, double seconds);
  // Named histogram, created on first use. The returned reference stays
  // valid until reset(); hot paths should resolve it once and record
  // directly (record() itself takes no registry lock).
  Histogram& histogram(const std::string& name);
  void record_value(const std::string& name, double v);
  std::vector<std::string> histogram_names() const;
  // Gauges are last-write-wins instantaneous values (e.g. staleness).
  void set_gauge(const std::string& name, double value);
  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  SummaryStats timer(const std::string& name) const;
  std::map<std::string, int64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::string report() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, SummaryStats> timers_;
  // unique_ptr keeps Histogram addresses stable across map rebalancing.
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// RAII timer that records into a registry on destruction.
class ScopedTimer {
 public:
  ScopedTimer(MetricRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ~ScopedTimer() {
    if (registry_ != nullptr) {
      registry_->record_time(name_, watch_.elapsed_seconds());
    }
  }

 private:
  MetricRegistry* registry_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace rlgraph
