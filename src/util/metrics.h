// Lightweight timing and throughput instrumentation.
//
// The benchmark harness reports the same quantities the paper does
// (environment frames per second, build seconds, mean worker reward), all
// collected through these helpers.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace rlgraph {

// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() { reset(); }
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Streaming summary statistics (count/mean/min/max/stddev) over doubles.
class SummaryStats {
 public:
  void record(double v);
  int64_t count() const { return count_; }
  double mean() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double stddev() const;
  std::string to_string() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Thread-safe registry of named counters, gauges, and timers, used by
// executors to expose per-run metrics (session calls, samples processed,
// queue waits, worker restarts, weight staleness).
class MetricRegistry {
 public:
  void increment(const std::string& name, int64_t by = 1);
  void record_time(const std::string& name, double seconds);
  // Gauges are last-write-wins instantaneous values (e.g. staleness).
  void set_gauge(const std::string& name, double value);
  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  SummaryStats timer(const std::string& name) const;
  std::map<std::string, int64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::string report() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, SummaryStats> timers_;
};

// RAII timer that records into a registry on destruction.
class ScopedTimer {
 public:
  ScopedTimer(MetricRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ~ScopedTimer() {
    if (registry_ != nullptr) {
      registry_->record_time(name_, watch_.elapsed_seconds());
    }
  }

 private:
  MetricRegistry* registry_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace rlgraph
