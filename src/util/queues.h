// Thread-safe queues used by the actor engine and the IMPALA pipeline.
//
// BlockingQueue<T> is an (optionally bounded) MPMC queue; a bounded queue
// blocks producers when full, which is exactly the semantics of the globally
// shared blocking sample queue in the IMPALA architecture (paper §5.1).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace rlgraph {

template <typename T>
class BlockingQueue {
 public:
  // capacity == 0 means unbounded.
  explicit BlockingQueue(size_t capacity = 0) : capacity_(capacity) {}

  // Blocks while the queue is full (bounded) unless closed; returns false if
  // the queue was closed before the element could be enqueued.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false if full or closed.
  bool try_push(T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) {
      return false;
    }
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an element is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  // Timed pop: blocks up to `timeout` for an element; returns nullopt on
  // timeout or when the queue is closed and drained. Lets consumers notice
  // dead producers instead of hanging (degraded-mode coordination loops).
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  // Wakes all waiters; subsequent pushes fail, pops drain remaining items.
  // Idempotent: only the closing transition notifies, so concurrent closers
  // (e.g. a connection's failure path racing its destructor) wake each
  // blocked waiter exactly once. Notification happens with the lock held —
  // a waiter in pop_for whose deadline expires during the close either
  // observes closed_ under the lock or is woken by this notify; it can
  // never re-block after the transition.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rlgraph
