#include "util/random.h"

#include <mutex>

#include "util/errors.h"

namespace rlgraph {

namespace {
// splitmix64: used to decorrelate seeds for split streams.
uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) : engine_(seed) {}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::uniform_int(int64_t n) {
  RLG_REQUIRE(n > 0, "uniform_int requires n > 0, got " << n);
  return std::uniform_int_distribution<int64_t>(0, n - 1)(engine_);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

int64_t Rng::categorical(const std::vector<double>& weights) {
  RLG_REQUIRE(!weights.empty(), "categorical requires non-empty weights");
  double total = 0.0;
  for (double w : weights) {
    RLG_REQUIRE(w >= 0.0, "categorical weights must be >= 0, got " << w);
    total += w;
  }
  if (total <= 0.0) return uniform_int(static_cast<int64_t>(weights.size()));
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

Rng Rng::split() {
  uint64_t s = next_u64();
  uint64_t mixed = splitmix64(s);
  return Rng(mixed);
}

uint64_t Rng::next_u64() { return engine_(); }

namespace {
std::mutex g_rng_mutex;
Rng* g_rng = nullptr;
}  // namespace

Rng& global_rng() {
  std::lock_guard<std::mutex> lock(g_rng_mutex);
  if (g_rng == nullptr) g_rng = new Rng(0xD1CEULL);
  return *g_rng;
}

void seed_global_rng(uint64_t seed) {
  std::lock_guard<std::mutex> lock(g_rng_mutex);
  delete g_rng;
  g_rng = new Rng(seed);
}

}  // namespace rlgraph
