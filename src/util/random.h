// Seedable random number generation used everywhere in RLgraph.
//
// All stochastic behaviour in the library (space sampling, exploration,
// prioritized sampling, environment dynamics, weight init) routes through
// Rng instances so experiments are reproducible given a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace rlgraph {

// A thin wrapper around a fast 64-bit PRNG (splitmix-seeded xoshiro-style via
// std::mt19937_64) with the distribution helpers RLgraph needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n) for n > 0.
  int64_t uniform_int(int64_t n);
  // Standard normal.
  double normal();
  double normal(double mean, double stddev);
  // Bernoulli with probability p of true.
  bool bernoulli(double p);
  // Sample an index from an unnormalized weight vector (weights >= 0).
  int64_t categorical(const std::vector<double>& weights);

  // Split off an independent stream (for per-worker RNGs).
  Rng split();

  uint64_t next_u64();

 private:
  std::mt19937_64 engine_;
};

// Process-global RNG for convenience paths where the caller did not thread a
// generator through (e.g. default weight initialization). Seed it once at
// program start for reproducibility.
Rng& global_rng();
void seed_global_rng(uint64_t seed);

}  // namespace rlgraph
