#include "util/serialization.h"

#include <cstring>
#include <fstream>

namespace rlgraph {

void ByteWriter::write_u8(uint8_t v) { buffer_.push_back(v); }

void ByteWriter::write_u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back((v >> (8 * i)) & 0xFF);
}

void ByteWriter::write_u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back((v >> (8 * i)) & 0xFF);
}

void ByteWriter::write_i64(int64_t v) { write_u64(static_cast<uint64_t>(v)); }

void ByteWriter::write_f32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u32(bits);
}

void ByteWriter::write_f64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void ByteWriter::write_string(const std::string& s) {
  write_u32(static_cast<uint32_t>(s.size()));
  write_bytes(s.data(), s.size());
}

void ByteWriter::write_bytes(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + n);
}

void ByteReader::require(size_t n) {
  if (pos_ + n > buffer_.size()) {
    throw SerializationError(
        "ByteReader: truncated stream (need " + std::to_string(n) +
        " bytes, have " + std::to_string(buffer_.size() - pos_) + ")");
  }
}

uint8_t ByteReader::read_u8() {
  require(1);
  return buffer_[pos_++];
}

uint32_t ByteReader::read_u32() {
  require(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(buffer_[pos_++]) << (8 * i);
  }
  return v;
}

uint64_t ByteReader::read_u64() {
  require(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(buffer_[pos_++]) << (8 * i);
  }
  return v;
}

int64_t ByteReader::read_i64() { return static_cast<int64_t>(read_u64()); }

float ByteReader::read_f32() {
  uint32_t bits = read_u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::read_f64() {
  uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::read_string() {
  uint32_t n = read_u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_), n);
  pos_ += n;
  return s;
}

void ByteReader::read_bytes(void* out, size_t n) {
  require(n);
  std::memcpy(out, buffer_.data() + pos_, n);
  pos_ += n;
}

std::vector<uint8_t> ByteReader::read_remaining() {
  std::vector<uint8_t> out(buffer_.begin() + static_cast<long>(pos_),
                           buffer_.end());
  pos_ = buffer_.size();
  return out;
}

void write_file(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("cannot open file for writing: " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw Error("write failed: " + path);
}

std::vector<uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw Error("cannot open file for reading: " + path);
  std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  f.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!f) throw Error("read failed: " + path);
  return bytes;
}

}  // namespace rlgraph
