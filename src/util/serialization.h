// Binary serialization primitives for model checkpoints.
//
// Agent::export_model / import_model (paper Listing 2) write weights through
// this little-endian tagged stream. The format is deliberately simple:
// magic, version, then length-prefixed entries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/errors.h"

namespace rlgraph {

class ByteWriter {
 public:
  void write_u8(uint8_t v);
  void write_u32(uint32_t v);
  void write_u64(uint64_t v);
  void write_i64(int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_bytes(const void* data, size_t n);

  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::vector<uint8_t> bytes) : buffer_(std::move(bytes)) {}

  uint8_t read_u8();
  uint32_t read_u32();
  uint64_t read_u64();
  int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  void read_bytes(void* out, size_t n);
  // Consumes and returns every byte left in the stream (used by the net
  // transport, whose request payloads end in an opaque body).
  std::vector<uint8_t> read_remaining();
  bool at_end() const { return pos_ == buffer_.size(); }
  size_t remaining() const { return buffer_.size() - pos_; }

 private:
  void require(size_t n);

  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;
};

// File helpers (throw rlgraph::Error on I/O failure).
void write_file(const std::string& path, const std::vector<uint8_t>& bytes);
std::vector<uint8_t> read_file(const std::string& path);

}  // namespace rlgraph
