#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/errors.h"
#include "util/trace.h"

namespace rlgraph {

namespace {
// Identifies pool worker threads so post() can use the local deque and so
// parallel sections know they are nested.
thread_local ThreadPool* t_pool = nullptr;
thread_local size_t t_worker_index = 0;
}  // namespace

struct ThreadPool::WorkerQueue {
  std::mutex mutex;
  std::deque<std::function<void()>> tasks;
};

ThreadPool::ThreadPool(size_t num_threads) {
  RLG_REQUIRE(num_threads > 0, "ThreadPool requires at least one thread");
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  wake_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::post(std::function<void()> task) {
  size_t target;
  if (t_pool == this) {
    target = t_worker_index;  // local push: LIFO locality for the owner
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Empty critical section: a worker between its (false) predicate check
  // and the actual sleep holds sleep_mutex_, so this waits until it is
  // really waiting and the notify below cannot be lost.
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop_local(size_t self, std::function<void()>& task) {
  WorkerQueue& q = *queues_[self];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) return false;
  task = std::move(q.tasks.back());  // newest first: cache-warm work
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(size_t self, std::function<void()>& task) {
  const size_t n = queues_.size();
  for (size_t off = 1; off < n; ++off) {
    WorkerQueue& q = *queues_[(self + off) % n];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty()) continue;
    task = std::move(q.tasks.front());  // oldest first: likely biggest work
    q.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(size_t self) {
  t_pool = this;
  t_worker_index = self;
  while (true) {
    std::function<void()> task;
    bool stolen = false;
    if (try_pop_local(self, task) || (stolen = try_steal(self, task))) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      {
        // Dispatch vs. steal spans show work-distribution imbalance in the
        // trace: a worker living off steals has an empty local deque.
        trace::TraceSpan span("sched", stolen ? "pool/steal" : "pool/dispatch");
        task();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wake_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    // Drain everything that was queued before shutdown was requested.
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) <= 0) {
      return;
    }
  }
}

// --- process-wide pool -------------------------------------------------------

namespace {

size_t parallelism_from_env() {
  if (const char* env = std::getenv("RLGRAPH_NUM_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
    return 1;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

std::mutex g_pool_mutex;
std::atomic<size_t> g_parallelism{0};  // 0 = not yet resolved
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

size_t global_parallelism() {
  // Lock-free on the hot path: every kernel consults this before deciding
  // whether an op is worth sharding.
  size_t p = g_parallelism.load(std::memory_order_acquire);
  if (p != 0) return p;
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  p = g_parallelism.load(std::memory_order_acquire);
  if (p == 0) {
    p = parallelism_from_env();
    g_parallelism.store(p, std::memory_order_release);
  }
  return p;
}

ThreadPool& global_pool() {
  size_t p = global_parallelism();
  RLG_CHECK_MSG(p > 1,
                "global_pool() requested with parallelism 1 (serial mode)");
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool == nullptr) g_pool = std::make_unique<ThreadPool>(p - 1);
  return *g_pool;
}

void set_global_parallelism(size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool.reset();
  g_parallelism.store(n >= 1 ? n : 1, std::memory_order_release);
}

// --- deterministic sharding --------------------------------------------------

ShardBounds shard_bounds(int64_t grain, int64_t n) {
  // Boundaries are a pure function of (grain, n): thread count never enters,
  // so shard-structured results are identical at any parallelism.
  constexpr int64_t kMaxShards = 256;  // bounds partial/tree sizes
  ShardBounds b;
  if (grain < 1) grain = 1;
  if (n <= grain) {
    b.num_shards = n > 0 ? 1 : 0;
    b.shard_size = n;
    return b;
  }
  b.num_shards = std::min<int64_t>((n + grain - 1) / grain, kMaxShards);
  b.shard_size = (n + b.num_shards - 1) / b.num_shards;
  // Recompute the shard count the chosen size actually yields (the last
  // shard may vanish after rounding up).
  b.num_shards = (n + b.shard_size - 1) / b.shard_size;
  return b;
}

namespace {

// Shared state of one parallel section. Helpers keep it alive via
// shared_ptr, so a helper task that runs after the section completed (the
// caller claimed every shard itself) only reads `next`, sees no work, and
// returns without touching the body.
struct ShardRun {
  const std::function<void(int64_t, int64_t, int64_t)>* body = nullptr;
  int64_t num_shards = 0;
  int64_t shard_size = 0;
  int64_t n = 0;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first failure, guarded by mutex

  // Claim and run shards until none remain. Returns the count completed.
  int64_t drain() {
    int64_t ran = 0;
    while (true) {
      int64_t s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= num_shards) break;
      int64_t begin = s * shard_size;
      int64_t end = std::min(n, begin + shard_size);
      try {
        (*body)(s, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      ++ran;
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_shards) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
    return ran;
  }
};

}  // namespace

void parallel_shards(
    int64_t grain, int64_t n,
    const std::function<void(int64_t, int64_t, int64_t)>& body) {
  ShardBounds b = shard_bounds(grain, n);
  if (b.num_shards == 0) return;
  size_t parallelism = global_parallelism();
  if (b.num_shards == 1 || parallelism <= 1) {
    // Forced-serial path (RLGRAPH_NUM_THREADS=1) runs the identical shard
    // structure inline, so results match the parallel path bitwise.
    for (int64_t s = 0; s < b.num_shards; ++s) {
      int64_t begin = s * b.shard_size;
      body(s, begin, std::min(n, begin + b.shard_size));
    }
    return;
  }

  auto run = std::make_shared<ShardRun>();
  run->body = &body;
  run->num_shards = b.num_shards;
  run->shard_size = b.shard_size;
  run->n = n;

  ThreadPool& pool = global_pool();
  size_t helpers = std::min<size_t>(pool.size(),
                                    static_cast<size_t>(b.num_shards - 1));
  for (size_t i = 0; i < helpers; ++i) {
    pool.post([run] { run->drain(); });
  }
  run->drain();  // the caller participates: never blocks on idle workers

  {
    std::unique_lock<std::mutex> lock(run->mutex);
    run->done_cv.wait(lock, [&] {
      return run->done.load(std::memory_order_acquire) == run->num_shards;
    });
    if (run->error) std::rethrow_exception(run->error);
  }
}

void parallel_for(int64_t grain, int64_t n,
                  const std::function<void(int64_t, int64_t)>& body) {
  parallel_shards(grain, n,
                  [&body](int64_t, int64_t begin, int64_t end) {
                    body(begin, end);
                  });
}

}  // namespace rlgraph
