#include "util/thread_pool.h"

#include "util/errors.h"

namespace rlgraph {

ThreadPool::ThreadPool(size_t num_threads) {
  RLG_REQUIRE(num_threads > 0, "ThreadPool requires at least one thread");
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    auto task = queue_.pop();
    if (!task.has_value()) return;
    (*task)();
  }
}

}  // namespace rlgraph
