// Work-stealing thread pool and data-parallel primitives.
//
// One process-wide pool (global_pool, sized by RLGRAPH_NUM_THREADS, default
// hardware_concurrency) backs every parallel execution path: intra-op kernel
// sharding (parallel_for / parallel_shards), inter-op compiled-plan
// scheduling (graph/exec_plan.cc), and the virtual device replicas. Sharing
// one pool keeps total thread count bounded no matter how many actors or
// sessions run concurrently — executors never create private pools.
//
// Determinism contract: shard boundaries produced by shard_bounds() depend
// only on (grain, n), never on the thread count or on scheduling order, so
// any computation that writes disjoint ranges per shard — or combines
// per-shard partials in a fixed tree order — is bitwise reproducible at any
// parallelism level, including the forced-serial RLGRAPH_NUM_THREADS=1 path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rlgraph {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task; the future resolves with the task's result (or its
  // exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  // Fire-and-forget enqueue (no future allocation). Called from a pool
  // worker, the task lands on that worker's own deque (LIFO locality);
  // external submitters round-robin across worker deques. Idle workers
  // steal from the front of other workers' deques.
  void post(std::function<void()> task);

  size_t size() const { return threads_.size(); }

 private:
  struct WorkerQueue;

  void worker_loop(size_t self);
  bool try_pop_local(size_t self, std::function<void()>& task);
  bool try_steal(size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex sleep_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> next_queue_{0};
};

// --- process-wide pool -------------------------------------------------------

// Total parallelism N: RLGRAPH_NUM_THREADS if set (values < 1 clamp to 1),
// else std::thread::hardware_concurrency(). The calling thread always
// participates in parallel sections, so the shared pool runs N-1 workers;
// N == 1 means no pool threads exist and every primitive runs inline.
size_t global_parallelism();

// The shared worker pool. Only constructed (lazily) when
// global_parallelism() > 1; never call this when parallelism is 1.
ThreadPool& global_pool();

// Test/benchmark hook: tear down and re-size the global pool. Must only be
// called while no parallel work is in flight.
void set_global_parallelism(size_t n);

// --- deterministic sharding --------------------------------------------------

struct ShardBounds {
  int64_t num_shards = 1;
  int64_t shard_size = 0;  // every shard spans shard_size except the last
};

// Split [0, n) into fixed ranges of at least `grain` elements. Pure function
// of (grain, n): the grain is the cost threshold — n <= grain yields one
// shard, which parallel primitives run inline (tiny ops stay serial).
ShardBounds shard_bounds(int64_t grain, int64_t n);

// Run body(begin, end) over every shard of [0, n), concurrently when the
// pool has workers and there is more than one shard. The caller participates
// (claiming shards from a shared counter), so nesting parallel sections —
// an inter-op plan step whose kernel shards itself — cannot deadlock.
// body must write disjoint state per shard. Exceptions from shard bodies are
// rethrown on the calling thread (first one wins).
void parallel_for(int64_t grain, int64_t n,
                  const std::function<void(int64_t, int64_t)>& body);

// Same, with the shard index passed through — reductions index per-shard
// partials with it, then combine in a fixed tree order.
void parallel_shards(int64_t grain, int64_t n,
                     const std::function<void(int64_t, int64_t, int64_t)>& body);

}  // namespace rlgraph
