// Fixed-size thread pool. Backs the virtual device abstraction (each device
// replica computes its gradient tower on a pool worker) and miscellaneous
// parallel sections.
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/queues.h"

namespace rlgraph {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task; the future resolves with the task's result (or its
  // exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    queue_.push([task] { (*task)(); });
    return fut;
  }

  size_t size() const { return threads_.size(); }

 private:
  void worker_loop();

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
};

}  // namespace rlgraph
