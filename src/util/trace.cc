#include "util/trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace rlgraph {
namespace trace {

namespace internal {
std::atomic<bool> g_enabled{false};

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          TraceClock::now().time_since_epoch())
          .count());
}
}  // namespace internal

namespace {

struct Event {
  std::string name;
  std::string detail;
  const char* cat = nullptr;
  const char* akey = nullptr;
  const char* bkey = nullptr;
  int64_t aval = 0;
  int64_t bval = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
};

// One ring per thread. The owning thread appends; start()/stop()/export
// read under the same mutex. Contention is one thread deep per buffer, so
// the lock costs an uncontended CAS pair per event — cheap enough for the
// enabled path, and absent entirely from the disabled path.
struct ThreadRing {
  std::mutex mutex;
  std::vector<Event> ring;  // capacity kRingCapacity, index = total % cap
  uint64_t total = 0;       // events ever pushed since last reset
  uint32_t tid = 0;

  void push(Event e) {
    std::lock_guard<std::mutex> lock(mutex);
    e.tid = tid;
    if (ring.size() < kRingCapacity) {
      ring.push_back(std::move(e));
    } else {
      ring[static_cast<size_t>(total % kRingCapacity)] = std::move(e);
    }
    ++total;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex);
    ring.clear();
    ring.shrink_to_fit();
    total = 0;
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  uint32_t next_tid = 1;
  std::string path;        // where stop() writes; empty = memory only
  uint64_t base_ns = 0;    // trace epoch (start() time)
  bool collecting = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit handlers
  return *r;
}

ThreadRing& thread_ring() {
  thread_local std::shared_ptr<ThreadRing> t_ring = [] {
    auto ring = std::make_shared<ThreadRing>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    ring->tid = reg.next_tid++;
    reg.rings.push_back(ring);
    return ring;
  }();
  return *t_ring;
}

// Snapshot every ring in tid order, oldest event first within a ring.
std::vector<Event> snapshot() {
  Registry& reg = registry();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    rings = reg.rings;
  }
  std::vector<Event> events;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    const size_t n = ring->ring.size();
    const size_t head =
        ring->total > kRingCapacity
            ? static_cast<size_t>(ring->total % kRingCapacity)
            : 0;
    for (size_t i = 0; i < n; ++i) {
      events.push_back(ring->ring[(head + i) % n]);
    }
  }
  return events;
}

}  // namespace

namespace internal {

void record(const char* cat, std::string name, uint64_t start_ns,
            uint64_t end_ns, std::string detail, const char* akey,
            int64_t aval, const char* bkey, int64_t bval) {
  Event e;
  e.name = std::move(name);
  e.detail = std::move(detail);
  e.cat = cat;
  e.akey = akey;
  e.aval = aval;
  e.bkey = bkey;
  e.bval = bval;
  e.start_ns = start_ns;
  e.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  thread_ring().push(std::move(e));
}

}  // namespace internal

void record_span(const char* cat, std::string name,
                 TraceClock::time_point begin, TraceClock::time_point end,
                 const char* akey, int64_t aval, const char* bkey,
                 int64_t bval) {
  if (!enabled()) return;
  internal::record(
      cat, std::move(name),
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                begin.time_since_epoch())
                                .count()),
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                end.time_since_epoch())
                                .count()),
      std::string(), akey, aval, bkey, bval);
}

void start(const std::string& path) {
  Registry& reg = registry();
  reset();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.path = path;
    reg.base_ns = internal::now_ns();
    reg.collecting = true;
  }
  internal::g_enabled.store(true, std::memory_order_release);
}

bool collecting() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.collecting;
}

void reset() {
  Registry& reg = registry();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    rings = reg.rings;
  }
  for (const auto& ring : rings) ring->clear();
}

int64_t event_count() {
  Registry& reg = registry();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    rings = reg.rings;
  }
  int64_t count = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    count += static_cast<int64_t>(ring->ring.size());
  }
  return count;
}

int64_t dropped_events() {
  Registry& reg = registry();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    rings = reg.rings;
  }
  int64_t dropped = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    if (ring->total > kRingCapacity) {
      dropped += static_cast<int64_t>(ring->total - kRingCapacity);
    }
  }
  return dropped;
}

Json to_json() {
  Registry& reg = registry();
  uint64_t base_ns;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    base_ns = reg.base_ns;
  }
  std::vector<Event> events = snapshot();
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.dur_ns > b.dur_ns;
            });

  JsonArray rows;
  rows.reserve(events.size());
  std::vector<uint32_t> tids;
  for (const Event& e : events) {
    Json row;
    row["name"] = Json(e.name);
    row["cat"] = Json(e.cat != nullptr ? e.cat : "misc");
    row["ph"] = Json("X");
    row["pid"] = Json(static_cast<int64_t>(1));
    row["tid"] = Json(static_cast<int64_t>(e.tid));
    // Chrome wants microseconds; keep sub-microsecond precision fractional.
    const uint64_t rel_ns = e.start_ns >= base_ns ? e.start_ns - base_ns : 0;
    row["ts"] = Json(static_cast<double>(rel_ns) / 1000.0);
    row["dur"] = Json(static_cast<double>(e.dur_ns) / 1000.0);
    JsonObject args;
    if (!e.detail.empty()) args["detail"] = Json(e.detail);
    if (e.akey != nullptr) args[e.akey] = Json(e.aval);
    if (e.bkey != nullptr) args[e.bkey] = Json(e.bval);
    if (!args.empty()) row["args"] = Json(std::move(args));
    rows.push_back(std::move(row));
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  for (uint32_t tid : tids) {
    Json meta;
    meta["name"] = Json("thread_name");
    meta["ph"] = Json("M");
    meta["pid"] = Json(static_cast<int64_t>(1));
    meta["tid"] = Json(static_cast<int64_t>(tid));
    JsonObject args;
    args["name"] = Json("thread " + std::to_string(tid));
    meta["args"] = Json(std::move(args));
    rows.push_back(std::move(meta));
  }

  Json doc;
  doc["traceEvents"] = Json(std::move(rows));
  doc["displayTimeUnit"] = Json("ms");
  return doc;
}

std::string summary() {
  struct Agg {
    int64_t count = 0;
    double total_s = 0.0;
    std::unique_ptr<Histogram> hist = std::make_unique<Histogram>();
  };
  std::map<std::string, Agg> by_name;
  for (const Event& e : snapshot()) {
    Agg& agg = by_name[e.name];
    const double secs = static_cast<double>(e.dur_ns) * 1e-9;
    ++agg.count;
    agg.total_s += secs;
    agg.hist->record(secs);
  }
  std::vector<const std::pair<const std::string, Agg>*> order;
  order.reserve(by_name.size());
  for (const auto& entry : by_name) order.push_back(&entry);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    return a->second.total_s > b->second.total_s;
  });

  std::string out = "trace summary (" + std::to_string(event_count()) +
                    " spans, " + std::to_string(dropped_events()) +
                    " dropped):\n";
  char line[256];
  for (const auto* entry : order) {
    const Agg& a = entry->second;
    std::snprintf(line, sizeof(line),
                  "  %-32s count=%-8lld total=%.6fs mean=%.2fus p50=%.2fus "
                  "p95=%.2fus p99=%.2fus\n",
                  entry->first.c_str(), static_cast<long long>(a.count),
                  a.total_s, a.total_s / static_cast<double>(a.count) * 1e6,
                  a.hist->p50() * 1e6, a.hist->p95() * 1e6,
                  a.hist->p99() * 1e6);
    out += line;
  }
  return out;
}

std::string stop() {
  internal::g_enabled.store(false, std::memory_order_release);
  Registry& reg = registry();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (!reg.collecting) return "";
    reg.collecting = false;
    path = reg.path;
  }
  std::string report = summary();
  if (!path.empty()) {
    std::ofstream out(path);
    if (out) {
      out << to_json().dump(1) << "\n";
      RLG_LOG_INFO << "trace: wrote " << event_count() << " spans to " << path;
    } else {
      RLG_LOG_ERROR << "trace: cannot write " << path;
    }
  }
  return report;
}

namespace {

// RLGRAPH_TRACE=<path>: collect for the whole process lifetime, flush at
// exit. Registered from a static initializer; only touches trace-internal
// state, so static-init order is irrelevant.
struct EnvTrace {
  EnvTrace() {
    const char* path = std::getenv("RLGRAPH_TRACE");
    if (path == nullptr || path[0] == '\0') return;
    start(path);
    std::atexit([] {
      if (collecting()) stop();
    });
  }
};
EnvTrace g_env_trace;

}  // namespace

}  // namespace trace
}  // namespace rlgraph
