// End-to-end span tracing: where does a microsecond go?
//
// Every performance-critical layer (compiled-plan kernels, session phases,
// pool scheduling, the serving request lifecycle, actor task execution)
// opens a TraceSpan around its hot section. When tracing is disabled — the
// default — a span is a single relaxed atomic load plus a trivially
// destructible stack object: no strings, no clock reads, no allocation.
// When enabled, completed spans land in per-thread ring buffers (one brief
// uncontended lock per event, no cross-thread sharing on the record path)
// and are exported on stop() as Chrome trace_event JSON that
// chrome://tracing and Perfetto load directly, plus a per-span-name
// aggregate summary (count, total, p50/p95/p99 via util/metrics Histogram).
//
// Enable programmatically:
//     trace::start("run.trace.json");
//     ... workload ...
//     std::string summary = trace::stop();  // writes the file
// or for any binary without code changes:
//     RLGRAPH_TRACE=run.trace.json ./bench_serve_throughput
// (started at process init, flushed at exit).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace rlgraph {

class Json;

namespace trace {

using TraceClock = std::chrono::steady_clock;

namespace internal {

// The one word every instrumentation site checks. Relaxed is sufficient:
// missing the first few spans after start() is acceptable, recording a few
// after stop() is harmless (they are simply not exported again).
extern std::atomic<bool> g_enabled;

uint64_t now_ns();

// Append one completed span to the calling thread's ring buffer. `name` is
// copied; `cat`/`akey`/`bkey` must be string literals (static storage).
void record(const char* cat, std::string name, uint64_t start_ns,
            uint64_t end_ns, std::string detail, const char* akey,
            int64_t aval, const char* bkey, int64_t bval);

}  // namespace internal

// True while a trace is being collected. Inline and branch-predictable:
// this is the zero-cost-when-disabled check.
inline bool enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Begin collecting. Clears previously buffered events. `path` is where
// stop() writes the Chrome trace JSON; empty collects in memory only
// (export via to_json()).
void start(const std::string& path = "");

// Stop collecting, write the JSON file (if a path was given to start) and
// return the per-span-name aggregate summary. Buffered events stay
// readable through to_json()/summary() until the next start().
std::string stop();

// Collection state (start() called, stop() not yet).
bool collecting();

// Drop every buffered event and reset drop counters (start() does this too).
void reset();

// Events currently buffered across all threads, and how many were
// overwritten because a thread's ring filled up. Ring capacity is
// kRingCapacity events per thread; a full ring drops the oldest events,
// never blocks the traced thread.
inline constexpr size_t kRingCapacity = 1 << 16;
int64_t event_count();
int64_t dropped_events();

// The buffered events as a Chrome trace_event document:
//   {"traceEvents": [{"name","cat","ph":"X","pid","tid","ts","dur","args"},
//                    ... one "M" thread_name record per thread],
//    "displayTimeUnit": "ms"}
// "ts"/"dur" are microseconds (fractional), events sorted by ts.
Json to_json();

// Text table, one line per span name, sorted by total time descending:
// count, total seconds, mean, p50/p95/p99 (Histogram quantiles).
std::string summary();

// Record a span whose endpoints were measured elsewhere (e.g. a serving
// request's queue wait: enqueue happened on the client thread, dispatch on
// the shard thread). No-op when disabled.
void record_span(const char* cat, std::string name,
                 TraceClock::time_point begin, TraceClock::time_point end,
                 const char* akey = nullptr, int64_t aval = 0,
                 const char* bkey = nullptr, int64_t bval = 0);

// RAII span: opens at construction, records [ctor, dtor) on destruction.
// All setters are no-ops when the span is inactive (tracing disabled at
// construction), so call sites need no branching of their own.
class TraceSpan {
 public:
  // `cat` must be a string literal; `name` is copied only when active.
  TraceSpan(const char* cat, const char* name) {
    if (enabled()) [[unlikely]] activate(cat, name);
  }
  TraceSpan(const char* cat, const std::string& name) {
    if (enabled()) [[unlikely]] activate(cat, name.c_str());
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (active_) [[unlikely]] {
      internal::record(cat_, std::move(name_), start_ns_, internal::now_ns(),
                       std::move(detail_), akey_, aval_, bkey_, bval_);
    }
  }

  bool active() const { return active_; }

  // Free-form annotation (e.g. a tensor shape); exported as args.detail.
  void set_detail(std::string detail) {
    if (active_) detail_ = std::move(detail);
  }
  // Up to two integer args; `key` must be a string literal.
  void set_arg(const char* key, int64_t value) {
    if (!active_) return;
    if (akey_ == nullptr || akey_ == key) {
      akey_ = key;
      aval_ = value;
    } else {
      bkey_ = key;
      bval_ = value;
    }
  }

 private:
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((cold, noinline))
#endif
  void activate(const char* cat, const char* name) {
    active_ = true;
    cat_ = cat;
    name_ = name;
    start_ns_ = internal::now_ns();
  }

  bool active_ = false;
  const char* cat_ = nullptr;
  const char* akey_ = nullptr;
  const char* bkey_ = nullptr;
  int64_t aval_ = 0;
  int64_t bval_ = 0;
  uint64_t start_ns_ = 0;
  std::string name_;
  std::string detail_;
};

}  // namespace trace
}  // namespace rlgraph
