// Tests for the A2C agent: API contract, rollout/return machinery, learning
// on Catch, and the device-map / profiling executor options it shares with
// every agent.
#include <gtest/gtest.h>

#include "agents/actor_critic_agent.h"
#include "env/catch_env.h"
#include "env/grid_world.h"
#include "env/vector_env.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

Json a2c_config() {
  return Json::parse(R"({
    "type": "a2c",
    "network": [{"type": "dense", "units": 64, "activation": "relu"},
                {"type": "dense", "units": 64, "activation": "relu"}],
    "optimizer": {"type": "adam", "learning_rate": 0.002},
    "rollout_length": 8, "discount": 0.97,
    "value_coef": 0.5, "entropy_coef": 0.01
  })");
}

TEST(ActorCriticTest, ApiAndShapes) {
  GridWorld env(GridWorld::Config{});
  ActorCriticAgent agent(a2c_config(), env.state_space(),
                         env.action_space());
  agent.build();
  Tensor s = Tensor::zeros(DType::kFloat32, Shape{3, 16});
  Tensor a = agent.get_actions(s);
  EXPECT_EQ(a.shape(), (Shape{3}));
  Tensor v = agent.get_values(s);
  EXPECT_EQ(v.shape(), (Shape{3}));
}

TEST(ActorCriticTest, UpdateWaitsForFullRollout) {
  GridWorld env(GridWorld::Config{});
  ActorCriticAgent agent(a2c_config(), env.state_space(),
                         env.action_space());
  agent.build();
  Tensor s = Tensor::zeros(DType::kFloat32, Shape{2, 16});
  Tensor a = Tensor::from_ints(Shape{2}, {0, 1});
  Tensor r = Tensor::zeros(DType::kFloat32, Shape{2});
  Tensor t = Tensor::from_bools(Shape{2}, {false, false});
  for (int i = 0; i < 7; ++i) {
    agent.observe(s, a, r, s, t);
    EXPECT_DOUBLE_EQ(agent.update(), 0.0);  // buffer not full
  }
  agent.observe(s, a, r, s, t);
  EXPECT_EQ(agent.buffered_steps(), 8);
  double loss = agent.update();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_EQ(agent.buffered_steps(), 0);  // consumed
}

TEST(ActorCriticTest, UpdateMovesWeights) {
  GridWorld env(GridWorld::Config{});
  ActorCriticAgent agent(a2c_config(), env.state_space(),
                         env.action_space());
  agent.build();
  auto before = agent.get_weights("agent/policy");
  Rng rng(1);
  Tensor a = Tensor::from_ints(Shape{2}, {0, 1});
  Tensor t = Tensor::from_bools(Shape{2}, {false, false});
  for (int i = 0; i < 8; ++i) {
    Tensor s = kernels::random_uniform(Shape{2, 16}, 0, 1, rng);
    Tensor r = kernels::random_uniform(Shape{2}, -1, 1, rng);
    agent.observe(s, a, r, s, t);
  }
  agent.update();
  auto after = agent.get_weights("agent/policy");
  bool changed = false;
  for (auto& [name, value] : before) {
    if (!value.all_close(after.at(name), 1e-9)) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(ActorCriticTest, LearnsCatch) {
  Json env_spec = Json::parse(
      R"({"type": "catch", "height": 8, "width": 6,
          "rounds_per_episode": 21})");
  VectorEnv env(env_spec, 8, 3);
  ActorCriticAgent agent(a2c_config(), env.state_space(),
                         env.action_space());
  agent.build();

  Tensor obs = env.reset();
  for (int step = 0; step < 2500; ++step) {
    Tensor actions = agent.get_actions(obs);
    VectorStepResult r = env.step(actions);
    agent.observe(obs, actions, r.rewards, r.observations, r.terminals);
    agent.update();
    obs = r.observations;
  }
  // Mean of recent episodes should be clearly positive (random play is
  // around -14 on this grid; perfect play is +21).
  std::vector<double> returns = env.drain_episode_returns();
  ASSERT_GE(returns.size(), 8u);
  double recent = 0;
  size_t n = std::min<size_t>(returns.size(), 20);
  for (size_t i = returns.size() - n; i < returns.size(); ++i) {
    recent += returns[i];
  }
  recent /= static_cast<double>(n);
  EXPECT_GT(recent, 5.0) << "A2C failed to learn Catch";
}

TEST(ActorCriticTest, FactoryCreatesA2C) {
  GridWorld env(GridWorld::Config{});
  auto agent = make_agent(a2c_config(), env.state_space(),
                          env.action_space());
  EXPECT_NE(dynamic_cast<ActorCriticAgent*>(agent.get()), nullptr);
}

TEST(ActorCriticTest, DeviceMapAssignsComponents) {
  GridWorld env(GridWorld::Config{});
  Json cfg = a2c_config();
  cfg["device_map"]["agent/policy"] = Json("/gpu:0");
  cfg["optimize_graph"] = Json(false);
  ActorCriticAgent agent(cfg, env.state_space(), env.action_space());
  agent.build();
  std::string dump = agent.executor().graph_dump();
  EXPECT_NE(dump.find("@/gpu:0"), std::string::npos);
  // The optimizer stays on the default device.
  EXPECT_NE(dump.find("@/cpu:0"), std::string::npos);
}

TEST(ActorCriticTest, ProfilingRecordsPerApiTimers) {
  GridWorld env(GridWorld::Config{});
  Json cfg = a2c_config();
  cfg["profiling"] = Json(true);
  ActorCriticAgent agent(cfg, env.state_space(), env.action_space());
  agent.build();
  Tensor s = Tensor::zeros(DType::kFloat32, Shape{1, 16});
  agent.get_actions(s);
  agent.get_actions(s);
  agent.get_values(s);
  const MetricRegistry& profile = agent.executor().profile();
  EXPECT_EQ(profile.counter("calls/act"), 2);
  EXPECT_EQ(profile.counter("calls/get_values"), 1);
  EXPECT_EQ(profile.timer("execute/act").count(), 2);
  EXPECT_FALSE(agent.executor().profile_report().empty());
}

}  // namespace
}  // namespace rlgraph
