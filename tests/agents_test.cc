// Agent-level tests: the Listing-2 API contract, backend equivalence, model
// checkpointing, learning on GridWorld, and the IMPALA actor/learner pair.
#include <gtest/gtest.h>

#include <cstdio>

#include "agents/dqn_agent.h"
#include "agents/impala_agent.h"
#include "env/catch_env.h"
#include "env/grid_world.h"
#include "env/vector_env.h"
#include "tensor/kernels.h"
#include "util/random.h"

namespace rlgraph {
namespace {

Json dqn_config(const std::string& backend = "static") {
  Json cfg = Json::parse(R"({
    "type": "dqn",
    "network": [{"type": "dense", "units": 32, "activation": "relu"},
                {"type": "dense", "units": 32, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 1024},
    "optimizer": {"type": "adam", "learning_rate": 0.002},
    "exploration": {"eps_start": 1.0, "eps_end": 0.05, "decay_steps": 1200},
    "update": {"batch_size": 32, "sync_interval": 25, "min_records": 64},
    "discount": 0.95, "double_q": true, "dueling_q": true, "n_step": 1
  })");
  cfg["backend"] = Json(backend);
  return cfg;
}

TEST(DQNAgentTest, BuildExposesFullApi) {
  GridWorld env(GridWorld::Config{});
  DQNAgent agent(dqn_config(), env.state_space(), env.action_space());
  agent.build();
  const auto& registry = agent.executor().api_registry();
  for (const char* api :
       {"act", "act_greedy", "observe", "update", "update_batch",
        "sample_batch", "update_priorities", "compute_priorities",
        "sync_target", "memory_size"}) {
    EXPECT_EQ(registry.count(api), 1u) << api;
  }
  // A full DQN architecture has tens of components (paper: 43 for the
  // Atari-scale config).
  EXPECT_GE(agent.executor().stats().num_components, 15);
}

TEST(DQNAgentTest, ActReturnsValidActions) {
  GridWorld env(GridWorld::Config{});
  DQNAgent agent(dqn_config(), env.state_space(), env.action_space());
  agent.build();
  Tensor obs = env.reset();
  Tensor batch = obs.reshaped(obs.shape().prepend(1));
  for (int i = 0; i < 10; ++i) {
    Tensor a = agent.get_actions(batch);
    EXPECT_EQ(a.shape(), (Shape{1}));
    EXPECT_GE(a.to_ints()[0], 0);
    EXPECT_LT(a.to_ints()[0], 4);
  }
  EXPECT_EQ(agent.last_preprocessed().shape(), (Shape{1, 16}));
}

TEST(DQNAgentTest, QuantizedGreedyActionsAgreeWithFp32) {
  // Post-training quantization acceptance: int8 greedy actions agree with
  // the fp32 plan on >= 99% of random observations. Fully deterministic
  // (fixed seeds, fixed kernels), so the measured agreement is stable.
  SpacePtr obs_space = FloatBox(Shape{8});
  DQNAgent agent(dqn_config(), obs_space, IntBox(4));
  agent.build();
  Rng rng(17);
  auto random_batch = [&](int64_t n) {
    std::vector<float> v(static_cast<size_t>(n * 8));
    for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    return Tensor::from_floats(Shape{n, 8}, v);
  };
  std::vector<Tensor> calibration;
  for (int i = 0; i < 4; ++i) calibration.push_back(random_batch(16));
  // Two hidden dense layers + the Q head(s): several MatMuls quantize.
  ASSERT_GE(agent.enable_quantized_actions(calibration), 2);

  int agree = 0, total = 0;
  for (int b = 0; b < 8; ++b) {
    Tensor obs = random_batch(64);
    std::vector<int32_t> fp32 = agent.get_actions(obs, false).to_ints();
    std::vector<int32_t> int8 = agent.get_actions_quantized(obs).to_ints();
    ASSERT_EQ(fp32.size(), int8.size());
    for (size_t i = 0; i < fp32.size(); ++i) {
      ++total;
      if (fp32[i] == int8[i]) ++agree;
    }
  }
  EXPECT_GE(agree * 100, total * 99) << "agreement " << agree << "/" << total;
  std::printf("int8 greedy agreement: %d/%d\n", agree, total);
}

TEST(DQNAgentTest, UpdateWaitsForWarmup) {
  GridWorld env(GridWorld::Config{});
  DQNAgent agent(dqn_config(), env.state_space(), env.action_space());
  agent.build();
  EXPECT_EQ(agent.memory_size(), 0);
  EXPECT_DOUBLE_EQ(agent.update(), 0.0);  // not warm: no-op
}

TEST(DQNAgentTest, ObserveGrowsMemory) {
  GridWorld env(GridWorld::Config{});
  DQNAgent agent(dqn_config(), env.state_space(), env.action_space());
  agent.build();
  Tensor s = Tensor::zeros(DType::kFloat32, Shape{4, 16});
  Tensor a = Tensor::from_ints(Shape{4}, {0, 1, 2, 3});
  Tensor r = Tensor::zeros(DType::kFloat32, Shape{4});
  Tensor t = Tensor::from_bools(Shape{4}, {false, false, false, true});
  agent.observe(s, a, r, s, t);
  EXPECT_EQ(agent.memory_size(), 4);
}

TEST(DQNAgentTest, UpdateChangesPolicyWeights) {
  GridWorld env(GridWorld::Config{});
  DQNAgent agent(dqn_config(), env.state_space(), env.action_space());
  agent.build();
  Rng rng(1);
  Tensor s = kernels::random_uniform(Shape{128, 16}, 0, 1, rng);
  Tensor a = kernels::random_int(Shape{128}, 4, rng);
  Tensor r = kernels::random_uniform(Shape{128}, -1, 1, rng);
  agent.observe(s, a, r, s,
                Tensor::from_bools(Shape{128},
                                   std::vector<bool>(128, false)));
  auto before = agent.get_weights("agent/policy");
  double loss = agent.update();
  EXPECT_GT(loss, 0.0);
  auto after = agent.get_weights("agent/policy");
  bool any_changed = false;
  for (auto& [name, value] : before) {
    if (!value.all_close(after.at(name), 1e-9)) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(DQNAgentTest, SyncTargetCopiesWeights) {
  GridWorld env(GridWorld::Config{});
  DQNAgent agent(dqn_config(), env.state_space(), env.action_space());
  agent.build();
  auto policy = agent.get_weights("agent/policy/");
  auto target_before = agent.get_weights("agent/target-policy/");
  // Different inits: some weight must differ.
  bool differ = false;
  for (auto& [name, value] : policy) {
    std::string tname = "agent/target-policy/" + name.substr(13);
    if (!value.all_close(target_before.at(tname), 1e-9)) differ = true;
  }
  EXPECT_TRUE(differ);
  agent.sync_target();
  auto target_after = agent.get_weights("agent/target-policy/");
  for (auto& [name, value] : policy) {
    std::string tname = "agent/target-policy/" + name.substr(13);
    EXPECT_TRUE(value.all_close(target_after.at(tname), 1e-9)) << name;
  }
}

TEST(DQNAgentTest, ComputePrioritiesShape) {
  GridWorld env(GridWorld::Config{});
  DQNAgent agent(dqn_config(), env.state_space(), env.action_space());
  agent.build();
  Tensor s = Tensor::zeros(DType::kFloat32, Shape{6, 16});
  Tensor a = Tensor::from_ints(Shape{6}, {0, 1, 2, 3, 0, 1});
  Tensor r = Tensor::zeros(DType::kFloat32, Shape{6});
  Tensor t = Tensor::from_bools(Shape{6}, std::vector<bool>(6, false));
  Tensor p = agent.compute_priorities(s, a, r, s, t);
  EXPECT_EQ(p.shape(), (Shape{6}));
  for (int i = 0; i < 6; ++i) EXPECT_GE(p.at_flat(i), 0.0);
}

TEST(DQNAgentTest, ModelExportImportRoundTrip) {
  GridWorld env(GridWorld::Config{});
  DQNAgent a(dqn_config(), env.state_space(), env.action_space());
  a.build();
  std::string path = ::testing::TempDir() + "/rlgraph_ckpt.bin";
  a.export_model(path);

  Json cfg = dqn_config();
  cfg["seed"] = Json(987);  // different init
  DQNAgent b(cfg, env.state_space(), env.action_space());
  b.build();
  b.import_model(path);
  Tensor s = Tensor::zeros(DType::kFloat32, Shape{1, 16});
  s.set_flat(3, 1.0);
  EXPECT_TRUE(a.get_actions(s, /*explore=*/false)
                  .equals(b.get_actions(s, /*explore=*/false)));
  std::remove(path.c_str());
}

TEST(DQNAgentTest, BackendsAgreeUnderSameSeed) {
  GridWorld env(GridWorld::Config{});
  DQNAgent s_agent(dqn_config("static"), env.state_space(),
                   env.action_space());
  DQNAgent i_agent(dqn_config("define_by_run"), env.state_space(),
                   env.action_space());
  s_agent.build();
  i_agent.build();
  Rng rng(2);
  Tensor obs = kernels::random_uniform(Shape{3, 16}, 0, 1, rng);
  EXPECT_TRUE(s_agent.get_actions(obs, false)
                  .equals(i_agent.get_actions(obs, false)));
}

// The headline integration test: DQN learns GridWorld to goal-reaching
// greedy behaviour.
TEST(DQNAgentTest, LearnsGridWorld) {
  GridWorld env(GridWorld::Config{4, 0.01, 40, /*with_holes=*/false});
  DQNAgent agent(dqn_config(), env.state_space(), env.action_space());
  agent.build();

  Tensor obs = env.reset();
  for (int step = 0; step < 3000; ++step) {
    Tensor batch = obs.reshaped(obs.shape().prepend(1));
    Tensor action = agent.get_actions(batch);
    StepResult r = env.step(action.to_ints()[0]);
    Tensor next = r.observation.reshaped(r.observation.shape().prepend(1));
    agent.observe(agent.last_preprocessed(), action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}), next,
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    agent.update();
    obs = r.terminal ? env.reset() : r.observation;
  }

  // Greedy rollout must reach the goal (+1 terminal reward) quickly.
  obs = env.reset();
  double total = 0;
  for (int step = 0; step < 12; ++step) {
    Tensor batch = obs.reshaped(obs.shape().prepend(1));
    Tensor action = agent.get_actions(batch, /*explore=*/false);
    StepResult r = env.step(action.to_ints()[0]);
    total += r.reward;
    if (r.terminal) break;
    obs = r.observation;
  }
  EXPECT_GT(total, 0.5) << "greedy policy failed to reach the goal";
}

// --- IMPALA ----------------------------------------------------------------------

TEST(IMPALAAgentTest, ActorLearnerRoundTrip) {
  Json cfg = Json::parse(R"({
    "type": "impala_actor",
    "network": [{"type": "conv2d", "filters": 4, "kernel": 3, "stride": 2,
                 "activation": "relu"},
                {"type": "dense", "units": 16, "activation": "relu"}],
    "rollout_length": 6, "discount": 0.95,
    "optimizer": {"type": "adam", "learning_rate": 0.001}
  })");
  Json env_spec;
  env_spec["type"] = Json("catch");
  VectorEnv env(env_spec, 3, 7);
  auto queue = std::make_shared<SharedTensorQueue>(4);

  IMPALAAgent actor(cfg, env.state_space(), env.action_space(),
                    IMPALAAgent::Mode::kActor);
  actor.set_queue(queue);
  actor.build();
  actor.attach_environment(&env);

  Json lcfg = cfg;
  lcfg["type"] = Json("impala_learner");
  lcfg["use_staging"] = Json(false);  // direct consumption for this test
  IMPALAAgent learner(lcfg, env.state_space(), env.action_space(),
                      IMPALAAgent::Mode::kLearner);
  learner.set_queue(queue);
  learner.build();

  int64_t frames = actor.act_and_enqueue();
  EXPECT_EQ(frames, 3 * 6);  // 3 envs x rollout 6 (frame_skip 1 for catch)
  EXPECT_EQ(queue->size(), 1u);
  auto before = learner.get_weights("agent/policy");
  double loss = learner.update();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_EQ(queue->size(), 0u);
  auto after = learner.get_weights("agent/policy");
  bool changed = false;
  for (auto& [name, value] : before) {
    if (!value.all_close(after.at(name), 1e-9)) changed = true;
  }
  EXPECT_TRUE(changed);
  // Weight sync learner -> actor by name.
  actor.set_weights(after);
}

TEST(IMPALAAgentTest, ObserveIsRejected) {
  Json cfg = Json::parse(R"({
    "type": "impala_actor",
    "network": [{"type": "dense", "units": 8}],
    "rollout_length": 4
  })");
  Json env_spec;
  env_spec["type"] = Json("grid_world");
  GridWorld env(GridWorld::Config{});
  IMPALAAgent actor(cfg, env.state_space(), env.action_space(),
                    IMPALAAgent::Mode::kActor);
  actor.set_queue(std::make_shared<SharedTensorQueue>(2));
  actor.build();
  Tensor dummy;
  EXPECT_THROW(actor.observe(dummy, dummy, dummy, dummy, dummy), ValueError);
}

TEST(AgentFactoryTest, MakesAgentsByType) {
  GridWorld env(GridWorld::Config{});
  auto dqn = make_agent(dqn_config(), env.state_space(), env.action_space());
  EXPECT_NE(dynamic_cast<DQNAgent*>(dqn.get()), nullptr);
  EXPECT_THROW(make_agent(Json::parse(R"({"type": "sarsa"})"),
                          env.state_space(), env.action_space()),
               ConfigError);
}

}  // namespace
}  // namespace rlgraph
