// Tests for the ring all-reduce (the Horovod-plugin analogue).
#include <gtest/gtest.h>

#include <thread>

#include "execution/allreduce.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

// Run a reduce round across n rank threads and return rank 0's result.
std::vector<std::vector<Tensor>> run_round(
    RingAllReduce& ring, const std::vector<std::vector<Tensor>>& inputs) {
  int n = static_cast<int>(inputs.size());
  std::vector<std::vector<Tensor>> results(static_cast<size_t>(n));
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      results[static_cast<size_t>(r)] =
          ring.reduce(r, inputs[static_cast<size_t>(r)]);
    });
  }
  for (auto& t : threads) t.join();
  return results;
}

std::vector<Tensor> expected_mean(
    const std::vector<std::vector<Tensor>>& inputs) {
  std::vector<Tensor> out;
  for (size_t i = 0; i < inputs[0].size(); ++i) {
    Tensor acc = inputs[0][i].clone();
    for (size_t r = 1; r < inputs.size(); ++r) {
      acc = kernels::add(acc, inputs[r][i]);
    }
    out.push_back(kernels::mul(
        acc, Tensor::scalar(1.0f / static_cast<float>(inputs.size()))));
  }
  return out;
}

class RingAllReduceTest : public ::testing::TestWithParam<int> {};

TEST_P(RingAllReduceTest, ComputesMeanAcrossRanks) {
  int n = GetParam();
  RingAllReduce ring(n);
  Rng rng(static_cast<uint64_t>(n));
  std::vector<std::vector<Tensor>> inputs(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    inputs[static_cast<size_t>(r)] = {
        kernels::random_uniform(Shape{5, 3}, -1, 1, rng),
        kernels::random_uniform(Shape{7}, -1, 1, rng),
        Tensor::scalar(static_cast<float>(r)),
    };
  }
  auto results = run_round(ring, inputs);
  auto expected = expected_mean(inputs);
  for (int r = 0; r < n; ++r) {
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(results[static_cast<size_t>(r)][i].all_close(expected[i],
                                                               1e-5))
          << "rank " << r << " tensor " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, RingAllReduceTest,
                         ::testing::Values(1, 2, 3, 4, 7));

TEST(RingAllReduceTest, MessageCountMatchesRingAlgorithm) {
  int n = 4;
  RingAllReduce ring(n);
  std::vector<std::vector<Tensor>> inputs(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    inputs[static_cast<size_t>(r)] = {Tensor::scalar(1.0f)};
  }
  run_round(ring, inputs);
  // 2*(n-1) chunk messages per rank per round.
  EXPECT_EQ(ring.messages_sent(), 2 * (n - 1) * n);
}

TEST(RingAllReduceTest, ReusableAcrossRounds) {
  int n = 3;
  RingAllReduce ring(n);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::vector<Tensor>> inputs(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      inputs[static_cast<size_t>(r)] = {
          Tensor::scalar(static_cast<float>(r + round))};
    }
    auto results = run_round(ring, inputs);
    float expected = (0 + 1 + 2 + 3 * round) / 3.0f;
    for (int r = 0; r < n; ++r) {
      EXPECT_NEAR(results[static_cast<size_t>(r)][0].scalar_value(),
                  expected, 1e-6)
          << "round " << round;
    }
  }
}

TEST(RingAllReduceTest, GradientAveragingAcrossTowers) {
  // Integration flavour: average per-tower "gradients" of different
  // magnitudes; each tower ends with the same averaged tensors, exactly the
  // synchronous multi-device semantics.
  int n = 2;
  RingAllReduce ring(n);
  std::vector<std::vector<Tensor>> grads{
      {Tensor::from_floats(Shape{4}, {1, 2, 3, 4})},
      {Tensor::from_floats(Shape{4}, {3, 2, 1, 0})},
  };
  auto results = run_round(ring, grads);
  EXPECT_EQ(results[0][0].to_floats(), (std::vector<float>{2, 2, 2, 2}));
  EXPECT_TRUE(results[0][0].equals(results[1][0]));
}

}  // namespace
}  // namespace rlgraph
