// Reverse-mode autodiff tests: finite-difference validation across the
// differentiable op set (parameterized), and static/define-by-run agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "backend/imperative_context.h"
#include "backend/static_context.h"
#include "graph/session.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

// A differentiable scalar program: refs in, scalar loss out.
using Program = std::function<OpRef(OpContext&, const std::vector<OpRef>&)>;

struct GradCase {
  std::string name;
  std::vector<Shape> input_shapes;
  Program program;
};

// Evaluates loss and gradient w.r.t. every input on the imperative backend.
std::pair<double, std::vector<Tensor>> eval_imperative(
    const GradCase& c, const std::vector<Tensor>& inputs) {
  VariableStore store;
  Rng rng(1);
  ImperativeContext ctx(&store, &rng, /*build_mode=*/false);
  std::vector<OpRef> refs;
  for (const Tensor& t : inputs) refs.push_back(ctx.literal(t));
  OpRef loss = c.program(ctx, refs);
  std::vector<OpRef> grads = gradients(ctx, loss, refs);
  std::vector<Tensor> grad_values;
  for (OpRef g : grads) grad_values.push_back(ctx.value(g));
  return {ctx.value(loss).scalar_value(), grad_values};
}

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, MatchesFiniteDifferences) {
  const GradCase& c = GetParam();
  Rng rng(42);
  std::vector<Tensor> inputs;
  for (const Shape& s : c.input_shapes) {
    // Keep away from non-smooth points (|x| small for abs/relu kinks).
    Tensor t = kernels::random_uniform(s, 0.2, 1.5, rng);
    inputs.push_back(t);
  }
  auto [loss, grads] = eval_imperative(c, inputs);
  (void)loss;
  const double eps = 1e-3;
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (int64_t j = 0; j < inputs[i].num_elements(); ++j) {
      std::vector<Tensor> plus = inputs, minus = inputs;
      plus[i] = inputs[i].clone();
      minus[i] = inputs[i].clone();
      plus[i].set_flat(j, inputs[i].at_flat(j) + eps);
      minus[i].set_flat(j, inputs[i].at_flat(j) - eps);
      double fd = (eval_imperative(c, plus).first -
                   eval_imperative(c, minus).first) /
                  (2 * eps);
      EXPECT_NEAR(grads[i].at_flat(j), fd, 5e-2)
          << c.name << " input " << i << " element " << j;
    }
  }
}

TEST_P(GradCheckTest, StaticBackendMatchesImperative) {
  const GradCase& c = GetParam();
  Rng data_rng(99);
  std::vector<Tensor> inputs;
  for (const Shape& s : c.input_shapes) {
    inputs.push_back(kernels::random_uniform(s, 0.2, 1.5, data_rng));
  }
  auto [imp_loss, imp_grads] = eval_imperative(c, inputs);

  VariableStore store;
  Rng rng(1);
  StaticGraphContext ctx(&store, &rng);
  std::vector<OpRef> refs;
  FeedMap feeds;
  for (size_t i = 0; i < inputs.size(); ++i) {
    OpRef ph = ctx.placeholder("in" + std::to_string(i),
                               inputs[i].dtype(), inputs[i].shape());
    feeds[ph.node] = inputs[i];
    refs.push_back(ph);
  }
  OpRef loss = c.program(ctx, refs);
  std::vector<OpRef> grads = gradients(ctx, loss, refs);
  std::vector<Endpoint> fetches{{loss.node, loss.index}};
  for (OpRef g : grads) fetches.push_back({g.node, g.index});
  Session session(ctx.graph(), &store, &rng);
  auto out = session.run(fetches, feeds);
  EXPECT_NEAR(out[0].scalar_value(), imp_loss, 1e-4) << c.name;
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_TRUE(out[i + 1].all_close(imp_grads[i], 1e-4))
        << c.name << " grad " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, GradCheckTest,
    ::testing::Values(
        GradCase{"add_mul",
                 {Shape{3}, Shape{3}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   return c.reduce_sum(c.mul(c.add(in[0], in[1]), in[0]));
                 }},
        GradCase{"broadcast_bias",
                 {Shape{2, 3}, Shape{3}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   return c.reduce_sum(c.square(c.add(in[0], in[1])));
                 }},
        GradCase{"div_sub",
                 {Shape{4}, Shape{4}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   return c.reduce_mean(c.div(in[0], c.add(in[1],
                                                           c.scalar(1.0f))));
                 }},
        GradCase{"exp_log_sqrt",
                 {Shape{3}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   return c.reduce_sum(
                       c.sqrt(c.exp(c.log(c.add(in[0], c.scalar(1.0f))))));
                 }},
        GradCase{"tanh_sigmoid",
                 {Shape{5}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   return c.reduce_sum(c.mul(c.tanh(in[0]),
                                             c.sigmoid(in[0])));
                 }},
        GradCase{"relu_abs",
                 {Shape{4}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   return c.reduce_sum(c.add(c.relu(in[0]), c.abs(in[0])));
                 }},
        GradCase{"matmul",
                 {Shape{2, 3}, Shape{3, 2}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   return c.reduce_sum(c.matmul(in[0], in[1]));
                 }},
        GradCase{"matmul_chain",
                 {Shape{2, 2}, Shape{2, 2}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   OpRef h = c.relu(c.matmul(in[0], in[1]));
                   return c.reduce_mean(c.square(h));
                 }},
        GradCase{"softmax_xent",
                 {Shape{2, 3}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   OpRef logp = c.log_softmax(in[0]);
                   return c.neg(c.reduce_mean(logp));
                 }},
        GradCase{"softmax_weighted",
                 {Shape{2, 4}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   OpRef p = c.softmax(in[0]);
                   return c.reduce_sum(c.mul(p, p));
                 }},
        GradCase{"reduce_axes",
                 {Shape{3, 4}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   OpRef rows = c.reduce_mean(in[0], 1);
                   return c.reduce_sum(c.square(rows));
                 }},
        GradCase{"minimum_maximum",
                 {Shape{4}, Shape{4}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   return c.reduce_sum(c.add(c.minimum(in[0], in[1]),
                                             c.maximum(in[0], in[1])));
                 }},
        GradCase{"clip",
                 {Shape{5}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   return c.reduce_sum(c.clip(c.mul(in[0], c.scalar(2.0f)),
                                              0.5, 2.0));
                 }},
        GradCase{"concat_split",
                 {Shape{2, 2}, Shape{2, 3}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   OpRef cat = c.concat({in[0], in[1]}, 1);
                   auto parts = c.split(cat, 1, {3, 2});
                   return c.add(c.reduce_sum(c.square(parts[0])),
                                c.reduce_sum(parts[1]));
                 }},
        GradCase{"reshape_expand",
                 {Shape{2, 3}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   OpRef flat = c.reshape(in[0], Shape{6});
                   OpRef col = c.expand_dims(flat, 1);
                   return c.reduce_sum(c.square(c.squeeze(col, 1)));
                 }},
        GradCase{"select_columns",
                 {Shape{3, 4}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   OpRef idx =
                       c.constant(Tensor::from_ints(Shape{3}, {1, 0, 3}));
                   return c.reduce_sum(c.square(c.select_columns(in[0], idx)));
                 }},
        GradCase{"where",
                 {Shape{4}, Shape{4}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   OpRef cond = c.greater(in[0], in[1]);
                   return c.reduce_sum(c.where(cond, c.square(in[0]),
                                               c.neg(in[1])));
                 }},
        GradCase{"conv2d",
                 {Shape{1, 4, 4, 1}, Shape{2, 2, 1, 2}},
                 [](OpContext& c, const std::vector<OpRef>& in) {
                   OpRef conv = c.apply("Conv2D", {in[0], in[1]},
                                        {{"stride", int64_t{1}},
                                         {"same_padding", false}});
                   return c.reduce_sum(c.square(conv));
                 }}),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

TEST(AutodiffTest, StopGradientBlocksFlow) {
  VariableStore store;
  Rng rng(1);
  ImperativeContext ctx(&store, &rng, false);
  OpRef x = ctx.literal(Tensor::scalar(3.0f));
  OpRef loss = ctx.mul(x, ctx.stop_gradient(x));  // d/dx = x (not 2x)
  auto grads = gradients(ctx, loss, {x});
  EXPECT_FLOAT_EQ(ctx.value(grads[0]).scalar_value(), 3.0f);
}

TEST(AutodiffTest, NoPathYieldsZeros) {
  VariableStore store;
  Rng rng(1);
  ImperativeContext ctx(&store, &rng, false);
  OpRef x = ctx.literal(Tensor::from_floats(Shape{2}, {1, 2}));
  OpRef unrelated = ctx.literal(Tensor::scalar(5.0f));
  OpRef loss = ctx.reduce_sum(ctx.square(unrelated));
  auto grads = gradients(ctx, loss, {x});
  EXPECT_EQ(ctx.value(grads[0]).to_floats(), (std::vector<float>{0, 0}));
}

TEST(AutodiffTest, GradientThroughVariables) {
  VariableStore store;
  Rng rng(1);
  ImperativeContext ctx(&store, &rng, false);
  ctx.create_variable("w", Tensor::from_floats(Shape{2}, {2, 3}));
  OpRef w = ctx.variable("w");
  OpRef loss = ctx.reduce_sum(ctx.square(w));
  auto grads = gradients(ctx, loss, {w});
  EXPECT_EQ(ctx.value(grads[0]).to_floats(), (std::vector<float>{4, 6}));
}

TEST(AutodiffTest, AccumulatesFanOut) {
  VariableStore store;
  Rng rng(1);
  ImperativeContext ctx(&store, &rng, false);
  OpRef x = ctx.literal(Tensor::scalar(2.0f));
  // loss = x*x + 3x -> dloss/dx = 2x + 3 = 7.
  OpRef loss = ctx.add(ctx.mul(x, x), ctx.mul(ctx.scalar(3.0f), x));
  auto grads = gradients(ctx, loss, {x});
  EXPECT_FLOAT_EQ(ctx.value(grads[0]).scalar_value(), 7.0f);
}

}  // namespace
}  // namespace rlgraph
