// Baseline tests: the hand-tuned actor, the RLlib-like Ape-X variant, and
// the DM-reference IMPALA flags — including the mechanistic sanity checks
// that the baselines run the SAME algorithm (only the execution pattern
// differs).
#include <gtest/gtest.h>

#include "baselines/dm_impala_like.h"
#include "baselines/hand_tuned_actor.h"
#include "baselines/rllib_like.h"

namespace rlgraph {
namespace {

TEST(HandTunedActorTest, ShapesAndDeterminism) {
  Json network = Json::parse(R"([
    {"type": "conv2d", "filters": 4, "kernel": 3, "stride": 2,
     "activation": "relu"},
    {"type": "dense", "units": 16, "activation": "relu"}
  ])");
  SpacePtr state = FloatBox(Shape{9, 9, 1}, 0, 1);
  HandTunedActor actor(network, state, 3);
  Tensor obs = Tensor::zeros(DType::kFloat32, Shape{4, 9, 9, 1});
  Tensor q = actor.q_values(obs);
  EXPECT_EQ(q.shape(), (Shape{4, 3}));
  Tensor a1 = actor.act(obs);
  Tensor a2 = actor.act(obs);
  EXPECT_TRUE(a1.equals(a2));
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(a1.to_ints()[i], 0);
    EXPECT_LT(a1.to_ints()[i], 3);
  }
}

TEST(HandTunedActorTest, DuelingIdentityHolds) {
  // The dueling head satisfies mean_a(Q - V) = 0; verify via re-centering.
  Json network = Json::parse(R"([{"type": "dense", "units": 8,
                                  "activation": "tanh"}])");
  HandTunedActor actor(network, FloatBox(Shape{5}), 4);
  Rng rng(2);
  Tensor obs = kernels::random_uniform(Shape{3, 5}, -1, 1, rng);
  Tensor q = actor.q_values(obs);
  Tensor centered = kernels::sub(q, kernels::reduce_mean(q, 1, true));
  Tensor remean = kernels::reduce_mean(centered, 1, false);
  for (int64_t i = 0; i < remean.num_elements(); ++i) {
    EXPECT_NEAR(remean.at_flat(i), 0.0, 1e-5);
  }
}

TEST(RLlibLikeTest, FlagsFlipExecutionPatternOnly) {
  ApexConfig cfg;
  cfg.agent_config = Json::parse(R"({"type": "apex",
      "network": [{"type": "dense", "units": 8}]})");
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  ApexConfig baseline = baselines::rllib_like(cfg);
  EXPECT_TRUE(baseline.act_per_env);
  EXPECT_TRUE(baseline.incremental_post_processing);
  // Algorithmic knobs untouched.
  EXPECT_EQ(baseline.n_step, cfg.n_step);
  EXPECT_EQ(baseline.learner_batch, cfg.learner_batch);
  EXPECT_TRUE(baseline.agent_config == cfg.agent_config);
}

TEST(RLlibLikeTest, BaselineUsesMoreExecutorCallsPerSample) {
  // The mechanistic claim of Fig. 6/7a: the RLlib-like worker issues more
  // executor calls for the same number of sampled records.
  ApexConfig cfg;
  cfg.agent_config = Json::parse(R"({
    "type": "apex",
    "network": [{"type": "dense", "units": 8, "activation": "relu"}],
    "memory": {"capacity": 128},
    "update": {"min_records": 1000000}
  })");
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.envs_per_worker = 4;
  cfg.n_step = 1;
  auto probe = make_environment(cfg.env_spec);
  cfg.state_space = probe->state_space();
  cfg.action_space = probe->action_space();
  cfg.preprocessed_space_ = cfg.state_space;

  ApexWorker fast(cfg, 0);
  fast.sample(100);
  int64_t fast_calls = fast.executor_calls();

  ApexConfig slow_cfg = baselines::rllib_like(cfg);
  ApexWorker slow(slow_cfg, 0);
  slow.sample(100);
  int64_t slow_calls = slow.executor_calls();
  EXPECT_GT(slow_calls, fast_calls * 2);
}

TEST(DmImpalaLikeTest, FlagsSet) {
  ImpalaConfig cfg;
  ImpalaConfig baseline = baselines::dm_impala_like(cfg);
  EXPECT_TRUE(baseline.redundant_assigns);
  EXPECT_TRUE(baseline.unbatched_unstage);
  EXPECT_EQ(baseline.num_actors, cfg.num_actors);
}

TEST(DmImpalaLikeTest, PipelineRunsWithBaselineFlags) {
  ImpalaConfig cfg;
  cfg.agent_config = Json::parse(R"({
    "network": [{"type": "dense", "units": 8, "activation": "relu"}],
    "rollout_length": 6,
    "optimizer": {"type": "adam", "learning_rate": 0.001}
  })");
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_actors = 1;
  cfg.envs_per_actor = 2;
  ImpalaPipeline pipeline(baselines::dm_impala_like(cfg));
  ImpalaResult result = pipeline.run(1.0);
  EXPECT_GT(result.rollouts, 0);
  EXPECT_GT(result.learner_updates, 0);
}

}  // namespace
}  // namespace rlgraph
