// Chaos tests: the fault-tolerant execution stack end-to-end. Supervisor
// restart policy, Ape-X under injected worker crashes/failures/delays, and
// IMPALA under actor die-off — the coordination loops must degrade (retry,
// drop, reroute) but never hang or crash, and the learner must keep making
// progress while any data source remains.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "execution/apex_executor.h"
#include "execution/impala_pipeline.h"
#include "execution/supervisor.h"

namespace rlgraph {
namespace {

// Sanitizer runs are 5-15x slower; tests that pit a task deadline against
// honest task latency must scale BOTH sides or the deadline disqualifies
// every task, not just the injected stragglers.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kTimeScale = 5.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kTimeScale = 5.0;
#else
constexpr double kTimeScale = 1.0;
#endif
#else
constexpr double kTimeScale = 1.0;
#endif

SupervisorConfig fast_supervisor() {
  SupervisorConfig cfg;
  cfg.heartbeat_interval_ms = 2.0;
  cfg.max_restarts_per_worker = 5;
  cfg.backoff_initial_ms = 1.0;
  cfg.backoff_multiplier = 2.0;
  cfg.backoff_max_ms = 20.0;
  return cfg;
}

TEST(SupervisorTest, RestartsUntilBudgetThenGivesUp) {
  std::atomic<int> restarts{0};
  SupervisorConfig cfg = fast_supervisor();
  cfg.max_restarts_per_worker = 2;
  MetricRegistry metrics;
  // The worker never recovers: every heartbeat sees it failed.
  Supervisor sup(
      cfg, 1, [](size_t) { return true; },
      [&](size_t) {
        restarts.fetch_add(1);
        return true;
      },
      &metrics);
  // Drive heartbeats manually past the backoff windows.
  for (int i = 0; i < 50 && !sup.gave_up(0); ++i) {
    sup.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(sup.gave_up(0));
  EXPECT_TRUE(sup.all_given_up());
  EXPECT_EQ(restarts.load(), 2);
  EXPECT_EQ(sup.total_restarts(), 2);
  EXPECT_EQ(metrics.counter("supervisor.restarts"), 2);
  EXPECT_EQ(metrics.counter("supervisor.gave_up"), 1);
}

TEST(SupervisorTest, RecoveredWorkerStopsConsumingBudget) {
  std::atomic<bool> failed{true};
  std::atomic<int> restarts{0};
  Supervisor sup(
      fast_supervisor(), 1, [&](size_t) { return failed.load(); },
      [&](size_t) {
        restarts.fetch_add(1);
        failed.store(false);  // the restart heals the worker
        return true;
      },
      nullptr);
  for (int i = 0; i < 10; ++i) {
    sup.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(restarts.load(), 1);
  EXPECT_FALSE(sup.gave_up(0));
}

TEST(SupervisorTest, BackgroundHeartbeatThread) {
  std::atomic<bool> failed{true};
  std::atomic<int> restarts{0};
  Supervisor sup(
      fast_supervisor(), 1, [&](size_t) { return failed.load(); },
      [&](size_t) {
        restarts.fetch_add(1);
        failed.store(false);
        return true;
      },
      nullptr);
  sup.start();
  for (int i = 0; i < 200 && restarts.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sup.stop();
  EXPECT_EQ(restarts.load(), 1);
}

Json chaos_agent_config() {
  return Json::parse(R"({
    "type": "apex",
    "network": [{"type": "dense", "units": 16, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 512},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 0.6, "eps_end": 0.1, "decay_steps": 500},
    "update": {"batch_size": 16, "sync_interval": 20, "min_records": 32}
  })");
}

// The acceptance-criteria run: Ape-X with worker crash probability > 0 (plus
// a deterministic crash so >= 1 restart is guaranteed) completes within its
// deadline, restarts workers, and the learner still advances.
TEST(ApexChaosTest, SurvivesInjectedCrashesAndKeepsLearning) {
  ApexConfig cfg;
  cfg.agent_config = chaos_agent_config();
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_workers = 2;
  cfg.envs_per_worker = 2;
  cfg.num_replay_shards = 2;
  cfg.worker_sample_size = 40;
  cfg.min_shard_records = 32;
  cfg.n_step = 3;
  cfg.enable_fault_injection = true;
  cfg.fault_config.crash_prob = 0.02;
  cfg.fault_config.task_failure_prob = 0.05;
  cfg.fault_config.delay_prob = 0.1;
  cfg.fault_config.delay_min_ms = 1.0;
  cfg.fault_config.delay_max_ms = 5.0;
  cfg.fault_config.warmup_tasks = 2;
  cfg.fault_config.crash_after_tasks = 4;  // every worker crashes once
  cfg.fault_config.seed = 17;
  cfg.supervisor = fast_supervisor();
  cfg.max_task_retries = 2;

  ApexExecutor exec(cfg);
  ApexResult result = exec.run(2.5);

  EXPECT_GE(result.worker_restarts, 1);
  EXPECT_GT(result.sample_tasks, 2);
  EXPECT_GT(result.env_frames, 100);
  EXPECT_GT(result.learner_updates, 0);
  // The deterministic crash loses each worker's in-flight task: the retry
  // path must have fired.
  EXPECT_GT(result.task_failures, 0);
  EXPECT_GT(result.task_retries + result.tasks_dropped, 0);
  EXPECT_FALSE(result.metrics_report.empty());
  EXPECT_EQ(exec.metrics().counter("supervisor.restarts"),
            result.worker_restarts);
}

// Permanent total worker loss: the supervisor's budget is zero, so the only
// worker dies for good. The coordination loop must run to its deadline
// without hanging while the learner drains what was already collected.
TEST(ApexChaosTest, TotalWorkerLossDegradesWithoutHanging) {
  ApexConfig cfg;
  cfg.agent_config = chaos_agent_config();
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_workers = 1;
  cfg.envs_per_worker = 2;
  cfg.num_replay_shards = 1;
  cfg.worker_sample_size = 40;
  cfg.min_shard_records = 32;
  cfg.enable_fault_injection = true;
  cfg.fault_config.crash_after_tasks = 2;
  cfg.fault_config.seed = 9;
  cfg.supervisor = fast_supervisor();
  cfg.supervisor.max_restarts_per_worker = 0;

  ApexExecutor exec(cfg);
  ApexResult result = exec.run(1.0);

  EXPECT_EQ(result.worker_restarts, 0);
  EXPECT_GE(result.sample_tasks, 1);  // the pre-crash task landed
  EXPECT_GE(result.seconds, 1.0);     // ran to the deadline, no early abort
  EXPECT_GT(exec.metrics().counter("supervisor.gave_up"), 0);
}

// Straggler handling: heavy injected delays plus a tight task deadline force
// the timeout/reissue path; the run must still complete and collect data.
TEST(ApexChaosTest, StragglerTimeoutsReissueTasks) {
  ApexConfig cfg;
  cfg.agent_config = chaos_agent_config();
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_workers = 2;
  cfg.envs_per_worker = 2;
  cfg.num_replay_shards = 1;
  cfg.worker_sample_size = 40;
  cfg.min_shard_records = 32;
  cfg.learner_updates = false;
  cfg.enable_fault_injection = true;
  cfg.fault_config.delay_prob = 0.5;
  cfg.fault_config.delay_min_ms = 300.0 * kTimeScale;
  cfg.fault_config.delay_max_ms = 400.0 * kTimeScale;
  cfg.fault_config.warmup_tasks = 1;
  cfg.fault_config.seed = 23;
  cfg.supervisor = fast_supervisor();
  cfg.task_timeout_ms = 100.0 * kTimeScale;
  cfg.max_task_retries = 3;

  ApexExecutor exec(cfg);
  ApexResult result = exec.run(2.0 * kTimeScale);

  EXPECT_GT(result.env_frames, 0);
  EXPECT_GT(result.task_timeouts, 0);
  EXPECT_EQ(exec.metrics().counter("apex.task_timeouts"),
            result.task_timeouts);
}

TEST(ImpalaChaosTest, ActorCrashesAreRestartedInThread) {
  ImpalaConfig cfg;
  cfg.agent_config = Json::parse(R"({
    "network": [{"type": "dense", "units": 16, "activation": "relu"}],
    "rollout_length": 8, "discount": 0.95,
    "optimizer": {"type": "adam", "learning_rate": 0.001}
  })");
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_actors = 2;
  cfg.envs_per_actor = 2;
  cfg.queue_capacity = 4;
  cfg.enable_fault_injection = true;
  cfg.fault_config.crash_after_tasks = 3;  // every actor crashes once
  cfg.fault_config.task_failure_prob = 0.05;
  cfg.fault_config.seed = 31;
  cfg.supervisor = fast_supervisor();

  ImpalaPipeline pipeline(cfg);
  ImpalaResult result = pipeline.run(2.0);

  EXPECT_GE(result.actor_restarts, 1);
  EXPECT_GT(result.env_frames, 20);
  EXPECT_GT(result.learner_updates, 0);
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

// All IMPALA producers die permanently before producing anything: the queue
// closes, the learner notices starvation, and run() returns far before the
// (generous) deadline instead of blocking on an empty queue.
TEST(ImpalaChaosTest, TotalActorLossDoesNotHangLearner) {
  ImpalaConfig cfg;
  cfg.agent_config = Json::parse(R"({
    "network": [{"type": "dense", "units": 16, "activation": "relu"}],
    "rollout_length": 8, "discount": 0.95,
    "optimizer": {"type": "adam", "learning_rate": 0.001}
  })");
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_actors = 2;
  cfg.envs_per_actor = 2;
  cfg.queue_capacity = 4;
  cfg.enable_fault_injection = true;
  cfg.fault_config.crash_after_tasks = 0;  // die before the first rollout
  cfg.fault_config.seed = 5;
  cfg.supervisor = fast_supervisor();
  cfg.supervisor.max_restarts_per_worker = 0;

  ImpalaPipeline pipeline(cfg);
  Stopwatch watch;
  ImpalaResult result = pipeline.run(20.0);

  EXPECT_LT(watch.elapsed_seconds(), 15.0);  // returned early, no hang
  EXPECT_EQ(result.actor_restarts, 0);
  EXPECT_GT(pipeline.metrics().counter("impala.learner_starved") +
                pipeline.metrics().counter("impala.actors_given_up"),
            0);
}

}  // namespace
}  // namespace rlgraph
