// Tests for the component-graph core: composition, API registration, the
// three build phases, the input-completeness barrier, scoping/devices, and
// the split-API option.
#include <gtest/gtest.h>

#include "core/build_context.h"
#include "spaces/nested.h"
#include "core/graph_executor.h"

namespace rlgraph {
namespace {

// A minimal component: y = x * scale + bias, with "bias" created from the
// input space behind the barrier.
class ScaleComponent : public Component {
 public:
  ScaleComponent(std::string name, float scale)
      : Component(std::move(name)), scale_(scale) {
    require_input_spaces({"apply"});
    register_api("apply",
                 [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                   return graph_fn(
                       ctx, "scale",
                       [this](OpContext& ops, const std::vector<OpRef>& in) {
                         OpRef scaled =
                             ops.mul(in[0], ops.scalar(scale_));
                         OpRef bias = ops.variable(scope() + "/bias");
                         return std::vector<OpRef>{ops.add(scaled, bias)};
                       },
                       inputs);
                 });
  }

  void create_variables(BuildContext& ctx) override {
    const auto& box =
        static_cast<const BoxSpace&>(*api_input_spaces("apply")[0]);
    create_var(ctx, "bias",
               Tensor::zeros(DType::kFloat32, box.value_shape()));
    ++create_variables_calls;
  }

  int create_variables_calls = 0;

 private:
  float scale_;
};

TEST(ComponentTest, CompositionAndScopes) {
  auto root = std::make_shared<Component>("root");
  auto* a = root->add_component(std::make_shared<Component>("a"));
  auto* b = a->add_component(std::make_shared<Component>("b"));
  EXPECT_EQ(root->scope(), "root");
  EXPECT_EQ(a->scope(), "root/a");
  EXPECT_EQ(b->scope(), "root/a/b");
  EXPECT_EQ(root->component_count(), 3);
  EXPECT_THROW(root->add_component(std::make_shared<Component>("a")),
               ValueError);
  EXPECT_THROW(Component("bad/name"), ValueError);
}

TEST(ComponentTest, ComponentsCannotBeReparented) {
  auto child = std::make_shared<Component>("c");
  Component p1("p1"), p2("p2");
  p1.add_component(child);
  EXPECT_THROW(p2.add_component(child), ValueError);
}

TEST(ComponentTest, ApiRegistrationAndUnknownApi) {
  Component c("c");
  c.register_api("f", [](BuildContext&, const OpRecs&) { return OpRecs{}; });
  EXPECT_TRUE(c.has_api("f"));
  EXPECT_THROW(
      c.register_api("f",
                     [](BuildContext&, const OpRecs&) { return OpRecs{}; }),
      ValueError);
  BuildContext ctx(nullptr, BuildMode::kAssemble);
  EXPECT_THROW(c.call_api(ctx, "missing", {}), NotFoundError);
}

TEST(ComponentTest, BuildCreatesVariablesOnce) {
  auto root = std::make_shared<Component>("root");
  auto scale = std::make_shared<ScaleComponent>("scaler", 2.0f);
  auto* scale_raw = root->add_component(scale);
  root->register_api("run",
                     [scale_raw](BuildContext& ctx, const OpRecs& inputs) {
                       // Two calls through the same component.
                       OpRecs once = scale_raw->call_api(ctx, "apply", inputs);
                       return scale_raw->call_api(ctx, "apply", once);
                     });
  GraphExecutor exec(root,
                     {{"run", {FloatBox(Shape{2})->with_batch_rank()}}});
  exec.build();
  EXPECT_EQ(scale_raw->create_variables_calls, 1);
  EXPECT_TRUE(scale_raw->built());
  EXPECT_TRUE(exec.variables().exists("root/scaler/bias"));
  auto out =
      exec.execute("run", {Tensor::from_floats(Shape{1, 2}, {1.0f, 3.0f})});
  EXPECT_EQ(out[0].to_floats(), (std::vector<float>{4.0f, 12.0f}));
}

// A component whose variables depend on another API's spaces.
class DependentComponent : public Component {
 public:
  explicit DependentComponent(std::string name) : Component(std::move(name)) {
    require_input_spaces({"set_spaces"});
    register_api("set_spaces",
                 [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                   return graph_fn(
                       ctx, "store",
                       [](OpContext& ops, const std::vector<OpRef>& in) {
                         return std::vector<OpRef>{ops.identity(in[0])};
                       },
                       inputs);
                 });
    register_api("read_var",
                 [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                   return graph_fn(
                       ctx, "read",
                       [this](OpContext& ops, const std::vector<OpRef>&) {
                         return std::vector<OpRef>{
                             ops.variable(scope() + "/v")};
                       },
                       inputs);
                 });
  }
  void create_variables(BuildContext& ctx) override {
    const auto& box =
        static_cast<const BoxSpace&>(*api_input_spaces("set_spaces")[0]);
    create_var(ctx, "v", Tensor::zeros(DType::kFloat32, box.value_shape()));
  }
};

TEST(ComponentTest, DeferralRetriesUntilComplete) {
  auto root = std::make_shared<Component>("root");
  auto* dep = root->add_component(std::make_shared<DependentComponent>("d"));
  // "a_read" sorts before "b_feed": the first build round must defer it
  // (the paper's iterative build behaviour).
  root->register_api("a_read", [dep](BuildContext& ctx, const OpRecs& in) {
    return dep->call_api(ctx, "read_var", in);
  });
  root->register_api("b_feed", [dep](BuildContext& ctx, const OpRecs& in) {
    return dep->call_api(ctx, "set_spaces", in);
  });
  GraphExecutor exec(root,
                     {{"a_read", {}},
                      {"b_feed", {FloatBox(Shape{4})->with_batch_rank()}}});
  exec.build();
  EXPECT_EQ(exec.stats().build_iterations, 2);
  auto out = exec.execute("a_read", {});
  EXPECT_EQ(out[0].shape(), (Shape{4}));
}

TEST(ComponentTest, UnresolvableDependencyIsAConstraintViolation) {
  auto root = std::make_shared<Component>("root");
  auto* dep = root->add_component(std::make_shared<DependentComponent>("d"));
  // Nothing ever calls set_spaces: the build must fail with a clear error.
  root->register_api("read", [dep](BuildContext& ctx, const OpRecs& in) {
    return dep->call_api(ctx, "read_var", in);
  });
  GraphExecutor exec(root, {{"read", {}}});
  EXPECT_THROW(exec.build(), BuildError);
}

TEST(ComponentTest, MetaGraphRecordsEdgesAndArity) {
  auto root = std::make_shared<Component>("root");
  auto* s = root->add_component(std::make_shared<ScaleComponent>("s", 1.0f));
  root->register_api("run", [s](BuildContext& ctx, const OpRecs& in) {
    return s->call_api(ctx, "apply", in);
  });
  GraphExecutor exec(root, {{"run", {FloatBox(Shape{1})->with_batch_rank()}}});
  exec.build();
  const MetaGraph& meta = exec.meta_graph();
  EXPECT_EQ(meta.num_components, 2);
  EXPECT_EQ(meta.api_output_arity.at("run"), 1);
  bool found_edge = false;
  for (const auto& e : meta.edges) {
    if (e.callee == "root/s" && e.method == "apply") found_edge = true;
  }
  EXPECT_TRUE(found_edge);
  EXPECT_FALSE(meta.to_dot().empty());
}

TEST(ComponentTest, DeviceAssignmentsReachNodes) {
  auto root = std::make_shared<Component>("root");
  auto scale = std::make_shared<ScaleComponent>("s", 1.0f);
  scale->set_device("/gpu:1");
  auto* s = root->add_component(scale);
  root->register_api("run", [s](BuildContext& ctx, const OpRecs& in) {
    return s->call_api(ctx, "apply", in);
  });
  ExecutorOptions opts;
  opts.optimize = false;
  GraphExecutor exec(root, {{"run", {FloatBox(Shape{1})->with_batch_rank()}}},
                     opts);
  exec.build();
  std::string dump = exec.graph_dump();
  EXPECT_NE(dump.find("@/gpu:1"), std::string::npos);
  EXPECT_NE(dump.find("@/cpu:0"), std::string::npos);
}

TEST(ComponentTest, ScopedNodeNames) {
  auto root = std::make_shared<Component>("agent");
  auto* s = root->add_component(std::make_shared<ScaleComponent>("sc", 1.0f));
  root->register_api("run", [s](BuildContext& ctx, const OpRecs& in) {
    return s->call_api(ctx, "apply", in);
  });
  ExecutorOptions opts;
  opts.optimize = false;
  GraphExecutor exec(root, {{"run", {FloatBox(Shape{1})->with_batch_rank()}}},
                     opts);
  exec.build();
  EXPECT_NE(exec.graph_dump().find("agent/sc/Mul"), std::string::npos);
}

TEST(ComponentTest, SplitApiCallsPerLeaf) {
  // observe-style API with split=true: one call per container leaf.
  auto root = std::make_shared<Component>("root");
  root->register_api(
      "observe",
      [root_raw = root.get()](BuildContext& ctx,
                              const OpRecs& inputs) -> OpRecs {
        return root_raw->graph_fn(
            ctx, "insert",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              return std::vector<OpRef>{ops.reduce_sum(in[0])};
            },
            inputs);
      },
      /*split_inputs=*/true);
  SpacePtr records = Dict({{"a", FloatBox(Shape{2})},
                           {"b", FloatBox(Shape{3})}})
                         ->with_batch_rank();
  GraphExecutor exec(root, {{"observe", {records}}});
  exec.build();
  Rng rng(1);
  NestedTensor sample = records->sample(rng, 2);
  std::vector<Tensor> leaves;
  for (auto& [path, t] : sample.flatten()) leaves.push_back(t);
  auto out = exec.execute("observe", leaves);
  // One output leaf per input leaf, merged into a container record.
  EXPECT_EQ(out.size(), 2u);
}

TEST(ComponentTest, GraphFnRejectsContainerRecords) {
  auto root = std::make_shared<Component>("root");
  root->register_api("f", [root_raw = root.get()](BuildContext& ctx,
                                                  const OpRecs& inputs) {
    return root_raw->graph_fn(
        ctx, "body",
        [](OpContext&, const std::vector<OpRef>& in) {
          return std::vector<OpRef>{in[0]};
        },
        inputs);
  });
  SpacePtr dict = Dict({{"a", FloatBox()}, {"b", FloatBox()}})
                      ->with_batch_rank();
  GraphExecutor exec(root, {{"f", {dict}}});
  EXPECT_THROW(exec.build(), ValueError);
}

TEST(ComponentTest, OutputArityMismatchDetected) {
  auto root = std::make_shared<Component>("root");
  root->register_api("f", [root_raw = root.get()](BuildContext& ctx,
                                                  const OpRecs& inputs) {
    return root_raw->graph_fn(
        ctx, "body",
        [](OpContext&, const std::vector<OpRef>& in) {
          return std::vector<OpRef>{in[0], in[0]};  // declares 1, returns 2
        },
        inputs, /*num_outputs=*/1);
  });
  GraphExecutor exec(root, {{"f", {FloatBox()->with_batch_rank()}}});
  EXPECT_THROW(exec.build(), ValueError);
}

TEST(ComponentTest, VariableNamesRecursive) {
  auto root = std::make_shared<Component>("root");
  auto* a = root->add_component(std::make_shared<ScaleComponent>("a", 1.0f));
  auto* b = root->add_component(std::make_shared<ScaleComponent>("b", 1.0f));
  root->register_api("run", [a, b](BuildContext& ctx, const OpRecs& in) {
    return b->call_api(ctx, "apply", a->call_api(ctx, "apply", in));
  });
  GraphExecutor exec(root, {{"run", {FloatBox(Shape{2})->with_batch_rank()}}});
  exec.build();
  auto names = root->variable_names_recursive();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "root/a/bias");
  EXPECT_EQ(names[1], "root/b/bias");
}

}  // namespace
}  // namespace rlgraph
