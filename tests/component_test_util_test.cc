// Tests for ComponentTest — the sub-graph testing utility of paper §3.3 /
// Listing 1, reproduced here: build a Policy for declared state/action
// spaces and call its API with sampled inputs.
#include <gtest/gtest.h>

#include "components/memories.h"
#include "components/policy.h"
#include "core/component_test.h"
#include "spaces/nested.h"

namespace rlgraph {
namespace {

TEST(ComponentTestUtil, ListingOnePolicySubGraph) {
  // state_space = FloatBox(shape=(64,), add_batch_rank=True)
  SpacePtr state_space = FloatBox(Shape{64})->with_batch_rank();
  SpacePtr action_space = IntBox(4);
  Json network = Json::parse(
      R"([{"type": "dense", "units": 16, "activation": "tanh"}])");
  auto policy = std::make_shared<Policy>("policy", network, action_space,
                                         PolicyHead::kQValues);
  // Construct sub graph from spaces, auto-gen placeholders.
  ComponentTest test(policy, {{"get_q_values", {state_space}},
                              {"get_action", {state_space}}});
  // Test with any inputs in the input space.
  auto q = test.test_with_sampled_inputs("get_q_values", /*batch=*/5);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].shape(), (Shape{5, 4}));
  auto action = test.test_with_sampled_inputs("get_action", /*batch=*/5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(action[0].data<int32_t>()[i], 0);
    EXPECT_LT(action[0].data<int32_t>()[i], 4);
  }
}

TEST(ComponentTestUtil, SingleMemoryComponent) {
  // Build a single prioritized-replay component in isolation — the paper's
  // modular performance testing / debugging scenario (Fig. 5a's "single
  // memory component").
  auto memory = std::make_shared<PrioritizedReplay>("memory", 64);
  SpacePtr record = Tuple({FloatBox(Shape{3}), IntBox(2)})->with_batch_rank();
  SpacePtr prios = FloatBox()->with_batch_rank();
  auto root = std::make_shared<Component>("test-root");
  auto* mem = root->add_component(memory);
  root->register_api("insert", [mem](BuildContext& ctx, const OpRecs& in) {
    return mem->call_api(ctx, "insert_records", in);
  });
  root->register_api("sample", [mem](BuildContext& ctx, const OpRecs& in) {
    return mem->call_api(ctx, "get_records", in);
  });
  ComponentTest test(root, {{"insert", {record, prios}},
                            {"sample", {IntBox(1 << 30)}}});
  // Insert a sampled batch of records.
  Rng& rng = test.rng();
  NestedTensor records = record->sample(rng, 4);
  std::vector<Tensor> inputs;
  for (auto& [p, t] : records.flatten()) inputs.push_back(t);
  inputs.push_back(Tensor::filled(DType::kFloat32, Shape{4}, 1.0));
  test.test("insert", inputs);
  // Sample back: 2 record leaves + indices + weights.
  auto out = test.expect_outputs("sample", {Tensor::scalar_int(2)}, 4);
  EXPECT_EQ(out[0].shape(), (Shape{2, 3}));
  EXPECT_EQ(out[1].shape(), (Shape{2}));
}

TEST(ComponentTestUtil, WorksOnBothBackends) {
  SpacePtr state_space = FloatBox(Shape{8})->with_batch_rank();
  Json network = Json::parse(R"([{"type": "dense", "units": 4}])");
  for (Backend backend : {Backend::kStatic, Backend::kImperative}) {
    auto policy = std::make_shared<Policy>("policy", network, IntBox(3),
                                           PolicyHead::kDuelingQ);
    ExecutorOptions opts;
    opts.backend = backend;
    ComponentTest test(policy, {{"get_q_values", {state_space}}}, opts);
    auto out = test.test_with_sampled_inputs("get_q_values", 3);
    EXPECT_EQ(out[0].shape(), (Shape{3, 3}));
  }
}

TEST(ComponentTestUtil, UnknownApiThrows) {
  auto policy = std::make_shared<Policy>(
      "policy", Json::parse(R"([{"type": "dense", "units": 4}])"), IntBox(2),
      PolicyHead::kQValues);
  ComponentTest test(policy,
                     {{"get_q_values", {FloatBox(Shape{4})->with_batch_rank()}}});
  EXPECT_THROW(test.test("nope", {}), NotFoundError);
  EXPECT_THROW(test.test_with_sampled_inputs("get_action"), ValueError);
}

}  // namespace
}  // namespace rlgraph
