// Tests for the remaining component library pieces: queue + staging area,
// synchronizer, splitter/merger wiring, the graph-fused EnvStepper, and the
// build-mode guarantee that stateful kernels never execute during builds.
#include <gtest/gtest.h>

#include <thread>

#include "agents/impala_agent.h"
#include "components/queue_staging.h"
#include "components/synchronizer.h"
#include "core/component_test.h"
#include "env/grid_world.h"
#include "env/vector_env.h"
#include "spaces/nested.h"

namespace rlgraph {
namespace {

// --- QueueComponent -----------------------------------------------------------

class QueueFixture {
 public:
  explicit QueueFixture(size_t capacity)
      : queue_(std::make_shared<SharedTensorQueue>(capacity)) {
    std::vector<SpacePtr> slot{FloatBox(Shape{2})->with_batch_rank(),
                               IntBox(4)->with_batch_rank()};
    auto root = std::make_shared<Component>("root");
    auto* q = root->add_component(
        std::make_shared<QueueComponent>("queue", queue_, slot));
    root->register_api("enqueue", [q](BuildContext& ctx, const OpRecs& in) {
      return q->call_api(ctx, "enqueue", in);
    });
    root->register_api("dequeue", [q](BuildContext& ctx, const OpRecs& in) {
      return q->call_api(ctx, "dequeue", in);
    });
    test_ = std::make_unique<ComponentTest>(
        root, std::map<std::string, std::vector<SpacePtr>>{
                  {"enqueue", slot}, {"dequeue", {}}});
  }

  std::shared_ptr<SharedTensorQueue> queue_;
  std::unique_ptr<ComponentTest> test_;
};

TEST(QueueComponentTest, EnqueueDequeueRoundTrip) {
  QueueFixture fix(4);
  Tensor a = Tensor::from_floats(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_ints(Shape{3}, {0, 1, 2});
  fix.test_->test("enqueue", {a, b});
  EXPECT_EQ(fix.queue_->size(), 1u);
  auto out = fix.test_->test("dequeue", {});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].equals(a));
  EXPECT_TRUE(out[1].equals(b));
  EXPECT_EQ(fix.queue_->size(), 0u);
}

TEST(QueueComponentTest, FifoAcrossGraphCalls) {
  QueueFixture fix(4);
  for (int i = 0; i < 3; ++i) {
    fix.test_->test("enqueue",
                    {Tensor::filled(DType::kFloat32, Shape{1, 2}, i),
                     Tensor::from_ints(Shape{1}, {i})});
  }
  for (int i = 0; i < 3; ++i) {
    auto out = fix.test_->test("dequeue", {});
    EXPECT_EQ(out[1].to_ints()[0], i);
  }
}

TEST(QueueComponentTest, BoundedQueueBlocksProducer) {
  QueueFixture fix(1);
  Tensor a = Tensor::zeros(DType::kFloat32, Shape{1, 2});
  Tensor b = Tensor::from_ints(Shape{1}, {0});
  fix.test_->test("enqueue", {a, b});
  std::atomic<bool> second_done{false};
  std::thread producer([&] {
    // Raw queue push from another thread (components are per-graph, but the
    // queue object is shared) — blocks until the consumer drains.
    fix.queue_->push({a, b});
    second_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_done.load());
  fix.test_->test("dequeue", {});
  producer.join();
  EXPECT_TRUE(second_done.load());
}

// --- StagingArea -----------------------------------------------------------------

TEST(StagingAreaTest, ReturnsPreviousBatch) {
  std::vector<SpacePtr> slot{FloatBox(Shape{2})->with_batch_rank()};
  auto root = std::make_shared<Component>("root");
  auto* stage =
      root->add_component(std::make_shared<StagingArea>("staging", slot));
  root->register_api("stage", [stage](BuildContext& ctx, const OpRecs& in) {
    return stage->call_api(ctx, "stage_and_get", in);
  });
  ComponentTest test(root, {{"stage", slot}});
  Tensor first = Tensor::from_floats(Shape{1, 2}, {1, 2});
  Tensor second = Tensor::from_floats(Shape{1, 2}, {3, 4});
  // First call returns zeros (nothing staged yet).
  Tensor out0 = test.test("stage", {first})[0];
  for (int64_t i = 0; i < out0.num_elements(); ++i) {
    EXPECT_DOUBLE_EQ(out0.at_flat(i), 0.0);
  }
  // Second call returns the first batch (one-step pipeline delay).
  Tensor out1 = test.test("stage", {second})[0];
  EXPECT_TRUE(out1.equals(first));
  Tensor out2 = test.test("stage", {first})[0];
  EXPECT_TRUE(out2.equals(second));
}

// --- Synchronizer ------------------------------------------------------------------

TEST(SynchronizerTest, CopiesMatchingPrefixes) {
  auto root = std::make_shared<Component>("root");
  auto* sync = root->add_component(
      std::make_shared<Synchronizer>("sync", "root/src", "root/dst"));
  root->register_api("sync", [sync](BuildContext& ctx, const OpRecs& in) {
    return sync->call_api(ctx, "sync", in);
  });
  ComponentTest test(root, {{"sync", {}}});
  VariableStore& vars = test.executor().variables();
  vars.create("root/src/w", Tensor::from_floats(Shape{2}, {1, 2}));
  vars.create("root/dst/w", Tensor::zeros(DType::kFloat32, Shape{2}));
  vars.create("root/other/w", Tensor::from_floats(Shape{2}, {9, 9}));
  Tensor copied = test.test("sync", {})[0];
  EXPECT_EQ(copied.to_ints()[0], 1);
  EXPECT_TRUE(vars.get("root/dst/w").equals(vars.get("root/src/w")));
  // Unrelated variables untouched.
  EXPECT_FLOAT_EQ(vars.get("root/other/w").data<float>()[0], 9.0f);
}

TEST(SynchronizerTest, NoMatchingVariablesIsAnError) {
  auto root = std::make_shared<Component>("root");
  auto* sync = root->add_component(
      std::make_shared<Synchronizer>("sync", "root/nope", "root/alsono"));
  root->register_api("sync", [sync](BuildContext& ctx, const OpRecs& in) {
    return sync->call_api(ctx, "sync", in);
  });
  ComponentTest test(root, {{"sync", {}}});
  EXPECT_THROW(test.test("sync", {}), ValueError);
}

// --- Build-mode semantics -------------------------------------------------------

TEST(BuildModeTest, StatefulKernelsDoNotRunDuringBuild) {
  // A counting custom kernel must not execute while the (define-by-run)
  // build pushes artificial tensors through the graph (paper §4.2), only
  // at real execution time.
  int executions = 0;
  auto root = std::make_shared<Component>("root");
  root->register_api(
      "f", [root_raw = root.get(), &executions](BuildContext& ctx,
                                                const OpRecs& in) {
        CustomKernel kernel = [&executions](const std::vector<Tensor>& args) {
          ++executions;
          return std::vector<Tensor>{args[0]};
        };
        return root_raw->graph_fn_custom(ctx, "count", kernel, in,
                                         {FloatBox()->with_batch_rank()});
      });
  ExecutorOptions opts;
  opts.backend = Backend::kImperative;
  GraphExecutor exec(root, {{"f", {FloatBox()->with_batch_rank()}}}, opts);
  exec.build();
  EXPECT_EQ(executions, 0);  // build fabricated outputs instead
  exec.execute("f", {Tensor::from_floats(Shape{2}, {1, 2})});
  EXPECT_EQ(executions, 1);
}

TEST(BuildModeTest, StaticBuildNeverExecutesKernels) {
  int executions = 0;
  auto root = std::make_shared<Component>("root");
  root->register_api(
      "f", [root_raw = root.get(), &executions](BuildContext& ctx,
                                                const OpRecs& in) {
        CustomKernel kernel = [&executions](const std::vector<Tensor>& args) {
          ++executions;
          return std::vector<Tensor>{args[0]};
        };
        return root_raw->graph_fn_custom(ctx, "count", kernel, in,
                                         {FloatBox()->with_batch_rank()});
      });
  GraphExecutor exec(root, {{"f", {FloatBox()->with_batch_rank()}}});
  exec.build();
  EXPECT_EQ(executions, 0);  // only symbolic nodes were created
  exec.execute("f", {Tensor::from_floats(Shape{2}, {1, 2})});
  EXPECT_EQ(executions, 1);
}

// --- EnvStepper ---------------------------------------------------------------------

TEST(EnvStepperTest, FusedRolloutShapesAndAccounting) {
  Json env_spec;
  env_spec["type"] = Json("grid_world");
  VectorEnv env(env_spec, 3, 5);
  auto context = std::make_shared<RolloutContext>();
  context->env = &env;
  // A scripted policy: always action 1, logits all zeros.
  context->act = [](const Tensor& obs) {
    int64_t e = obs.shape().dim(0);
    return std::make_pair(
        Tensor::filled(DType::kInt32, Shape{e}, 1.0),
        Tensor::zeros(DType::kFloat32, Shape{e, 4}));
  };
  auto root = std::make_shared<Component>("root");
  auto* stepper = root->add_component(std::make_shared<EnvStepper>(
      "stepper", context, env.state_space(), /*rollout_length=*/6,
      /*num_actions=*/4));
  root->register_api("rollout",
                     [stepper](BuildContext& ctx, const OpRecs& in) {
                       return stepper->call_api(ctx, "step_rollout", in);
                     });
  ComponentTest test(root, {{"rollout", {}}});
  auto out = test.test("rollout", {});
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].shape(), (Shape{3, 7, 16}));  // states incl. bootstrap
  EXPECT_EQ(out[1].shape(), (Shape{3, 6, 4}));   // behavior logits
  EXPECT_EQ(out[2].shape(), (Shape{3, 6}));      // actions
  EXPECT_EQ(out[3].shape(), (Shape{3, 6}));      // rewards
  EXPECT_EQ(out[4].shape(), (Shape{3, 6}));      // terminals
  EXPECT_EQ(context->env_frames, 3 * 6);
  // Actions recorded are the scripted ones.
  for (int64_t i = 0; i < out[2].num_elements(); ++i) {
    EXPECT_EQ(out[2].to_ints()[static_cast<size_t>(i)], 1);
  }
  // States time-major consistency: rollout states at t+1 equal next obs of
  // step t — cheap proxy: the first state row equals the env reset obs.
  EXPECT_EQ(context->env_frames, env.total_env_frames());
}

TEST(EnvStepperTest, UnattachedStepperFailsClearly) {
  auto context = std::make_shared<RolloutContext>();
  auto root = std::make_shared<Component>("root");
  auto* stepper = root->add_component(std::make_shared<EnvStepper>(
      "stepper", context, FloatBox(Shape{4}), 3, 2));
  root->register_api("rollout",
                     [stepper](BuildContext& ctx, const OpRecs& in) {
                       return stepper->call_api(ctx, "step_rollout", in);
                     });
  ComponentTest test(root, {{"rollout", {}}});
  EXPECT_THROW(test.test("rollout", {}), ValueError);
}

}  // namespace
}  // namespace rlgraph
