// Serving control plane: tenant admission quotas, DRR fair queueing,
// canary rollout with automatic rollback, and the open-loop load harness.
//
// Unit layers (token bucket, batcher DRR, canary state machine, routing
// hash) are tested deterministically — synthetic timestamps, explicit
// request ids, no RNG. The end-to-end scenarios (hot tenant at 10x quota,
// canary auto-rollback with zero collateral failures) drive a real
// PolicyServer through the bench/ open-loop harness.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "load_harness.h"
#include "serve/batcher.h"
#include "serve/canary.h"
#include "serve/policy_server.h"
#include "serve/tenant.h"

namespace rlgraph {
namespace {

using namespace std::chrono_literals;
using serve::ActOptions;
using serve::ActRequest;
using serve::ActResult;
using serve::BatcherConfig;
using serve::CanaryConfig;
using serve::CanaryController;
using serve::CanaryState;
using serve::DynamicBatcher;
using serve::PolicyServer;
using serve::PolicyServerConfig;
using serve::PolicySnapshot;
using serve::RouteKind;
using serve::ServeClock;
using serve::TenantConfig;
using serve::TenantRegistry;

Tensor obs1(float v) { return Tensor::from_floats(Shape{1}, {v}); }

// --- TenantRegistry token buckets --------------------------------------------

TEST(TenantRegistryTest, TokenBucketAdmitsBurstThenRefillsAtQuota) {
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.quota_qps = 10.0;
  cfg.burst = 5.0;
  reg.register_tenant("t", cfg);

  const ServeClock::time_point t0 = ServeClock::now();
  // The bucket starts full: exactly `burst` admissions at one instant.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(reg.try_admit("t", t0)) << "burst admission " << i;
  }
  EXPECT_FALSE(reg.try_admit("t", t0)) << "6th admission at t0 over burst";

  // 100ms at 10 qps = exactly one token back.
  EXPECT_TRUE(reg.try_admit("t", t0 + 100ms));
  EXPECT_FALSE(reg.try_admit("t", t0 + 100ms));

  // A long idle period refills to burst, never beyond.
  const ServeClock::time_point later = t0 + 10s;
  EXPECT_DOUBLE_EQ(reg.tokens("t", later), 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(reg.try_admit("t", later));
  EXPECT_FALSE(reg.try_admit("t", later));
}

TEST(TenantRegistryTest, UnlimitedAndDefaultTenantsAlwaysAdmit) {
  TenantRegistry reg;
  const ServeClock::time_point t0 = ServeClock::now();
  // Unregistered tenants inherit the default (unlimited) config.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(reg.try_admit("unknown", t0));
  }
  // An explicit default config applies to every unregistered tenant.
  TenantConfig limited;
  limited.quota_qps = 1.0;
  limited.burst = 2.0;
  reg.set_default_config(limited);
  EXPECT_TRUE(reg.try_admit("fresh", t0));
  EXPECT_TRUE(reg.try_admit("fresh", t0));
  EXPECT_FALSE(reg.try_admit("fresh", t0));
}

// --- DynamicBatcher: layered admission + DRR ---------------------------------

TEST(BatcherControlPlaneTest, TenantQuotaShedsAreTenantScoped) {
  MetricRegistry metrics;
  TenantRegistry tenants;
  TenantConfig cfg;
  cfg.quota_qps = 1.0;
  cfg.burst = 2.0;
  tenants.register_tenant("limited", cfg);

  BatcherConfig bcfg;
  bcfg.max_batch_size = 8;
  DynamicBatcher batcher(bcfg, &metrics, &tenants);

  auto f1 = batcher.submit(obs1(1), serve::kNoDeadline,
                           serve::Precision::kFp32, "limited", 1);
  auto f2 = batcher.submit(obs1(2), serve::kNoDeadline,
                           serve::Precision::kFp32, "limited", 2);
  try {
    (void)batcher.submit(obs1(3), serve::kNoDeadline,
                         serve::Precision::kFp32, "limited", 3);
    FAIL() << "3rd submit at one instant should exceed burst 2";
  } catch (const OverloadedError& e) {
    EXPECT_EQ(e.scope(), OverloadedError::Scope::kTenant);
    EXPECT_EQ(e.tenant(), "limited");
    EXPECT_NE(std::string(e.what()).find("quota"), std::string::npos);
  }
  // The shed is split by reason and by tenant; other tenants are untouched.
  EXPECT_EQ(metrics.counter("serve/shed_total{reason=tenant_quota}"), 1);
  EXPECT_EQ(metrics.counter("serve/tenant_shed{tenant=limited}"), 1);
  auto f3 = batcher.submit(obs1(4), serve::kNoDeadline,
                           serve::Precision::kFp32, "other", 4);
  EXPECT_EQ(batcher.pending(), 3u);
  batcher.close();
  batcher.shed_all("test over");
  (void)f1;
  (void)f2;
  (void)f3;
}

TEST(BatcherControlPlaneTest, TenantQueueBoundCarriesDepthAndCapacity) {
  MetricRegistry metrics;
  BatcherConfig bcfg;
  bcfg.max_batch_size = 64;
  bcfg.queue_capacity = 100;
  bcfg.tenant_queue_capacity = 3;  // per-tenant backlog allowance
  DynamicBatcher batcher(bcfg, &metrics, nullptr);

  std::vector<std::future<ActResult>> futs;
  for (int i = 0; i < 3; ++i) {
    futs.push_back(batcher.submit(obs1(float(i)), serve::kNoDeadline,
                                  serve::Precision::kFp32, "spammer", 0));
  }
  try {
    (void)batcher.submit(obs1(9), serve::kNoDeadline,
                         serve::Precision::kFp32, "spammer", 0);
    FAIL() << "4th queued request should exceed the per-tenant bound";
  } catch (const OverloadedError& e) {
    EXPECT_EQ(e.scope(), OverloadedError::Scope::kTenant);
    EXPECT_EQ(e.tenant(), "spammer");
    // The message names the observed depth and the configured capacity.
    EXPECT_NE(std::string(e.what()).find("3/3"), std::string::npos);
  }
  EXPECT_EQ(metrics.counter("serve/shed_total{reason=tenant_queue}"), 1);
  // Another tenant still has the global queue to itself.
  futs.push_back(batcher.submit(obs1(5), serve::kNoDeadline,
                                serve::Precision::kFp32, "quiet", 0));
  batcher.close();
  batcher.shed_all("test over");
}

TEST(BatcherControlPlaneTest, GlobalBoundIsGlobalScopedWithDepth) {
  MetricRegistry metrics;
  BatcherConfig bcfg;
  bcfg.max_batch_size = 64;
  bcfg.queue_capacity = 2;
  DynamicBatcher batcher(bcfg, &metrics, nullptr);
  auto f1 = batcher.submit(obs1(1));
  auto f2 = batcher.submit(obs1(2));
  try {
    (void)batcher.submit(obs1(3));
    FAIL() << "global capacity 2 should shed the 3rd";
  } catch (const OverloadedError& e) {
    EXPECT_EQ(e.scope(), OverloadedError::Scope::kGlobal);
    EXPECT_NE(std::string(e.what()).find("2/2"), std::string::npos);
  }
  EXPECT_EQ(metrics.counter("serve/shed_total{reason=overload}"), 1);
  EXPECT_EQ(metrics.counter("serve/shed_overload"), 1);  // legacy counter
  batcher.close();
  batcher.shed_all("test over");
}

// A flooding tenant cannot crowd an assembled batch: DRR visits every
// tenant with queued work per round, so the two quiet tenants' requests
// ride in the very first batch despite 10x as many hog requests ahead of
// them in arrival order.
TEST(BatcherControlPlaneTest, DeficitRoundRobinSharesBatchUnderFlood) {
  BatcherConfig bcfg;
  bcfg.max_batch_size = 8;
  bcfg.max_queue_delay = 1ms;
  DynamicBatcher batcher(bcfg, nullptr, nullptr);

  std::vector<std::future<ActResult>> futs;
  for (int i = 0; i < 30; ++i) {
    futs.push_back(batcher.submit(obs1(float(i)), serve::kNoDeadline,
                                  serve::Precision::kFp32, "hog", 0));
  }
  for (int i = 0; i < 3; ++i) {
    futs.push_back(batcher.submit(obs1(100.0f + i), serve::kNoDeadline,
                                  serve::Precision::kFp32, "a", 0));
    futs.push_back(batcher.submit(obs1(200.0f + i), serve::kNoDeadline,
                                  serve::Precision::kFp32, "b", 0));
  }

  std::vector<ActRequest> batch = batcher.next_batch();
  ASSERT_EQ(batch.size(), 8u);
  std::map<std::string, int> per_tenant;
  for (const ActRequest& r : batch) per_tenant[r.tenant]++;
  // Rotation hog,a,b with weight 1 each: hog 3, a 3, b 2 — NOT hog 8.
  EXPECT_GE(per_tenant["a"], 2);
  EXPECT_GE(per_tenant["b"], 2);
  EXPECT_LE(per_tenant["hog"], 4);
  batcher.close();
  batcher.shed_all("test over");
}

TEST(BatcherControlPlaneTest, DrrWeightBuysProportionalBatchShare) {
  TenantRegistry tenants;
  TenantConfig heavy;
  heavy.weight = 3;
  tenants.register_tenant("heavy", heavy);

  BatcherConfig bcfg;
  bcfg.max_batch_size = 8;
  DynamicBatcher batcher(bcfg, nullptr, &tenants);
  std::vector<std::future<ActResult>> futs;
  for (int i = 0; i < 20; ++i) {
    futs.push_back(batcher.submit(obs1(float(i)), serve::kNoDeadline,
                                  serve::Precision::kFp32, "heavy", 0));
    futs.push_back(batcher.submit(obs1(float(i)), serve::kNoDeadline,
                                  serve::Precision::kFp32, "light", 0));
  }
  std::vector<ActRequest> batch = batcher.next_batch();
  ASSERT_EQ(batch.size(), 8u);
  std::map<std::string, int> per_tenant;
  for (const ActRequest& r : batch) per_tenant[r.tenant]++;
  // weight 3 vs 1: heavy places 3 per round to light's 1 -> 6/2 in a batch
  // of 8.
  EXPECT_EQ(per_tenant["heavy"], 6);
  EXPECT_EQ(per_tenant["light"], 2);
  batcher.close();
  batcher.shed_all("test over");
}

TEST(BatcherControlPlaneTest, DeadlineShedsCountUnderDeadlineReason) {
  MetricRegistry metrics;
  BatcherConfig bcfg;
  bcfg.max_batch_size = 4;
  bcfg.max_queue_delay = 1ms;
  DynamicBatcher batcher(bcfg, &metrics, nullptr);
  // Already-expired deadline: shed at dispatch with TimeoutError.
  auto expired = batcher.submit(obs1(1), ServeClock::now() - 1ms);
  auto alive = batcher.submit(obs1(2));
  std::vector<ActRequest> batch = batcher.next_batch();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_THROW(expired.get(), TimeoutError);
  EXPECT_EQ(metrics.counter("serve/shed_total{reason=deadline}"), 1);
  EXPECT_EQ(metrics.counter("serve/shed_deadline"), 1);
  for (ActRequest& r : batch) {
    r.promise.set_value(ActResult{});
  }
  (void)alive;
  batcher.close();
  batcher.shed_all("test over");
}

// --- Canary routing determinism ----------------------------------------------

TEST(CanaryRoutingTest, HashMatchesSplitmix64GoldenVector) {
  // hash_request_id IS splitmix64's output function; its first outputs for
  // state 0 are published test vectors. Pinning one here makes the routing
  // split reproducible across platforms and releases, not merely within a
  // process.
  EXPECT_EQ(CanaryController::hash_request_id(0), 0xE220A8397B1DCDAFULL);
}

TEST(CanaryRoutingTest, RoutingIsAPureFunctionOfRequestId) {
  CanaryConfig cfg;
  cfg.weight = 0.25;
  CanaryController a(cfg), b(cfg);
  a.start(1, 2);
  b.start(1, 2);
  int canary = 0;
  for (uint64_t id = 0; id < 4096; ++id) {
    RouteKind ra = a.route(id);
    // Two independent controllers and repeated calls agree bitwise.
    ASSERT_EQ(ra, b.route(id)) << "id " << id;
    ASSERT_EQ(ra, a.route(id)) << "id " << id;
    if (ra == RouteKind::kCanary) ++canary;
  }
  // The hash split realizes the configured weight closely.
  EXPECT_NEAR(canary / 4096.0, 0.25, 0.03);
  EXPECT_EQ(a.routed_version(7), b.routed_version(7));
}

// --- CanaryController state machine ------------------------------------------

CanaryConfig quick_canary_config() {
  CanaryConfig cfg;
  cfg.weight = 0.5;
  cfg.min_samples = 10;
  cfg.p99_ratio_guardband = 1.5;
  cfg.p99_slack_seconds = 500e-6;
  cfg.error_rate_guardband = 0.02;
  return cfg;
}

void record_n(CanaryController& c, RouteKind side, int n, double latency,
              int errors = 0) {
  for (int i = 0; i < n; ++i) {
    c.record(side, latency, /*error=*/i < errors);
  }
}

TEST(CanaryControllerTest, NoDecisionUntilBothSidesReachMinSamples) {
  CanaryController c(quick_canary_config());
  c.start(1, 2);
  // A terrible canary, but only 9 canary samples: no decision yet.
  record_n(c, RouteKind::kBaseline, 50, 1e-4);
  record_n(c, RouteKind::kCanary, 9, 1.0);
  EXPECT_EQ(c.evaluate(), CanaryState::kCanarying);
  // The 10th canary sample fills the epoch: rollback.
  record_n(c, RouteKind::kCanary, 1, 1.0);
  EXPECT_EQ(c.evaluate(), CanaryState::kRolledBack);
}

TEST(CanaryControllerTest, RollsBackOnP99Regression) {
  MetricRegistry metrics;
  CanaryController c(quick_canary_config(), &metrics);
  c.start(3, 4);
  record_n(c, RouteKind::kBaseline, 40, 1e-4);
  record_n(c, RouteKind::kCanary, 40, 5e-3);  // 50x the baseline p99
  EXPECT_EQ(c.evaluate(), CanaryState::kRolledBack);
  EXPECT_EQ(metrics.counter("serve/canary_rollbacks"), 1);
  EXPECT_EQ(metrics.counter("serve/canary_rollbacks_p99"), 1);
  EXPECT_EQ(metrics.counter("serve/canary_rollbacks_error_rate"), 0);
  EXPECT_DOUBLE_EQ(metrics.gauge("serve/canary_rolled_back"), 1.0);
  // Post-rollback, every request routes to the pinned baseline version.
  for (uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(c.route(id), RouteKind::kBaseline);
    EXPECT_EQ(c.routed_version(id), 3);
  }
  EXPECT_EQ(c.serving_version(/*newest=*/4), 3);
}

TEST(CanaryControllerTest, RollsBackOnErrorRateRegression) {
  MetricRegistry metrics;
  CanaryController c(quick_canary_config(), &metrics);
  c.start(1, 2);
  // Same latency both sides; canary errors 30% vs baseline 0%.
  record_n(c, RouteKind::kBaseline, 40, 1e-4);
  record_n(c, RouteKind::kCanary, 40, 1e-4, /*errors=*/12);
  EXPECT_EQ(c.evaluate(), CanaryState::kRolledBack);
  EXPECT_EQ(metrics.counter("serve/canary_rollbacks_error_rate"), 1);
  CanaryController::EpochStats epoch = c.last_epoch();
  EXPECT_EQ(epoch.canary_count, 40);
  EXPECT_NEAR(epoch.canary_error_rate, 0.3, 1e-9);
  EXPECT_DOUBLE_EQ(epoch.baseline_error_rate, 0.0);
}

TEST(CanaryControllerTest, RollbackLatchesAndDoesNotFlap) {
  CanaryController c(quick_canary_config());
  c.start(1, 2);
  record_n(c, RouteKind::kBaseline, 20, 1e-4);
  record_n(c, RouteKind::kCanary, 20, 1.0);
  ASSERT_EQ(c.evaluate(), CanaryState::kRolledBack);
  // A flood of perfectly healthy traffic cannot un-latch the rollback.
  for (int round = 0; round < 5; ++round) {
    record_n(c, RouteKind::kBaseline, 100, 1e-4);
    record_n(c, RouteKind::kCanary, 100, 1e-4);
    EXPECT_EQ(c.evaluate(), CanaryState::kRolledBack);
    EXPECT_EQ(c.route(uint64_t(round)), RouteKind::kBaseline);
  }
  // Only an explicit new rollout moves the state again.
  c.start(2, 5);
  EXPECT_EQ(c.state(), CanaryState::kCanarying);
}

TEST(CanaryControllerTest, HealthyCanaryPromotesAfterConfiguredSamples) {
  MetricRegistry metrics;
  CanaryConfig cfg = quick_canary_config();
  cfg.promote_after_samples = 30;
  CanaryController c(cfg, &metrics);
  c.start(1, 2);
  for (int round = 0; round < 3; ++round) {
    record_n(c, RouteKind::kBaseline, 15, 1e-4);
    record_n(c, RouteKind::kCanary, 15, 1e-4);
    c.evaluate();
  }
  EXPECT_EQ(c.state(), CanaryState::kPromoted);
  EXPECT_EQ(metrics.counter("serve/canary_promotions"), 1);
  // Promoted: all traffic routes to the candidate; the serving version is
  // the candidate even while newer versions exist.
  EXPECT_EQ(c.route(123), RouteKind::kCanary);
  EXPECT_EQ(c.serving_version(/*newest=*/9), 2);
  c.end();
  EXPECT_EQ(c.state(), CanaryState::kIdle);
  EXPECT_EQ(c.serving_version(/*newest=*/9), 9);
}

TEST(CanaryControllerTest, StaleOutcomesFromPreviousRolloutDoNotLeak) {
  CanaryController c(quick_canary_config());
  c.start(1, 2);
  // A disastrous first rollout...
  record_n(c, RouteKind::kBaseline, 20, 1e-4);
  record_n(c, RouteKind::kCanary, 20, 1.0);
  ASSERT_EQ(c.evaluate(), CanaryState::kRolledBack);
  // ...plus un-consumed garbage recorded after the decision...
  record_n(c, RouteKind::kCanary, 15, 1.0);
  // ...must not poison a NEW candidate's first epoch.
  c.start(1, 3);
  record_n(c, RouteKind::kBaseline, 20, 1e-4);
  record_n(c, RouteKind::kCanary, 20, 1e-4);
  EXPECT_EQ(c.evaluate(), CanaryState::kCanarying);
}

// --- PolicyStore version history ---------------------------------------------

serve::WeightMap weights_v(int64_t v) {
  serve::WeightMap w;
  w["v"] = Tensor::scalar(static_cast<float>(v));
  return w;
}

TEST(PolicyStoreHistoryTest, PinnedVersionsSurviveNewerPublishes) {
  serve::PolicyStore store;
  const int64_t v1 = store.publish(weights_v(1));
  const int64_t v2 = store.publish(weights_v(2));
  EXPECT_EQ(store.version(), v2);

  PolicySnapshot pinned = store.snapshot_version(v1);
  ASSERT_TRUE(pinned.valid());
  EXPECT_EQ(pinned.version, v1);
  EXPECT_FLOAT_EQ(pinned.weights->at("v").scalar_value(), 1.0f);
  EXPECT_EQ(store.history_versions().size(), 2u);

  // Unknown versions are invalid, not fatal.
  EXPECT_FALSE(store.snapshot_version(99).valid());
}

TEST(PolicyStoreHistoryTest, HistoryIsBoundedAndEvictsOldest) {
  serve::PolicyStore store;
  store.set_history_capacity(2);
  const int64_t v1 = store.publish(weights_v(1));
  const int64_t v2 = store.publish(weights_v(2));
  const int64_t v3 = store.publish(weights_v(3));
  EXPECT_FALSE(store.snapshot_version(v1).valid()) << "oldest evicted";
  EXPECT_TRUE(store.snapshot_version(v2).valid());
  EXPECT_TRUE(store.snapshot_version(v3).valid());
}

// --- End to end: fairness under a flooding tenant ----------------------------

// Trivial engine (no agent) so the fairness signal is pure control plane,
// fast enough for the TSAN/ASAN sweeps.
class VersionEchoEngine : public serve::ServingEngine {
 public:
  void load(const PolicySnapshot& snapshot) override {
    version_ = static_cast<int64_t>(snapshot.weights->at("v").scalar_value());
  }
  Tensor forward(const Tensor& obs_batch) override {
    const int64_t n = obs_batch.shape().dim(0);
    std::vector<float> out(static_cast<size_t>(n),
                           static_cast<float>(version_));
    return Tensor::from_floats(Shape{n}, out);
  }

 protected:
  int64_t version_ = 0;
};

// ISSUE acceptance: one tenant offered ~10x its quota, two tenants within
// quota, under the open-loop harness. The hot tenant is shed tenant-scoped
// while the in-quota tenants' attained QPS is unaffected.
TEST(ControlPlaneEndToEndTest, HotTenantIsShedWithoutHarmingOthers) {
  PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = 16;
  cfg.batcher.max_queue_delay = 500us;
  cfg.batcher.queue_capacity = 4096;
  TenantConfig hot;
  hot.quota_qps = 50.0;
  hot.burst = 50.0;
  cfg.tenants["hot"] = hot;

  PolicyServer server([](int) { return std::make_unique<VersionEchoEngine>(); },
                      cfg);
  server.store().publish(weights_v(1));
  server.start();

  bench::LoadConfig load;
  load.observations = {obs1(0.5f)};
  load.duration_seconds = 1.0;
  load.seed = 99;
  load.offered_qps = 700.0;  // hot ~500 (10x quota), a/b ~100 each
  bench::LoadStreamSpec hot_s, a_s, b_s;
  hot_s.name = "hot";
  hot_s.tenant = "hot";
  hot_s.share = 5.0;
  a_s.name = "a";
  a_s.tenant = "a";
  a_s.share = 1.0;
  b_s.name = "b";
  b_s.tenant = "b";
  b_s.share = 1.0;
  load.streams = {hot_s, a_s, b_s};

  bench::LoadReport report = bench::run_open_loop(server, load);

  // Conservation: every arrival resolved exactly once.
  EXPECT_TRUE(report.conserved())
      << "offered " << report.offered << " != " << report.completed << "+"
      << report.shed << "+" << report.timeout << "+" << report.failed;

  const bench::StreamStats* hot_stats = report.stream("hot");
  const bench::StreamStats* a_stats = report.stream("a");
  const bench::StreamStats* b_stats = report.stream("b");
  ASSERT_NE(hot_stats, nullptr);
  ASSERT_NE(a_stats, nullptr);
  ASSERT_NE(b_stats, nullptr);

  // The hot tenant was shed at its own bucket...
  EXPECT_GT(hot_stats->shed, 0);
  // ...and admitted at most quota * time + burst.
  EXPECT_LE(hot_stats->completed,
            static_cast<int64_t>(50.0 * report.duration_seconds + 50.0 + 1));
  // In-quota tenants: zero sheds, essentially everything answered.
  EXPECT_EQ(a_stats->shed, 0);
  EXPECT_EQ(b_stats->shed, 0);
  EXPECT_EQ(a_stats->completed + a_stats->timeout + a_stats->failed,
            a_stats->offered);
  EXPECT_GE(a_stats->completed, (a_stats->offered * 9) / 10);
  EXPECT_GE(b_stats->completed, (b_stats->offered * 9) / 10);
  EXPECT_GT(a_stats->p99, 0.0);

  // Shed accounting is tenant-scoped: quota reason, hot's counter only.
  MetricRegistry& m = server.metrics();
  EXPECT_EQ(m.counter("serve/shed_total{reason=tenant_quota}"),
            hot_stats->shed);
  EXPECT_EQ(m.counter("serve/tenant_shed{tenant=hot}"), hot_stats->shed);
  EXPECT_EQ(m.counter("serve/tenant_shed{tenant=a}"), 0);
  EXPECT_EQ(m.counter("serve/shed_total{reason=overload}"), 0);
  server.shutdown();
}

// --- End to end: canary auto-rollback ----------------------------------------

// Engine whose forward pass stalls when it is running the configured slow
// version — a candidate with a latency regression.
class SlowVersionEngine : public VersionEchoEngine {
 public:
  SlowVersionEngine(int64_t slow_version, std::chrono::microseconds delay)
      : slow_version_(slow_version), delay_(delay) {}
  Tensor forward(const Tensor& obs_batch) override {
    if (version_ == slow_version_) std::this_thread::sleep_for(delay_);
    return VersionEchoEngine::forward(obs_batch);
  }

 private:
  int64_t slow_version_;
  std::chrono::microseconds delay_;
};

TEST(ControlPlaneEndToEndTest, CanaryLatencyRegressionRollsBackWithoutFailures) {
  PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = 8;
  cfg.batcher.max_queue_delay = 200us;
  cfg.canary.weight = 0.5;
  cfg.canary.min_samples = 12;

  PolicyServer server(
      [](int) { return std::make_unique<SlowVersionEngine>(2, 5ms); }, cfg);
  const int64_t v1 = server.store().publish(weights_v(1));
  server.start();

  // Warm the baseline before the rollout starts.
  ActResult warm = server.act(obs1(0.1f));
  EXPECT_EQ(warm.policy_version, v1);

  const int64_t v2 = server.store().publish(weights_v(2));
  server.start_canary(v2);
  EXPECT_EQ(server.canary().state(), CanaryState::kCanarying);
  EXPECT_EQ(server.canary().baseline_version(), v1);

  // Drive explicit sequential request ids until the guardband trips. Every
  // future must resolve with an action — rollback only flips routing for
  // requests not yet routed, it fails nothing.
  int64_t failures = 0;
  int64_t canary_served = 0;
  uint64_t next_id = 1;
  for (int wave = 0; wave < 60 && server.canary().active(); ++wave) {
    std::vector<std::future<ActResult>> futs;
    for (int i = 0; i < 12; ++i) {
      ActOptions opts;
      opts.request_id = next_id++;
      futs.push_back(server.act_async(obs1(0.5f), opts));
    }
    for (auto& f : futs) {
      try {
        ActResult r = f.get();
        if (r.policy_version == v2) ++canary_served;
      } catch (const Error&) {
        ++failures;
      }
    }
  }

  EXPECT_EQ(server.canary().state(), CanaryState::kRolledBack);
  EXPECT_EQ(failures, 0) << "rollback must not fail in-flight requests";
  EXPECT_GT(canary_served, 0) << "the candidate served before rolling back";
  EXPECT_DOUBLE_EQ(server.metrics().gauge("serve/canary_rolled_back"), 1.0);
  EXPECT_GE(server.metrics().counter("serve/canary_rollbacks"), 1);

  // Rolled back: the baseline version answers everything, although the
  // candidate is the newest published version.
  for (int i = 0; i < 30; ++i) {
    ActResult r = server.act(obs1(0.3f));
    EXPECT_EQ(r.policy_version, v1);
  }

  // Ending the rollout returns to newest-wins serving (v2 — deliberately:
  // acting on the rollback is the operator's call).
  server.end_canary();
  ActResult after;
  for (int i = 0; i < 1000 && after.policy_version != v2; ++i) {
    after = server.act(obs1(0.3f));
  }
  EXPECT_EQ(after.policy_version, v2);
  server.shutdown();
}

TEST(ControlPlaneEndToEndTest, StartCanaryValidatesCandidateAndBaseline) {
  PolicyServerConfig cfg;
  cfg.num_shards = 1;
  PolicyServer server([](int) { return std::make_unique<VersionEchoEngine>(); },
                      cfg);
  const int64_t v1 = server.store().publish(weights_v(1));
  server.start();
  // Unknown candidate: NotFoundError.
  EXPECT_THROW(server.start_canary(42), NotFoundError);
  // Candidate == only published version: no distinct baseline exists.
  EXPECT_THROW(server.start_canary(v1), Error);
  server.shutdown();
}

}  // namespace
}  // namespace rlgraph
