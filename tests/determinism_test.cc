// Cross-backend determinism: the strongest equivalence property this
// reproduction offers — a full DQN agent run step-for-step on the static
// and define-by-run backends under the same seed produces bit-identical
// actions and numerically identical losses (the two backends share kernels,
// variable initialization, RNG streams, and autodiff rules).
#include <gtest/gtest.h>

#include "agents/dqn_agent.h"
#include "env/grid_world.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

Json config(const std::string& backend, bool fast_path = true) {
  Json cfg = Json::parse(R"({
    "type": "dqn",
    "network": [{"type": "dense", "units": 24, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 256},
    "optimizer": {"type": "adam", "learning_rate": 0.002},
    "exploration": {"eps_start": 0.8, "eps_end": 0.1, "decay_steps": 300},
    "update": {"batch_size": 16, "sync_interval": 10, "min_records": 32},
    "discount": 0.95
  })");
  cfg["backend"] = Json(backend);
  cfg["fast_path"] = Json(fast_path);
  return cfg;
}

struct Trace {
  std::vector<int32_t> actions;
  std::vector<double> losses;
};

Trace run(const Json& cfg, int steps) {
  GridWorld env(GridWorld::Config{4, 0.01, 30, true});
  env.seed(99);
  DQNAgent agent(cfg, env.state_space(), env.action_space());
  agent.build();
  Trace trace;
  Tensor obs = env.reset();
  for (int i = 0; i < steps; ++i) {
    Tensor batch = obs.reshaped(obs.shape().prepend(1));
    Tensor action = agent.get_actions(batch);
    trace.actions.push_back(action.to_ints()[0]);
    StepResult r = env.step(action.to_ints()[0]);
    agent.observe(agent.last_preprocessed(), action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}),
                  r.observation.reshaped(r.observation.shape().prepend(1)),
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    trace.losses.push_back(agent.update());
    obs = r.terminal ? env.reset() : r.observation;
  }
  return trace;
}

TEST(DeterminismTest, StaticAndDefineByRunProduceIdenticalTrajectories) {
  Trace s = run(config("static"), 150);
  Trace i = run(config("define_by_run"), 150);
  ASSERT_EQ(s.actions.size(), i.actions.size());
  // Actions are integer decisions: must match exactly.
  EXPECT_EQ(s.actions, i.actions);
  for (size_t k = 0; k < s.losses.size(); ++k) {
    EXPECT_NEAR(s.losses[k], i.losses[k], 1e-4) << "step " << k;
  }
}

TEST(DeterminismTest, FastPathDoesNotChangeTrajectory) {
  Trace with_fp = run(config("define_by_run", true), 120);
  Trace without_fp = run(config("define_by_run", false), 120);
  EXPECT_EQ(with_fp.actions, without_fp.actions);
  for (size_t k = 0; k < with_fp.losses.size(); ++k) {
    EXPECT_NEAR(with_fp.losses[k], without_fp.losses[k], 1e-5) << k;
  }
}

TEST(DeterminismTest, GraphOptimizationDoesNotChangeTrajectory) {
  Json opt_on = config("static");
  opt_on["optimize_graph"] = Json(true);
  Json opt_off = config("static");
  opt_off["optimize_graph"] = Json(false);
  Trace a = run(opt_on, 120);
  Trace b = run(opt_off, 120);
  EXPECT_EQ(a.actions, b.actions);
  for (size_t k = 0; k < a.losses.size(); ++k) {
    EXPECT_NEAR(a.losses[k], b.losses[k], 1e-5) << k;
  }
}

TEST(DeterminismTest, SameSeedSameRun) {
  Trace a = run(config("static"), 100);
  Trace b = run(config("static"), 100);
  EXPECT_EQ(a.actions, b.actions);
  EXPECT_EQ(a.losses, b.losses);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  Json cfg1 = config("static");
  Json cfg2 = config("static");
  cfg2["seed"] = Json(4242);
  Trace a = run(cfg1, 100);
  Trace b = run(cfg2, 100);
  EXPECT_NE(a.actions, b.actions);
}

}  // namespace
}  // namespace rlgraph
