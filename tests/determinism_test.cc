// Cross-backend determinism: the strongest equivalence property this
// reproduction offers — a full DQN agent run step-for-step on the static
// and define-by-run backends under the same seed produces bit-identical
// actions and numerically identical losses (the two backends share kernels,
// variable initialization, RNG streams, and autodiff rules).
#include <gtest/gtest.h>

#include "agents/dqn_agent.h"
#include "agents/sac_agent.h"
#include "env/grid_world.h"
#include "env/pendulum_env.h"
#include "tensor/kernels.h"
#include "util/thread_pool.h"

namespace rlgraph {
namespace {

Json config(const std::string& backend, bool fast_path = true) {
  Json cfg = Json::parse(R"({
    "type": "dqn",
    "network": [{"type": "dense", "units": 24, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 256},
    "optimizer": {"type": "adam", "learning_rate": 0.002},
    "exploration": {"eps_start": 0.8, "eps_end": 0.1, "decay_steps": 300},
    "update": {"batch_size": 16, "sync_interval": 10, "min_records": 32},
    "discount": 0.95
  })");
  cfg["backend"] = Json(backend);
  cfg["fast_path"] = Json(fast_path);
  return cfg;
}

struct Trace {
  std::vector<int32_t> actions;
  std::vector<double> losses;
};

Trace run(const Json& cfg, int steps) {
  GridWorld env(GridWorld::Config{4, 0.01, 30, true});
  env.seed(99);
  DQNAgent agent(cfg, env.state_space(), env.action_space());
  agent.build();
  Trace trace;
  Tensor obs = env.reset();
  for (int i = 0; i < steps; ++i) {
    Tensor batch = obs.reshaped(obs.shape().prepend(1));
    Tensor action = agent.get_actions(batch);
    trace.actions.push_back(action.to_ints()[0]);
    StepResult r = env.step(action.to_ints()[0]);
    agent.observe(agent.last_preprocessed(), action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}),
                  r.observation.reshaped(r.observation.shape().prepend(1)),
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    trace.losses.push_back(agent.update());
    obs = r.terminal ? env.reset() : r.observation;
  }
  return trace;
}

TEST(DeterminismTest, StaticAndDefineByRunProduceIdenticalTrajectories) {
  Trace s = run(config("static"), 150);
  Trace i = run(config("define_by_run"), 150);
  ASSERT_EQ(s.actions.size(), i.actions.size());
  // Actions are integer decisions: must match exactly.
  EXPECT_EQ(s.actions, i.actions);
  for (size_t k = 0; k < s.losses.size(); ++k) {
    EXPECT_NEAR(s.losses[k], i.losses[k], 1e-4) << "step " << k;
  }
}

TEST(DeterminismTest, FastPathDoesNotChangeTrajectory) {
  Trace with_fp = run(config("define_by_run", true), 120);
  Trace without_fp = run(config("define_by_run", false), 120);
  EXPECT_EQ(with_fp.actions, without_fp.actions);
  for (size_t k = 0; k < with_fp.losses.size(); ++k) {
    EXPECT_NEAR(with_fp.losses[k], without_fp.losses[k], 1e-5) << k;
  }
}

TEST(DeterminismTest, GraphOptimizationDoesNotChangeTrajectory) {
  Json opt_on = config("static");
  opt_on["optimize_graph"] = Json(true);
  Json opt_off = config("static");
  opt_off["optimize_graph"] = Json(false);
  Trace a = run(opt_on, 120);
  Trace b = run(opt_off, 120);
  EXPECT_EQ(a.actions, b.actions);
  for (size_t k = 0; k < a.losses.size(); ++k) {
    EXPECT_NEAR(a.losses[k], b.losses[k], 1e-5) << k;
  }
}

TEST(DeterminismTest, SameSeedSameRun) {
  Trace a = run(config("static"), 100);
  Trace b = run(config("static"), 100);
  EXPECT_EQ(a.actions, b.actions);
  EXPECT_EQ(a.losses, b.losses);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  Json cfg1 = config("static");
  Json cfg2 = config("static");
  cfg2["seed"] = Json(4242);
  Trace a = run(cfg1, 100);
  Trace b = run(cfg2, 100);
  EXPECT_NE(a.actions, b.actions);
}

// --- SAC / continuous control ------------------------------------------------
//
// The squashed-Gaussian sampling path draws from a stateful RandomNormalLike
// op pinned to the executor's serial RNG chain, so the float action stream
// must be BITWISE reproducible: across runs under the same seed, and at any
// inter-op thread count (stateful steps stay ordered on the serial path).

Json sac_config(const std::string& backend) {
  Json cfg = Json::parse(R"({
    "type": "sac",
    "network": [{"type": "dense", "units": 16, "activation": "relu"}],
    "optimizer": {"type": "adam", "learning_rate": 0.003},
    "memory": {"capacity": 512},
    "update": {"batch_size": 16, "min_records": 32},
    "seed": 13
  })");
  cfg["backend"] = Json(backend);
  return cfg;
}

struct SacTrace {
  std::vector<float> actions;  // compared with ==, i.e. bitwise
  std::vector<double> losses;
};

SacTrace sac_run(const Json& cfg, int steps) {
  PendulumEnv env(PendulumEnv::Config{});
  env.seed(5);
  SacAgent agent(cfg, env.state_space(), env.action_space());
  agent.build();
  SacTrace trace;
  Tensor obs = env.reset();
  for (int i = 0; i < steps; ++i) {
    Tensor batch = obs.reshaped(Shape{1, 3});
    Tensor action = agent.get_actions(batch, /*explore=*/true);
    trace.actions.push_back(action.to_floats()[0]);
    StepResult r = env.step_continuous(action);
    agent.observe(batch, action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}),
                  r.observation.reshaped(Shape{1, 3}),
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    trace.losses.push_back(agent.update());
    obs = r.terminal ? env.reset() : r.observation;
  }
  return trace;
}

struct ParallelismGuard {
  explicit ParallelismGuard(size_t n) { set_global_parallelism(n); }
  ~ParallelismGuard() { set_global_parallelism(1); }
};

TEST(SacDeterminismTest, SamplingBitwiseIdenticalAcrossThreadCounts) {
  SacTrace serial = sac_run(sac_config("static"), 80);
  for (size_t threads : {2u, 8u}) {
    ParallelismGuard guard(threads);
    SacTrace t = sac_run(sac_config("static"), 80);
    EXPECT_EQ(t.actions, serial.actions) << threads << " threads";
    EXPECT_EQ(t.losses, serial.losses) << threads << " threads";
  }
}

TEST(SacDeterminismTest, SameSeedSameRunBitwise) {
  SacTrace a = sac_run(sac_config("static"), 80);
  SacTrace b = sac_run(sac_config("static"), 80);
  EXPECT_EQ(a.actions, b.actions);
  EXPECT_EQ(a.losses, b.losses);
}

TEST(SacDeterminismTest, DifferentSeedsDiverge) {
  Json other = sac_config("static");
  other["seed"] = Json(4242);
  SacTrace a = sac_run(sac_config("static"), 40);
  SacTrace b = sac_run(other, 40);
  EXPECT_NE(a.actions, b.actions);
}

// Golden trace for one SAC update step: the same replayed batch produces the
// same critic/actor/alpha losses on both backends, and re-running the whole
// sequence under the static backend reproduces them exactly.
struct SacUpdateGolden {
  double critic_loss, actor_loss, alpha_loss, alpha;
  std::vector<float> greedy;
};

SacUpdateGolden sac_one_update(const std::string& backend) {
  PendulumEnv env(PendulumEnv::Config{});
  env.seed(5);
  SacAgent agent(sac_config(backend), env.state_space(), env.action_space());
  agent.build();
  Tensor obs = env.reset();
  for (int i = 0; i < 48; ++i) {
    Tensor batch = obs.reshaped(Shape{1, 3});
    Tensor action = agent.get_actions(batch, /*explore=*/true);
    StepResult r = env.step_continuous(action);
    agent.observe(batch, action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}),
                  r.observation.reshaped(Shape{1, 3}),
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    obs = r.terminal ? env.reset() : r.observation;
  }
  SacUpdateGolden g;
  g.critic_loss = agent.update();
  g.actor_loss = agent.last_actor_loss();
  g.alpha_loss = agent.last_alpha_loss();
  g.alpha = agent.alpha();
  Tensor probe = Tensor::from_floats(Shape{2, 3},
                                     {0.5f, -0.5f, 1.0f, -1.0f, 0.2f, 3.0f});
  g.greedy = agent.get_actions(probe, /*explore=*/false).to_floats();
  return g;
}

TEST(SacDeterminismTest, GoldenUpdateStepMatchesAcrossBackends) {
  SacUpdateGolden s = sac_one_update("static");
  SacUpdateGolden i = sac_one_update("define_by_run");
  EXPECT_NEAR(s.critic_loss, i.critic_loss, 1e-4);
  EXPECT_NEAR(s.actor_loss, i.actor_loss, 1e-4);
  EXPECT_NEAR(s.alpha_loss, i.alpha_loss, 1e-4);
  EXPECT_NEAR(s.alpha, i.alpha, 1e-5);
  ASSERT_EQ(s.greedy.size(), i.greedy.size());
  for (size_t k = 0; k < s.greedy.size(); ++k) {
    EXPECT_NEAR(s.greedy[k], i.greedy[k], 1e-5) << "greedy action " << k;
  }
}

TEST(SacDeterminismTest, GoldenUpdateStepExactlyReproducible) {
  SacUpdateGolden a = sac_one_update("static");
  SacUpdateGolden b = sac_one_update("static");
  EXPECT_EQ(a.critic_loss, b.critic_loss);
  EXPECT_EQ(a.actor_loss, b.actor_loss);
  EXPECT_EQ(a.alpha_loss, b.alpha_loss);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.greedy, b.greedy);  // bitwise
}

}  // namespace
}  // namespace rlgraph
