// Environment tests: spaces, determinism, episode semantics, frame
// accounting, the env registry and VectorEnv bookkeeping.
#include <gtest/gtest.h>

#include "env/catch_env.h"
#include "env/dmlab_sim.h"
#include "env/grid_world.h"
#include "env/pendulum_env.h"
#include "env/pong_sim.h"
#include "env/vector_env.h"
#include "spaces/nested.h"
#include "util/metrics.h"

namespace rlgraph {
namespace {

TEST(EnvRegistryTest, CreatesAllBuiltins) {
  for (const char* type : {"grid_world", "catch", "pong", "dmlab"}) {
    Json spec;
    spec["type"] = Json(type);
    auto env = make_environment(spec);
    ASSERT_NE(env, nullptr) << type;
    Tensor obs = env->reset();
    EXPECT_TRUE(env->state_space()->contains(NestedTensor(obs))) << type;
    StepResult r = env->step(0);
    EXPECT_TRUE(env->state_space()->contains(NestedTensor(r.observation)))
        << type;
  }
  Json bad;
  bad["type"] = Json("atari_for_real");
  EXPECT_THROW(make_environment(bad), ConfigError);
}

TEST(GridWorldTest, ReachesGoalOnOptimalPath) {
  GridWorld env(GridWorld::Config{4, 0.01, 100, /*with_holes=*/false});
  env.reset();
  double total = 0;
  bool terminal = false;
  // Optimal: 3x down, 3x right.
  for (int a : {1, 1, 1, 3, 3, 3}) {
    StepResult r = env.step(a);
    total += r.reward;
    terminal = r.terminal;
  }
  EXPECT_TRUE(terminal);
  // Five penalized steps, then the goal step yields +1 (replacing the
  // penalty).
  EXPECT_NEAR(total, 1.0 - 5 * 0.01, 1e-9);
}

TEST(GridWorldTest, FallsIntoHole) {
  GridWorld env(GridWorld::Config{4, 0.01, 100, /*with_holes=*/true});
  env.reset();
  env.step(1);                      // (1, 0)
  StepResult r = env.step(3);       // (1, 1) = hole
  EXPECT_TRUE(r.terminal);
  EXPECT_DOUBLE_EQ(r.reward, -1.0);
}

TEST(GridWorldTest, EpisodeTimeout) {
  GridWorld env(GridWorld::Config{4, 0.0, 5, false});
  env.reset();
  StepResult r;
  for (int i = 0; i < 5; ++i) r = env.step(0);  // bump into the wall
  EXPECT_TRUE(r.terminal);
}

TEST(CatchEnvTest, EpisodeReturnBounds) {
  CatchEnv env(CatchEnv::Config{10, 8, 21});
  env.seed(3);
  env.reset();
  double total = 0;
  int episodes = 0;
  Rng rng(4);
  while (episodes < 1) {
    StepResult r = env.step(rng.uniform_int(3));
    total += r.reward;
    if (r.terminal) ++episodes;
  }
  // 21 rounds of +/-1: return in [-21, 21] with the same parity semantics
  // as a Pong episode (paper Fig. 7b axis).
  EXPECT_GE(total, -21.0);
  EXPECT_LE(total, 21.0);
}

TEST(CatchEnvTest, PerfectPlayScoresPlus21) {
  CatchEnv env(CatchEnv::Config{6, 5, 21});
  env.seed(9);
  Tensor obs = env.reset();
  double total = 0;
  bool terminal = false;
  while (!terminal) {
    // Oracle: read ball and paddle columns from the observation.
    const float* p = obs.data<float>();
    int ball_col = -1, paddle_col = -1;
    for (int r = 0; r < 6; ++r) {
      for (int c = 0; c < 5; ++c) {
        if (p[r * 5 + c] > 0.5f) {
          if (r == 5) {
            paddle_col = c;
          } else {
            ball_col = c;
          }
        }
      }
    }
    int64_t action = ball_col < paddle_col ? 0 : (ball_col > paddle_col ? 2 : 1);
    StepResult r = env.step(action);
    total += r.reward;
    terminal = r.terminal;
    obs = r.observation;
  }
  EXPECT_DOUBLE_EQ(total, 21.0);
}

TEST(PongSimTest, EpisodeEndsAtPointCap) {
  PongSim env(PongSim::Config{16, 16, 4, /*points=*/2, /*opponent=*/0.0});
  env.seed(5);
  env.reset();
  double total = 0;
  bool terminal = false;
  int steps = 0;
  while (!terminal && steps < 20000) {
    StepResult r = env.step(1);  // stay: weak opponent still loses rallies
    total += r.reward;
    terminal = r.terminal;
    ++steps;
  }
  EXPECT_TRUE(terminal);
  EXPECT_EQ(std::abs(std::abs(total) - 2.0) < 2.0, true);
  EXPECT_EQ(env.frames_per_step(), 4);
}

TEST(PongSimTest, DeterministicUnderSeed) {
  auto run = [](uint64_t seed) {
    PongSim env(PongSim::Config{});
    env.seed(seed);
    env.reset();
    double checksum = 0;
    for (int i = 0; i < 50; ++i) {
      StepResult r = env.step(i % 3);
      checksum += r.observation.at_flat(i % r.observation.num_elements()) +
                  r.reward;
    }
    return checksum;
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
}

TEST(DmLabSimTest, RenderCostScalesStepTime) {
  DmLabSim cheap(DmLabSim::Config{24, 32, /*render_cost=*/0, 1000, 4});
  DmLabSim pricey(DmLabSim::Config{24, 32, /*render_cost=*/200000, 1000, 4});
  cheap.reset();
  pricey.reset();
  Stopwatch w1;
  for (int i = 0; i < 20; ++i) cheap.step(0);
  double t_cheap = w1.elapsed_seconds();
  Stopwatch w2;
  for (int i = 0; i < 20; ++i) pricey.step(0);
  double t_pricey = w2.elapsed_seconds();
  EXPECT_GT(t_pricey, t_cheap * 2);
}

TEST(DmLabSimTest, FixedEpisodeLength) {
  DmLabSim env(DmLabSim::Config{8, 8, 0, /*episode_length=*/5, 1});
  env.reset();
  StepResult r;
  for (int i = 0; i < 5; ++i) r = env.step(4);
  EXPECT_TRUE(r.terminal);
}

TEST(PendulumEnvTest, SpacesAndRegistry) {
  Json spec;
  spec["type"] = Json("pendulum");
  auto env = make_environment(spec);
  ASSERT_NE(env, nullptr);
  const auto& act = static_cast<const BoxSpace&>(*env->action_space());
  EXPECT_EQ(act.dtype(), DType::kFloat32);
  EXPECT_EQ(act.value_shape(), (Shape{1}));
  EXPECT_EQ(act.low(0), -2.0);
  EXPECT_EQ(act.high(0), 2.0);
  Tensor obs = env->reset();
  EXPECT_EQ(obs.shape(), (Shape{3}));
  EXPECT_TRUE(env->state_space()->contains(NestedTensor(obs)));
  // Observation is [cos, sin, theta_dot]: the first two lie on the circle.
  float c = obs.data<float>()[0], s = obs.data<float>()[1];
  EXPECT_NEAR(c * c + s * s, 1.0, 1e-5);
}

TEST(PendulumEnvTest, DeterministicUnderSeedAndFixedHorizon) {
  PendulumEnv a(PendulumEnv::Config{});
  PendulumEnv b(PendulumEnv::Config{});
  a.seed(42);
  b.seed(42);
  EXPECT_TRUE(a.reset().equals(b.reset()));
  Tensor torque = Tensor::from_floats(Shape{1, 1}, {0.7f});
  StepResult ra, rb;
  for (int i = 0; i < 200; ++i) {
    ra = a.step_continuous(torque);
    rb = b.step_continuous(torque);
    EXPECT_TRUE(ra.observation.equals(rb.observation)) << "step " << i;
    EXPECT_EQ(ra.reward, rb.reward) << "step " << i;
    EXPECT_LE(ra.reward, 0.0) << "pendulum reward is a negative cost";
    EXPECT_EQ(ra.terminal, i == 199) << "fixed 200-step horizon";
  }
  // Different seeds draw different initial states.
  PendulumEnv c(PendulumEnv::Config{});
  c.seed(7);
  EXPECT_FALSE(a.reset().equals(c.reset()));
}

TEST(PendulumEnvTest, DiscreteStepMapsOntoTorqueGrid) {
  // With 5 torque bins over [-2, 2], discrete action 2 is exactly zero
  // torque; the continuous zero-torque step must match it state-for-state.
  PendulumEnv disc(PendulumEnv::Config{});
  PendulumEnv cont(PendulumEnv::Config{});
  disc.seed(11);
  cont.seed(11);
  disc.reset();
  cont.reset();
  for (int i = 0; i < 10; ++i) {
    StepResult rd = disc.step(2);
    StepResult rc =
        cont.step_continuous(Tensor::from_floats(Shape{1, 1}, {0.0f}));
    EXPECT_TRUE(rd.observation.equals(rc.observation)) << "step " << i;
    EXPECT_EQ(rd.reward, rc.reward) << "step " << i;
  }
  EXPECT_THROW(disc.step(5), ValueError);
  EXPECT_THROW(disc.step(-1), ValueError);
}

TEST(PendulumEnvTest, ContinuousActionsAreClampedToMaxTorque) {
  PendulumEnv a(PendulumEnv::Config{});
  PendulumEnv b(PendulumEnv::Config{});
  a.seed(3);
  b.seed(3);
  a.reset();
  b.reset();
  StepResult ra =
      a.step_continuous(Tensor::from_floats(Shape{1, 1}, {50.0f}));
  StepResult rb =
      b.step_continuous(Tensor::from_floats(Shape{1, 1}, {2.0f}));
  EXPECT_TRUE(ra.observation.equals(rb.observation));
  EXPECT_EQ(ra.reward, rb.reward) << "cost must use the clamped torque";
}

TEST(EnvironmentTest, DefaultStepContinuousThrows) {
  GridWorld env(GridWorld::Config{4, 0.01, 30, false});
  env.reset();
  EXPECT_THROW(env.step_continuous(Tensor::from_floats(Shape{1, 1}, {0.5f})),
               ValueError);
}

TEST(VectorEnvTest, BatchedStepAndAutoReset) {
  Json spec;
  spec["type"] = Json("grid_world");
  spec["max_steps"] = Json(3);
  spec["with_holes"] = Json(false);
  VectorEnv venv(spec, 4, 11);
  Tensor obs = venv.reset();
  EXPECT_EQ(obs.shape(), (Shape{4, 16}));
  Tensor actions = Tensor::from_ints(Shape{4}, {0, 0, 0, 0});
  for (int i = 0; i < 3; ++i) {
    VectorStepResult r = venv.step(actions);
    EXPECT_EQ(r.observations.shape(), (Shape{4, 16}));
    EXPECT_EQ(r.env_frames, 4);
  }
  // All four envs timed out and auto-reset; episode returns recorded.
  EXPECT_EQ(venv.drain_episode_returns().size(), 4u);
  EXPECT_TRUE(venv.drain_episode_returns().empty());  // drained
  EXPECT_EQ(venv.total_env_frames(), 12);
}

TEST(VectorEnvTest, FrameSkipAccounting) {
  Json spec;
  spec["type"] = Json("pong");
  spec["frame_skip"] = Json(4);
  VectorEnv venv(spec, 2, 1);
  venv.reset();
  VectorStepResult r = venv.step(Tensor::from_ints(Shape{2}, {1, 1}));
  EXPECT_EQ(r.env_frames, 2 * 4);
}

TEST(VectorEnvTest, SeedsDecorrelateCopies) {
  Json spec;
  spec["type"] = Json("catch");
  VectorEnv venv(spec, 2, 123);
  Tensor obs = venv.reset();
  // Two catch envs with different seeds usually start with different ball
  // columns; compare the two rows.
  Tensor row0 = obs.reshaped(Shape{2, 80});
  bool differ = false;
  for (int i = 0; i < 80; ++i) {
    if (row0.data<float>()[i] != row0.data<float>()[80 + i]) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(VectorEnvTest, InputValidation) {
  Json spec;
  spec["type"] = Json("grid_world");
  VectorEnv venv(spec, 2, 1);
  venv.reset();
  EXPECT_THROW(venv.step(Tensor::from_ints(Shape{3}, {0, 0, 0})), ValueError);
  EXPECT_THROW(venv.step(Tensor::from_floats(Shape{2}, {0, 0})), ValueError);
}

}  // namespace
}  // namespace rlgraph
