// Tests for the compiled execution-plan layer: plan caching, eager
// intermediate release, feed validation, pooled-buffer determinism, the
// kernel-purity invariant, and fast-path-vs-session equivalence on a real
// DQN update step.
#include <gtest/gtest.h>

#include "agents/dqn_agent.h"
#include "backend/static_context.h"
#include "env/grid_world.h"
#include "graph/exec_plan.h"
#include "graph/session.h"
#include "util/thread_pool.h"

namespace rlgraph {
namespace {

class ExecPlanTest : public ::testing::Test {
 protected:
  ExecPlanTest() : rng_(7), ctx_(&store_, &rng_) {}

  Session make_session() { return Session(ctx_.graph(), &store_, &rng_); }

  VariableStore store_;
  Rng rng_;
  StaticGraphContext ctx_;
};

TEST_F(ExecPlanTest, PlanCacheHitAndMiss) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{});
  OpRef a = ctx_.mul(x, ctx_.scalar(2.0f));
  OpRef b = ctx_.add(x, ctx_.scalar(1.0f));
  Session s = make_session();
  FeedMap feeds;
  feeds[x.node] = Tensor::scalar(3.0f);

  s.run({{a.node, 0}}, feeds);
  EXPECT_EQ(s.plan_compiles(), 1);
  EXPECT_EQ(s.plan_cache_hits(), 0);

  // Same (fetches, feed signature): the cached plan is reused.
  s.run({{a.node, 0}}, feeds);
  EXPECT_EQ(s.plan_compiles(), 1);
  EXPECT_EQ(s.plan_cache_hits(), 1);

  // Different fetch: a fresh compile.
  s.run({{b.node, 0}}, feeds);
  EXPECT_EQ(s.plan_compiles(), 2);
  EXPECT_EQ(s.plan_cache_hits(), 1);
  EXPECT_EQ(s.num_runs(), 3);
}

TEST_F(ExecPlanTest, EagerReleaseBoundsPeakLiveSlots) {
  // A chain of N unary ops: with last-use refcounting only the current
  // step's input and output are live, so the peak stays O(1) while the
  // plan holds O(N) slots.
  constexpr int kChain = 16;
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{64});
  OpRef v = x;
  for (int i = 0; i < kChain; ++i) v = ctx_.neg(v);
  Session s = make_session();
  auto call = s.prepare({{v.node, 0}}, {x.node});
  ASSERT_GE(call->plan().num_slots(), static_cast<size_t>(kChain));

  std::vector<float> data(64, 1.5f);
  call->run({Tensor::from_floats(Shape{64}, data)});
  EXPECT_LE(call->last_peak_live_slots(), 3);
}

TEST_F(ExecPlanTest, PooledRunsAreDeterministicAndReuseBuffers) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{256});
  OpRef v = x;
  for (int i = 0; i < 8; ++i) v = ctx_.add(ctx_.neg(v), ctx_.scalar(0.5f));
  Session s = make_session();
  auto call = s.prepare({{v.node, 0}}, {x.node});

  std::vector<float> data(256);
  for (size_t i = 0; i < data.size(); ++i) data[i] = 0.01f * (float)i;
  Tensor feed = Tensor::from_floats(Shape{256}, data);

  std::vector<float> first = call->run({feed})[0].to_floats();
  for (int run = 0; run < 5; ++run) {
    // Later runs draw intermediate buffers from the arena's pool; recycled
    // storage must not perturb results.
    EXPECT_EQ(call->run({feed})[0].to_floats(), first);
  }
  EXPECT_GT(call->bytes_reused(), 0);
}

TEST_F(ExecPlanTest, RunRejectsNonPlaceholderFeed) {
  OpRef c = ctx_.constant(Tensor::scalar(1.0f));
  OpRef y = ctx_.neg(c);
  Session s = make_session();
  FeedMap feeds;
  feeds[c.node] = Tensor::scalar(9.0f);
  EXPECT_THROW(s.run({{y.node, 0}}, feeds), ValueError);
}

TEST_F(ExecPlanTest, RunNamesUnusedFeeds) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{});
  OpRef y = ctx_.placeholder("y", DType::kFloat32, Shape{});
  OpRef out = ctx_.neg(x);
  Session s = make_session();
  FeedMap feeds;
  feeds[x.node] = Tensor::scalar(1.0f);
  feeds[y.node] = Tensor::scalar(2.0f);  // not consumed by the fetch
  try {
    s.run({{out.node, 0}}, feeds);
    FAIL() << "expected ValueError for unused feed";
  } catch (const ValueError& e) {
    EXPECT_NE(std::string(e.what()).find("'y'"), std::string::npos)
        << "error should name the unused feed: " << e.what();
  }
}

TEST_F(ExecPlanTest, FeedValidationNamesDeclaredAndProvidedSignatures) {
  // A mismatched feed must name BOTH sides — the declared placeholder
  // space/shape and what the caller actually provided — so agent-API feed
  // bugs are diagnosable from the message alone.
  OpRef x = ctx_.placeholder("states", DType::kFloat32, Shape{3});
  OpRef out = ctx_.neg(x);
  Session s = make_session();
  auto call = s.prepare({{out.node, 0}}, {x.node});

  try {
    call->run({Tensor::from_floats(Shape{2}, {1.0f, 2.0f})});
    FAIL() << "expected ValueError for shape mismatch";
  } catch (const ValueError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'states'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("provides float32(2)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("declared float32(3)"), std::string::npos) << msg;
  }

  try {
    call->run({Tensor::from_ints(Shape{3}, {1, 2, 3})});
    FAIL() << "expected ValueError for dtype mismatch";
  } catch (const ValueError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("provides int32(3)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("declared float32(3)"), std::string::npos) << msg;
  }
}

TEST_F(ExecPlanTest, PreparedPositionalCallToleratesUnusedFeed) {
  // API calls feed arguments positionally; an API that ignores one of its
  // declared arguments must still be preparable (the value is dropped).
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{});
  OpRef y = ctx_.placeholder("y", DType::kFloat32, Shape{});
  OpRef out = ctx_.mul(x, ctx_.scalar(4.0f));
  Session s = make_session();
  auto call = s.prepare({{out.node, 0}}, {x.node, y.node});
  ASSERT_EQ(call->plan().unused_feed_names(),
            std::vector<std::string>{"y"});
  auto fetched = call->run({Tensor::scalar(2.0f), Tensor::scalar(99.0f)});
  EXPECT_FLOAT_EQ(fetched[0].scalar_value(), 8.0f);
}

TEST(ExecPlanBuilderTest, PurityCheckCatchesInputMutation) {
  CompiledPlan::Builder builder;
  int in_slot = builder.add_input();
  NodeDef node;
  node.name = "mutator";
  node.op = "CustomStateful";
  node.stateful = true;
  node.custom_kernel = [](const std::vector<Tensor>& in) {
    Tensor alias = in[0];  // shares the buffer
    alias.mutable_data<float>()[0] += 1.0f;
    return std::vector<Tensor>{Tensor::scalar(0.0f)};
  };
  int out_slot = builder.add_step(std::move(node), {in_slot}, 1);
  builder.set_outputs({out_slot});
  std::shared_ptr<CompiledPlan> plan = builder.finish();

  RunArena arena;
  arena.set_check_kernel_purity(true);
  Tensor input = Tensor::from_floats(Shape{4}, {1, 2, 3, 4});
  EXPECT_THROW(plan->execute(arena, {input}, nullptr, nullptr), Error);

  arena.set_check_kernel_purity(false);
  EXPECT_NO_THROW(plan->execute(arena, {input}, nullptr, nullptr));
}

TEST(ExecPlanBuilderTest, CountersTrackRunsAndNodes) {
  CompiledPlan::Builder builder;
  int in_slot = builder.add_input();
  int c_slot = builder.add_const(Tensor::scalar(2.0f));
  NodeDef node;
  node.name = "mul";
  node.op = "Mul";
  int out_slot = builder.add_step(std::move(node), {in_slot, c_slot}, 1);
  builder.set_outputs({out_slot});
  std::shared_ptr<CompiledPlan> plan = builder.finish();

  RunArena arena;
  for (int i = 0; i < 3; ++i) {
    auto out = plan->execute(arena, {Tensor::scalar(5.0f)}, nullptr, nullptr);
    EXPECT_FLOAT_EQ(out[0].scalar_value(), 10.0f);
  }
  EXPECT_EQ(plan->counters().runs.load(), 3);
  EXPECT_EQ(plan->counters().nodes_executed.load(), 3);
}

// --- shape-specialized plans (static arena planning) ------------------------

struct ParallelismGuard {
  explicit ParallelismGuard(size_t n) { set_global_parallelism(n); }
  ~ParallelismGuard() { set_global_parallelism(1); }
};

class SpecializedPlanTest : public ExecPlanTest {
 protected:
  // A batchable elementwise pipeline with two branches per stage (step-DAG
  // width 2, so the parallel executor engages at threads > 1); the whole
  // DAG shape-resolves once the batch dim is concrete.
  OpRef build_pipeline(int64_t inner, int depth = 4) {
    OpRef x = ctx_.placeholder("x", DType::kFloat32,
                               Shape{kUnknownDim, inner});
    OpRef v = x;
    for (int i = 0; i < depth; ++i) {
      OpRef left = ctx_.neg(ctx_.mul(v, ctx_.scalar(2.0f)));
      OpRef right = ctx_.relu(ctx_.add(v, ctx_.scalar(0.5f)));
      v = ctx_.add(left, right);
    }
    x_ = x;
    return v;
  }

  static Tensor make_feed(int64_t n, int64_t inner) {
    std::vector<float> data(static_cast<size_t>(n * inner));
    for (size_t i = 0; i < data.size(); ++i) data[i] = 0.03f * (float)i - 1.0f;
    return Tensor::from_floats(Shape{n, inner}, data);
  }

  OpRef x_;
};

TEST_F(SpecializedPlanTest, SpecializedMatchesDynamicBitwise) {
  OpRef v = build_pipeline(8);
  Session s = make_session();
  auto dynamic = s.prepare({{v.node, 0}}, {x_.node});
  ASSERT_TRUE(dynamic->plan().feeds_batchable());

  for (int64_t n : {1, 4, 16}) {
    auto specialized =
        s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{n, 8}});
    ASSERT_TRUE(specialized->plan().specialized());
    ASSERT_NE(specialized->plan().arena_plan(), nullptr);
    Tensor feed = make_feed(n, 8);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ParallelismGuard guard(threads);
      Tensor a = dynamic->run({feed})[0];
      Tensor b = specialized->run({feed})[0];
      EXPECT_TRUE(a.equals(b)) << "N=" << n << " threads=" << threads;
    }
    // A mismatching batch must be rejected by the exact signature.
    EXPECT_THROW(specialized->run({make_feed(n + 1, 8)}), ValueError);
  }
}

TEST_F(SpecializedPlanTest, SteadyStateRunsBypassBufferPool) {
  ParallelismGuard guard(1);  // the static arena serves the serial path
  OpRef v = build_pipeline(64, /*depth=*/6);
  Session s = make_session();
  auto call = s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{4, 64}});
  ASSERT_NE(call->plan().arena_plan(), nullptr);
  // Every kernel output resolved: the plan covers the whole pipeline.
  EXPECT_EQ(call->plan().arena_plan()->planned_slots,
            call->plan().num_steps());

  Tensor feed = make_feed(4, 64);
  // Results are dropped between runs, so nothing escapes the arena and the
  // steady state reuses one contiguous block with zero pool traffic.
  (void)call->run({feed});
  const int64_t allocated = call->bytes_allocated();
  const int64_t reused = call->bytes_reused();
  const int64_t blocks = call->arena_block_allocs();
  for (int i = 0; i < 10; ++i) (void)call->run({feed});
  EXPECT_EQ(call->bytes_allocated(), allocated) << "pool allocation on the "
                                                   "specialized hot path";
  EXPECT_EQ(call->bytes_reused(), reused);
  EXPECT_EQ(call->arena_block_allocs(), blocks);
  EXPECT_EQ(call->arena_alias_fallbacks(), 0);
  EXPECT_EQ(call->plan().counters().planned_runs.load(), 11);
}

TEST_F(SpecializedPlanTest, FusedDensePlanReachesZeroSteadyStateAllocs) {
  // Pattern fusion runs before shape specialization, so the fused steps
  // (FusedDense, FusedElementwise) must carry shape_fns that arena planning
  // can resolve: a fused inference plan still reaches the zero-pool-traffic
  // steady state of SteadyStateRunsBypassBufferPool.
  ParallelismGuard guard(1);
  std::vector<float> w(16 * 8), b(8);
  for (size_t i = 0; i < w.size(); ++i) w[i] = 0.02f * (float)i - 1.2f;
  for (size_t i = 0; i < b.size(); ++i) b[i] = 0.1f * (float)i;
  store_.create("w", Tensor::from_floats(Shape{16, 8}, w));
  store_.create("b", Tensor::from_floats(Shape{8}, b));
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim, 16});
  OpRef h = ctx_.relu(ctx_.add(ctx_.matmul(x, ctx_.variable("w")),
                               ctx_.variable("b")));
  OpRef out = ctx_.mul(ctx_.neg(h), ctx_.scalar(0.5f));

  Session s = make_session();
  s.set_pattern_fusion(true);
  auto call = s.prepare_specialized({{out.node, 0}}, {x.node}, {Shape{4, 16}});
  ASSERT_TRUE(call->plan().specialized());
  ASSERT_GT(call->plan().fused_kernel_steps(), 0);
  ASSERT_NE(call->plan().arena_plan(), nullptr);
  // Every step resolved — variable reads via their static attr shapes, the
  // fused steps via their registered shape_fns.
  EXPECT_EQ(call->plan().arena_plan()->planned_slots,
            call->plan().num_steps());

  Tensor feed = make_feed(4, 16);
  (void)call->run({feed});
  const int64_t allocated = call->bytes_allocated();
  const int64_t reused = call->bytes_reused();
  const int64_t blocks = call->arena_block_allocs();
  for (int i = 0; i < 10; ++i) (void)call->run({feed});
  EXPECT_EQ(call->bytes_allocated(), allocated)
      << "pool allocation on the fused specialized hot path";
  EXPECT_EQ(call->bytes_reused(), reused);
  EXPECT_EQ(call->arena_block_allocs(), blocks);
  EXPECT_EQ(call->arena_alias_fallbacks(), 0);
  EXPECT_EQ(call->plan().counters().planned_runs.load(), 11);
}

TEST_F(SpecializedPlanTest, AliasingKernelFallsBackSafely) {
  // identity() returns its input tensor, so the aliased buffer outlives the
  // planner's interval for it; the runtime hazard check must withhold the
  // range instead of letting a later step overwrite live data.
  ParallelismGuard guard(1);
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim, 16});
  OpRef a = ctx_.neg(x);
  OpRef b = ctx_.identity(a);
  OpRef c = ctx_.neg(b);
  OpRef d = ctx_.mul(c, ctx_.scalar(3.0f));
  Session s = make_session();
  auto dynamic = s.prepare({{d.node, 0}}, {x.node});
  auto specialized =
      s.prepare_specialized({{d.node, 0}}, {x.node}, {Shape{4, 16}});
  ASSERT_NE(specialized->plan().arena_plan(), nullptr);

  Tensor feed = make_feed(4, 16);
  for (int i = 0; i < 3; ++i) {
    Tensor want = dynamic->run({feed})[0];
    Tensor got = specialized->run({feed})[0];
    EXPECT_TRUE(want.equals(got)) << "run " << i;
  }
}

TEST_F(SpecializedPlanTest, SessionCachesPerShapeWithDynamicFallback) {
  OpRef v = build_pipeline(8);
  Session s = make_session();
  auto n4 = s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{4, 8}});
  EXPECT_EQ(s.plan_specializations(), 1);
  // Same shapes: pure cache hit, same call.
  auto n4_again =
      s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{4, 8}});
  EXPECT_EQ(n4_again.get(), n4.get());
  EXPECT_EQ(s.plan_specializations(), 1);
  EXPECT_GE(s.plan_cache_hits(), 1);
  // A different batch compiles its own plan.
  auto n8 = s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{8, 8}});
  EXPECT_NE(n8.get(), n4.get());
  EXPECT_EQ(s.plan_specializations(), 2);

  // Shapes that contradict the declared signature (inner dim 9 != 8) fall
  // back to the dynamic plan, and the negative result is cached.
  const int64_t compiles = s.plan_compiles();
  auto bad = s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{4, 9}});
  EXPECT_FALSE(bad->plan().specialized());
  auto bad_again =
      s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{4, 9}});
  EXPECT_EQ(bad_again.get(), bad.get());
  EXPECT_EQ(s.plan_compiles(), compiles + 1);  // the one dynamic compile
}

TEST_F(SpecializedPlanTest, PlanCacheEvictsLeastRecentlyUsed) {
  OpRef v = build_pipeline(8);
  Session s = make_session();
  s.set_plan_cache_capacity(2);
  (void)s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{1, 8}});
  (void)s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{2, 8}});
  EXPECT_EQ(s.plan_cache_size(), 2u);
  EXPECT_EQ(s.plan_cache_evictions(), 0);
  // Touch {1,8} so {2,8} is the LRU victim when {4,8} arrives.
  (void)s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{1, 8}});
  (void)s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{4, 8}});
  EXPECT_EQ(s.plan_cache_size(), 2u);
  EXPECT_EQ(s.plan_cache_evictions(), 1);
  const int64_t compiles = s.plan_compiles();
  (void)s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{1, 8}});
  EXPECT_EQ(s.plan_compiles(), compiles);  // survivor: still cached
  (void)s.prepare_specialized({{v.node, 0}}, {x_.node}, {Shape{2, 8}});
  EXPECT_EQ(s.plan_compiles(), compiles + 1);  // victim: recompiled
}

TEST_F(SpecializedPlanTest, BatchElementsCountsOnlyBatchableLiveFeeds) {
  OpRef v = build_pipeline(8);
  Session s = make_session();
  auto call = s.prepare({{v.node, 0}}, {x_.node});
  (void)call->run({make_feed(4, 8)});
  (void)call->run({make_feed(16, 8)});
  EXPECT_EQ(call->plan().counters().batch_elements.load(), 20);

  // A fixed-signature (non-batchable) feed counts one element per run even
  // though its leading extent is 3.
  OpRef y = ctx_.placeholder("y", DType::kFloat32, Shape{3});
  OpRef w = ctx_.neg(y);
  auto fixed = s.prepare({{w.node, 0}}, {y.node});
  (void)fixed->run({Tensor::from_floats(Shape{3}, {1, 2, 3})});
  EXPECT_EQ(fixed->plan().counters().batch_elements.load(), 1);
}

// --- fast-path vs. session equivalence on a DQN update step ----------------

Json dqn_config(const std::string& backend) {
  Json cfg = Json::parse(R"({
    "type": "dqn",
    "network": [{"type": "dense", "units": 24, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 256},
    "optimizer": {"type": "adam", "learning_rate": 0.002},
    "exploration": {"eps_start": 0.8, "eps_end": 0.1, "decay_steps": 300},
    "update": {"batch_size": 16, "sync_interval": 10, "min_records": 32},
    "discount": 0.95
  })");
  cfg["backend"] = Json(backend);
  cfg["fast_path"] = Json(true);
  return cfg;
}

TEST(ExecPlanEquivalenceTest, FastPathMatchesSessionOnDQNUpdateBatch) {
  GridWorld env(GridWorld::Config{4, 0.01, 30, true});
  DQNAgent session_agent(dqn_config("static"), env.state_space(),
                         env.action_space());
  DQNAgent fastpath_agent(dqn_config("define_by_run"), env.state_space(),
                          env.action_space());
  session_agent.build();
  fastpath_agent.build();

  // Same seed, same init: both agents start from identical weights.
  const int64_t B = 4;
  const int64_t dim = static_cast<const BoxSpace&>(*env.state_space())
                          .value_shape()
                          .num_elements();
  std::vector<float> s(B * dim), s2(B * dim);
  for (size_t i = 0; i < s.size(); ++i) {
    s[i] = 0.01f * (float)i;
    s2[i] = 0.02f * (float)i;
  }
  std::vector<Tensor> batch = {
      Tensor::from_floats(Shape{B, dim}, s),
      Tensor::from_ints(Shape{B}, {0, 1, 2, 3}),
      Tensor::from_floats(Shape{B}, {1.0f, 0.0f, -1.0f, 0.5f}),
      Tensor::from_floats(Shape{B, dim}, s2),
      Tensor::from_bools(Shape{B}, {false, false, true, false}),
      Tensor::from_floats(Shape{B}, {1.0f, 1.0f, 1.0f, 1.0f}),
  };

  // Call 1 on the define-by-run side dispatches + traces; call 2 onward
  // lowers the trace onto a CompiledPlan and runs it. The static side goes
  // through Session::PreparedCall each time. Weight updates on both sides
  // stay in lockstep, so each call's loss and |td| must agree bitwise.
  for (int call = 0; call < 3; ++call) {
    std::vector<Tensor> a =
        session_agent.executor().execute("update_batch", batch);
    std::vector<Tensor> b =
        fastpath_agent.executor().execute("update_batch", batch);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a[0].to_floats(), b[0].to_floats())
        << "loss diverged on call " << call;
    EXPECT_EQ(a[2].to_floats(), b[2].to_floats())
        << "|td| diverged on call " << call;
  }

  // The two backends' weights must also agree after the updates.
  auto wa = session_agent.get_weights();
  auto wb = fastpath_agent.get_weights();
  ASSERT_EQ(wa.size(), wb.size());
  for (const auto& [name, tensor] : wa) {
    ASSERT_TRUE(wb.count(name)) << name;
    EXPECT_EQ(tensor.to_floats(), wb[name].to_floats()) << name;
  }
}

}  // namespace
}  // namespace rlgraph
