// Execution-layer tests: device map, parameter server, multi-device sync
// trainer, Ape-X executor smoke, and the IMPALA pipeline.
#include <gtest/gtest.h>

#include "execution/apex_executor.h"
#include "execution/device.h"
#include "execution/impala_pipeline.h"
#include "execution/multi_device.h"
#include "execution/param_server.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

TEST(DeviceRegistryTest, EnumeratesVirtualDevices) {
  DeviceRegistry reg(2);
  EXPECT_EQ(reg.devices().size(), 3u);
  EXPECT_TRUE(reg.has_device("/cpu:0"));
  EXPECT_TRUE(reg.has_device("/gpu:1"));
  EXPECT_FALSE(reg.has_device("/gpu:2"));
  EXPECT_EQ(reg.accelerator_names(),
            (std::vector<std::string>{"/gpu:0", "/gpu:1"}));
}

TEST(DeviceMapTest, LongestPrefixWins) {
  DeviceMap map;
  map.assign("agent", "/cpu:0");
  map.assign("agent/policy", "/gpu:0");
  EXPECT_EQ(map.device_for("agent/policy/dense-0"), "/gpu:0");
  EXPECT_EQ(map.device_for("agent/memory"), "/cpu:0");
  EXPECT_EQ(map.device_for("other"), "");
  // "agent/policyx" is NOT under "agent/policy".
  EXPECT_EQ(map.device_for("agent/policyx"), "/cpu:0");
}

TEST(ParameterServerTest, VersionedPullSemantics) {
  ParameterServer ps;
  EXPECT_EQ(ps.version(), 0);
  std::map<std::string, Tensor> w;
  int64_t version = 0;
  EXPECT_FALSE(ps.pull_if_newer(0, &w, &version));
  ps.push({{"w", Tensor::scalar(1.0f)}});
  EXPECT_TRUE(ps.pull_if_newer(0, &w, &version));
  EXPECT_EQ(version, 1);
  EXPECT_FLOAT_EQ(w.at("w").scalar_value(), 1.0f);
  EXPECT_FALSE(ps.pull_if_newer(1, &w, &version));  // up to date
  ps.push({{"w", Tensor::scalar(2.0f)}});
  EXPECT_TRUE(ps.pull_if_newer(1, &w, &version));
  EXPECT_EQ(version, 2);
}

TEST(ParameterServerTest, SnapshotIsImmutableAndShared) {
  ParameterServer ps;
  EXPECT_EQ(ps.snapshot(), nullptr);
  ps.push({{"w", Tensor::scalar(1.0f)}});
  int64_t version = 0;
  auto snap1 = ps.snapshot(&version);
  ASSERT_NE(snap1, nullptr);
  EXPECT_EQ(version, 1);
  EXPECT_FLOAT_EQ(snap1->at("w").scalar_value(), 1.0f);
  // A later push publishes a fresh map; the old snapshot is untouched.
  ps.push({{"w", Tensor::scalar(2.0f)}});
  auto snap2 = ps.snapshot(&version);
  EXPECT_EQ(version, 2);
  EXPECT_FLOAT_EQ(snap1->at("w").scalar_value(), 1.0f);
  EXPECT_FLOAT_EQ(snap2->at("w").scalar_value(), 2.0f);
  EXPECT_NE(snap1.get(), snap2.get());
}

TEST(ParameterServerTest, StalenessGauge) {
  ParameterServer ps;
  MetricRegistry metrics;
  ps.attach_metrics(&metrics, "staleness");
  ps.push({{"w", Tensor::scalar(1.0f)}});
  ps.push({{"w", Tensor::scalar(2.0f)}});
  ps.push({{"w", Tensor::scalar(3.0f)}});
  std::map<std::string, Tensor> w;
  int64_t version = 0;
  // A worker three versions behind records staleness 3 on its pull.
  EXPECT_TRUE(ps.pull_if_newer(0, &w, &version));
  EXPECT_DOUBLE_EQ(metrics.gauge("staleness"), 3.0);
  ps.push({{"w", Tensor::scalar(4.0f)}});
  EXPECT_TRUE(ps.pull_if_newer(version, &w, &version));
  EXPECT_DOUBLE_EQ(metrics.gauge("staleness"), 1.0);
}

Json small_agent_config() {
  return Json::parse(R"({
    "type": "apex",
    "network": [{"type": "dense", "units": 16, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 512},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 0.6, "eps_end": 0.1, "decay_steps": 500},
    "update": {"batch_size": 16, "sync_interval": 20, "min_records": 32}
  })");
}

TEST(MultiDeviceTest, TwoTowersMatchSingleTowerSemantics) {
  // With identical seeds, the two-tower trainer must keep all towers'
  // weights identical after every synchronous step (weight averaging).
  Json env_spec;
  env_spec["type"] = Json("grid_world");
  auto probe = make_environment(env_spec);
  MultiDeviceSyncTrainer trainer(small_agent_config(), probe->state_space(),
                                 probe->action_space(), 2);
  DQNAgent& main = trainer.main_agent();
  // Warm the memory.
  Rng rng(2);
  Tensor s = kernels::random_uniform(Shape{64, 16}, 0, 1, rng);
  Tensor a = kernels::random_int(Shape{64}, 4, rng);
  Tensor r = kernels::random_uniform(Shape{64}, -1, 1, rng);
  main.observe(s, a, r, s,
               Tensor::from_bools(Shape{64}, std::vector<bool>(64, false)));
  double loss = trainer.update();
  EXPECT_GT(loss, 0.0);
  EXPECT_EQ(trainer.updates_done(), 1);
  EXPECT_GT(trainer.simulated_update_seconds(), 0.0);
  EXPECT_LT(trainer.simulated_update_seconds(),
            trainer.measured_update_seconds() + 1e-9);
}

TEST(MultiDeviceTest, NotWarmIsNoOp) {
  Json env_spec;
  env_spec["type"] = Json("grid_world");
  auto probe = make_environment(env_spec);
  MultiDeviceSyncTrainer trainer(small_agent_config(), probe->state_space(),
                                 probe->action_space(), 2);
  EXPECT_DOUBLE_EQ(trainer.update(), 0.0);
}

TEST(ApexExecutorTest, EndToEndSmoke) {
  ApexConfig cfg;
  cfg.agent_config = small_agent_config();
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_workers = 2;
  cfg.envs_per_worker = 2;
  cfg.num_replay_shards = 2;
  cfg.worker_sample_size = 40;
  cfg.min_shard_records = 32;
  cfg.n_step = 3;
  ApexExecutor exec(cfg);
  ApexResult result = exec.run(1.5);
  EXPECT_GT(result.env_frames, 100);
  EXPECT_GT(result.sample_tasks, 2);
  EXPECT_GT(result.learner_updates, 0);
  EXPECT_GT(result.frames_per_second, 0.0);
}

TEST(ApexExecutorTest, SamplingOnlyMode) {
  ApexConfig cfg;
  cfg.agent_config = small_agent_config();
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_workers = 1;
  cfg.envs_per_worker = 2;
  cfg.num_replay_shards = 1;
  cfg.worker_sample_size = 40;
  cfg.learner_updates = false;
  ApexExecutor exec(cfg);
  ApexResult result = exec.run(0.8);
  EXPECT_GT(result.env_frames, 50);
  EXPECT_EQ(result.learner_updates, 0);
}

TEST(ApexWorkerTest, NStepRewardsAccumulate) {
  // One env, deterministic check of the n-step machinery: run a worker task
  // and verify priorities/records come back with the right batch size.
  ApexConfig cfg;
  cfg.agent_config = small_agent_config();
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_workers = 1;
  cfg.envs_per_worker = 1;
  cfg.n_step = 3;
  auto probe = make_environment(cfg.env_spec);
  cfg.state_space = probe->state_space();
  cfg.action_space = probe->action_space();
  cfg.preprocessed_space_ =
      preprocessed_space(cfg.agent_config.get("preprocessor"),
                         cfg.state_space);
  ApexWorker worker(cfg, 0);
  SampleBatch batch = worker.sample(25);
  EXPECT_GE(batch.num_records, 25);
  EXPECT_EQ(batch.states.shape().dim(0), batch.num_records);
  EXPECT_EQ(batch.priorities.shape(), (Shape{batch.num_records}));
  EXPECT_GT(batch.env_frames, 0);
}

TEST(ApexExecutorTest, DestructorWithoutRunIsClean) {
  ApexConfig cfg;
  cfg.agent_config = small_agent_config();
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_workers = 1;
  cfg.num_replay_shards = 1;
  ApexExecutor exec(cfg);
  // No run(): destruction must join/stop all actors without hanging.
}

// When a worker slot exhausts the supervisor's restart budget, the slot is
// tombstoned: subsequent calls resolve to typed ActorLostError futures (not
// the generic ActorDeadError), so coordination loops can tell "gone for
// good, reroute permanently" from "restarting, retry soon" — and the error
// arrives through the ordinary raylite::wait_for path.
TEST(RayExecutorTest, GiveUpTombstonesSlotWithActorLostError) {
  struct Doomed {
    int work() { return 1; }
  };
  RayExecutor<Doomed> executor;
  // The factory always throws: the first spawn fails, and so does every
  // supervised restart, burning the budget.
  executor.spawn_workers(1, [](int) -> std::unique_ptr<Doomed> {
    throw Error("worker machine is on fire");
  });
  SupervisorConfig sup;
  sup.heartbeat_interval_ms = 2.0;
  sup.max_restarts_per_worker = 2;
  sup.backoff_initial_ms = 1.0;
  sup.backoff_max_ms = 4.0;
  executor.start_supervision(sup);

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!executor.supervisor()->gave_up(0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(executor.supervisor()->gave_up(0));

  // The tombstone may be installed just after gave_up flips; wait for it.
  raylite::Future<int> fut;
  bool lost = false;
  while (std::chrono::steady_clock::now() < deadline && !lost) {
    fut = executor.worker_handle(0)->call([](Doomed& d) { return d.work(); });
    std::vector<raylite::UntypedFuture> futures = {fut};
    auto ready =
        raylite::wait_for(futures, 1, std::chrono::milliseconds(5000));
    ASSERT_EQ(ready.size(), 1u);
    try {
      fut.get();
    } catch (const ActorLostError&) {
      lost = true;
    } catch (const ActorDeadError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(lost);
  EXPECT_EQ(executor.supervisor()->restarts(0), 2);
  executor.stop_supervision();
}

TEST(ImpalaPipelineTest, EndToEndSmoke) {
  ImpalaConfig cfg;
  cfg.agent_config = Json::parse(R"({
    "network": [{"type": "dense", "units": 16, "activation": "relu"}],
    "rollout_length": 8, "discount": 0.95,
    "optimizer": {"type": "adam", "learning_rate": 0.001}
  })");
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.num_actors = 2;
  cfg.envs_per_actor = 2;
  cfg.queue_capacity = 4;
  ImpalaPipeline pipeline(cfg);
  ImpalaResult result = pipeline.run(1.5);
  EXPECT_GT(result.env_frames, 50);
  EXPECT_GT(result.rollouts, 2);
  EXPECT_GT(result.learner_updates, 0);
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

}  // namespace
}  // namespace rlgraph
