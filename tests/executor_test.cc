// Tests for GraphExecutor: backend equivalence, fast-path edge contraction,
// graph optimization integration, weight get/set and checkpoint round-trips.
#include <gtest/gtest.h>

#include <cstdio>

#include "components/layers.h"
#include "core/graph_executor.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

std::shared_ptr<Component> make_mlp_root() {
  auto root = std::make_shared<Component>("root");
  auto* l1 = root->add_component(
      std::make_shared<DenseLayer>("l1", 8, Activation::kTanh));
  auto* l2 = root->add_component(std::make_shared<DenseLayer>("l2", 3));
  root->register_api("forward", [l1, l2](BuildContext& ctx, const OpRecs& in) {
    return l2->call_api(ctx, "apply", l1->call_api(ctx, "apply", in));
  });
  return root;
}

std::map<std::string, std::vector<SpacePtr>> mlp_apis() {
  return {{"forward", {FloatBox(Shape{5})->with_batch_rank()}}};
}

TEST(GraphExecutorTest, BackendsProduceIdenticalResults) {
  // Same seed -> same init weights -> identical outputs across backends.
  ExecutorOptions static_opts;
  static_opts.backend = Backend::kStatic;
  static_opts.seed = 99;
  GraphExecutor static_exec(make_mlp_root(), mlp_apis(), static_opts);
  static_exec.build();

  ExecutorOptions imp_opts;
  imp_opts.backend = Backend::kImperative;
  imp_opts.seed = 99;
  GraphExecutor imp_exec(make_mlp_root(), mlp_apis(), imp_opts);
  imp_exec.build();

  Rng rng(5);
  Tensor x = kernels::random_uniform(Shape{4, 5}, -1, 1, rng);
  Tensor ys = static_exec.execute("forward", {x})[0];
  Tensor yi = imp_exec.execute("forward", {x})[0];
  EXPECT_TRUE(ys.all_close(yi, 1e-5));
}

TEST(GraphExecutorTest, FastPathMatchesDispatchedExecution) {
  ExecutorOptions with_fp;
  with_fp.backend = Backend::kImperative;
  with_fp.fast_path = true;
  with_fp.seed = 4;
  GraphExecutor fast(make_mlp_root(), mlp_apis(), with_fp);
  fast.build();

  ExecutorOptions without_fp = with_fp;
  without_fp.fast_path = false;
  GraphExecutor slow(make_mlp_root(), mlp_apis(), without_fp);
  slow.build();

  Rng rng(6);
  for (int i = 0; i < 3; ++i) {
    Tensor x = kernels::random_uniform(Shape{2, 5}, -1, 1, rng);
    // First fast call traces; later calls replay the contracted program.
    Tensor yf = fast.execute("forward", {x})[0];
    Tensor ys = slow.execute("forward", {x})[0];
    EXPECT_TRUE(yf.all_close(ys, 1e-6)) << "iteration " << i;
  }
}

TEST(GraphExecutorTest, OptimizePassesPreserveSemantics) {
  ExecutorOptions opt_on;
  opt_on.seed = 12;
  opt_on.optimize = true;
  GraphExecutor a(make_mlp_root(), mlp_apis(), opt_on);
  a.build();
  ExecutorOptions opt_off = opt_on;
  opt_off.optimize = false;
  GraphExecutor b(make_mlp_root(), mlp_apis(), opt_off);
  b.build();
  EXPECT_LE(a.stats().graph_nodes_after, b.stats().graph_nodes_after);
  Rng rng(7);
  Tensor x = kernels::random_uniform(Shape{3, 5}, -1, 1, rng);
  EXPECT_TRUE(a.execute("forward", {x})[0].all_close(
      b.execute("forward", {x})[0], 1e-6));
}

TEST(GraphExecutorTest, BuildStatsPopulated) {
  GraphExecutor exec(make_mlp_root(), mlp_apis());
  const BuildStats& stats = exec.build();
  EXPECT_EQ(stats.num_components, 3);
  EXPECT_GT(stats.graph_fn_calls, 0);
  EXPECT_GT(stats.graph_nodes_before, 0);
  EXPECT_GE(stats.trace_seconds, 0.0);
  EXPECT_GE(stats.build_seconds, 0.0);
  // Build is idempotent.
  exec.build();
}

TEST(GraphExecutorTest, InputValidation) {
  GraphExecutor exec(make_mlp_root(), mlp_apis());
  exec.build();
  EXPECT_THROW(exec.execute("nope", {}), NotFoundError);
  EXPECT_THROW(exec.execute("forward", {}), ValueError);  // missing input
  // Wrong dtype.
  EXPECT_THROW(
      exec.execute("forward", {Tensor::from_ints(Shape{1, 5},
                                                 {1, 2, 3, 4, 5})}),
      ValueError);
}

TEST(GraphExecutorTest, GetSetWeightsByPrefix) {
  GraphExecutor exec(make_mlp_root(), mlp_apis());
  exec.build();
  auto all = exec.get_weights();
  EXPECT_EQ(all.size(), 4u);  // 2 layers x (weights, bias)
  auto l1_only = exec.get_weights("root/l1");
  EXPECT_EQ(l1_only.size(), 2u);
  // Zero the l1 weights and verify the executor output changes.
  Rng rng(8);
  Tensor x = kernels::random_uniform(Shape{1, 5}, -1, 1, rng);
  Tensor before = exec.execute("forward", {x})[0];
  std::map<std::string, Tensor> zeros;
  for (auto& [name, value] : l1_only) {
    zeros[name] = Tensor::zeros(value.dtype(), value.shape());
  }
  exec.set_weights(zeros);
  Tensor after = exec.execute("forward", {x})[0];
  EXPECT_FALSE(before.all_close(after, 1e-6));
}

TEST(GraphExecutorTest, CheckpointRoundTrip) {
  ExecutorOptions opts;
  opts.seed = 21;
  GraphExecutor a(make_mlp_root(), mlp_apis(), opts);
  a.build();
  Rng rng(9);
  Tensor x = kernels::random_uniform(Shape{2, 5}, -1, 1, rng);
  Tensor y_orig = a.execute("forward", {x})[0];
  std::vector<uint8_t> bytes = a.export_variables();

  ExecutorOptions opts2;
  opts2.seed = 22;  // different init
  GraphExecutor b(make_mlp_root(), mlp_apis(), opts2);
  b.build();
  EXPECT_FALSE(b.execute("forward", {x})[0].all_close(y_orig, 1e-5));
  b.import_variables(bytes);
  EXPECT_TRUE(b.execute("forward", {x})[0].all_close(y_orig, 1e-6));
}

TEST(GraphExecutorTest, CheckpointRejectsGarbage) {
  GraphExecutor exec(make_mlp_root(), mlp_apis());
  exec.build();
  EXPECT_THROW(exec.import_variables({1, 2, 3, 4, 5, 6, 7, 8}), Error);
}

TEST(GraphExecutorTest, SeedsMakeStochasticOpsReproducible) {
  // Two executors with the same seed produce identical random sequences.
  auto make = [](uint64_t seed) {
    auto root = std::make_shared<Component>("root");
    root->register_api("rand", [root_raw = root.get()](BuildContext& ctx,
                                                       const OpRecs& in) {
      return root_raw->graph_fn(
          ctx, "draw",
          [](OpContext& ops, const std::vector<OpRef>& args) {
            return std::vector<OpRef>{
                ops.apply("RandomUniformLike", {args[0]})};
          },
          in);
    });
    ExecutorOptions opts;
    opts.seed = seed;
    auto exec = std::make_unique<GraphExecutor>(
        root,
        std::map<std::string, std::vector<SpacePtr>>{
            {"rand", {FloatBox(Shape{4})->with_batch_rank()}}},
        opts);
    exec->build();
    return exec;
  };
  auto a = make(3), b = make(3), c = make(4);
  Tensor x = Tensor::zeros(DType::kFloat32, Shape{1, 4});
  Tensor ra = a->execute("rand", {x})[0];
  Tensor rb = b->execute("rand", {x})[0];
  Tensor rc = c->execute("rand", {x})[0];
  EXPECT_TRUE(ra.equals(rb));
  EXPECT_FALSE(ra.equals(rc));
}

TEST(GraphExecutorTest, ExecutionCallCounting) {
  GraphExecutor exec(make_mlp_root(), mlp_apis());
  exec.build();
  Tensor x = Tensor::zeros(DType::kFloat32, Shape{1, 5});
  exec.execute("forward", {x});
  exec.execute("forward", {x});
  EXPECT_EQ(exec.execution_calls(), 2);
}

}  // namespace
}  // namespace rlgraph
