// Focused tests for fast-path edge contraction (paper §5.1): recording,
// routing, stateful steps, invalidation, and the contracted program's
// equivalence with dispatched execution.
#include <gtest/gtest.h>

#include "backend/imperative_context.h"
#include "core/build_context.h"
#include "core/fast_path.h"
#include "core/graph_executor.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

TEST(FastPathTest, RecordsAndReplaysLinearChain) {
  VariableStore store;
  Rng rng(1);
  FastPathRecorder recorder;

  GraphFnBody square = [](OpContext& ops, const std::vector<OpRef>& in) {
    return std::vector<OpRef>{ops.square(in[0])};
  };
  GraphFnBody add_one = [](OpContext& ops, const std::vector<OpRef>& in) {
    return std::vector<OpRef>{ops.add(in[0], ops.scalar(1.0f))};
  };

  // Simulate a traced run: input -> square -> add_one.
  ImperativeContext trace(&store, &rng, false);
  OpRef input = trace.literal(Tensor::scalar(3.0f));
  recorder.register_input(input, 0);
  std::vector<OpRef> sq = square(trace, {input});
  recorder.record_step("c/square", square, {input}, sq);
  std::vector<OpRef> out = add_one(trace, {sq[0]});
  recorder.record_step("c/add_one", add_one, {sq[0]}, out);
  FastPathProgram program = recorder.finish(out, 1);

  ASSERT_TRUE(program.valid());
  EXPECT_EQ(program.num_steps(), 2u);
  std::vector<Tensor> result =
      program.run(&store, &rng, {Tensor::scalar(5.0f)});
  EXPECT_FLOAT_EQ(result[0].scalar_value(), 26.0f);
}

TEST(FastPathTest, UnknownRefInvalidates) {
  VariableStore store;
  Rng rng(1);
  FastPathRecorder recorder;
  ImperativeContext trace(&store, &rng, false);
  // Consume a ref that was never registered as an input or produced by a
  // recorded step.
  OpRef orphan = trace.literal(Tensor::scalar(1.0f));
  GraphFnBody body = [](OpContext& ops, const std::vector<OpRef>& in) {
    return std::vector<OpRef>{ops.neg(in[0])};
  };
  std::vector<OpRef> out = body(trace, {orphan});
  recorder.record_step("c/f", body, {orphan}, out);
  FastPathProgram program = recorder.finish(out, 0);
  EXPECT_FALSE(program.valid());
  EXPECT_THROW(program.run(&store, &rng, {}), ValueError);
}

TEST(FastPathTest, MultiOutputRouting) {
  VariableStore store;
  Rng rng(1);
  FastPathRecorder recorder;
  ImperativeContext trace(&store, &rng, false);
  OpRef input = trace.literal(
      Tensor::from_floats(Shape{1, 4}, {1, 2, 3, 4}));
  recorder.register_input(input, 0);
  GraphFnBody splitter = [](OpContext& ops, const std::vector<OpRef>& in) {
    return ops.split(in[0], 1, {2, 2});
  };
  std::vector<OpRef> halves = splitter(trace, {input});
  recorder.record_step("c/split", splitter, {input}, halves);
  GraphFnBody joiner = [](OpContext& ops, const std::vector<OpRef>& in) {
    // Use the SECOND output first to exercise index routing.
    return std::vector<OpRef>{ops.concat({in[1], in[0]}, 1)};
  };
  std::vector<OpRef> joined = joiner(trace, {halves[0], halves[1]});
  recorder.record_step("c/join", joiner, {halves[0], halves[1]}, joined);
  FastPathProgram program = recorder.finish(joined, 1);
  ASSERT_TRUE(program.valid());
  Tensor out = program.run(&store, &rng,
                           {Tensor::from_floats(Shape{1, 4},
                                                {10, 20, 30, 40})})[0];
  EXPECT_EQ(out.to_floats(), (std::vector<float>{30, 40, 10, 20}));
}

TEST(FastPathTest, StatefulStepsRunPerReplay) {
  // A counter variable incremented inside a recorded body must advance on
  // every replay (stateful steps are re-executed, not cached).
  VariableStore store;
  store.create("c/count", Tensor::scalar(0.0f));
  Rng rng(1);
  FastPathRecorder recorder;
  ImperativeContext trace(&store, &rng, false);
  OpRef input = trace.literal(Tensor::scalar(0.0f));
  recorder.register_input(input, 0);
  GraphFnBody body = [](OpContext& ops, const std::vector<OpRef>& in) {
    OpRef c = ops.assign_add("c/count", ops.scalar(1.0f));
    return std::vector<OpRef>{ops.add(in[0], c)};
  };
  std::vector<OpRef> out = body(trace, {input});
  recorder.record_step("c/inc", body, {input}, out);
  FastPathProgram program = recorder.finish(out, 1);
  ASSERT_TRUE(program.valid());
  // Trace itself incremented once.
  EXPECT_FLOAT_EQ(store.get("c/count").scalar_value(), 1.0f);
  program.run(&store, &rng, {Tensor::scalar(0.0f)});
  program.run(&store, &rng, {Tensor::scalar(0.0f)});
  EXPECT_FLOAT_EQ(store.get("c/count").scalar_value(), 3.0f);
}

TEST(FastPathTest, ExecutorContractionReducesDispatch) {
  // End-to-end: the executor's fast path cuts per-call component dispatch.
  // Verified behaviourally: results stay identical while the API keeps
  // functioning across many calls (timing is covered by bench 5b).
  auto make_root = [] {
    auto root = std::make_shared<Component>("root");
    struct Chain : Component {
      explicit Chain(std::string n) : Component(std::move(n)) {
        register_api("f", [this](BuildContext& ctx, const OpRecs& in) {
          return graph_fn(
              ctx, "body",
              [](OpContext& ops, const std::vector<OpRef>& args) {
                return std::vector<OpRef>{ops.tanh(args[0])};
              },
              in);
        });
      }
    };
    auto* c1 = root->add_component(std::make_shared<Chain>("c1"));
    auto* c2 = root->add_component(std::make_shared<Chain>("c2"));
    auto* c3 = root->add_component(std::make_shared<Chain>("c3"));
    root->register_api("run", [c1, c2, c3](BuildContext& ctx,
                                           const OpRecs& in) {
      return c3->call_api(
          ctx, "f", c2->call_api(ctx, "f", c1->call_api(ctx, "f", in)));
    });
    return root;
  };
  ExecutorOptions fast_opts;
  fast_opts.backend = Backend::kImperative;
  fast_opts.fast_path = true;
  GraphExecutor fast(make_root(), {{"run", {FloatBox()->with_batch_rank()}}},
                     fast_opts);
  fast.build();
  ExecutorOptions slow_opts = fast_opts;
  slow_opts.fast_path = false;
  GraphExecutor slow(make_root(), {{"run", {FloatBox()->with_batch_rank()}}},
                     slow_opts);
  slow.build();
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    Tensor x = kernels::random_uniform(Shape{3}, -2, 2, rng);
    EXPECT_TRUE(fast.execute("run", {x})[0].all_close(
        slow.execute("run", {x})[0], 1e-6));
  }
}

}  // namespace
}  // namespace rlgraph
