// Tests for the deterministic fault injector and its actor integration:
// same seed must reproduce the exact injected-failure schedule, and injected
// faults must surface through the future error path / actor health state.
#include <gtest/gtest.h>

#include <vector>

#include "raylite/actor.h"
#include "raylite/fault_injection.h"

namespace rlgraph {
namespace raylite {
namespace {

FaultConfig chaos_config(uint64_t seed) {
  FaultConfig fc;
  fc.crash_prob = 0.05;
  fc.task_failure_prob = 0.2;
  fc.delay_prob = 0.3;
  fc.delay_min_ms = 1.0;
  fc.delay_max_ms = 4.0;
  fc.seed = seed;
  return fc;
}

std::vector<FaultDecision> draw_schedule(FaultInjector& injector, int n) {
  std::vector<FaultDecision> schedule;
  for (int i = 0; i < n; ++i) schedule.push_back(injector.next());
  return schedule;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector a(chaos_config(42));
  FaultInjector b(chaos_config(42));
  std::vector<FaultDecision> sa = draw_schedule(a, 1000);
  std::vector<FaultDecision> sb = draw_schedule(b, 1000);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(a.decisions(), 1000);
  EXPECT_EQ(a.injected_task_failures(), b.injected_task_failures());
  EXPECT_EQ(a.injected_delays(), b.injected_delays());
  EXPECT_EQ(a.injected_crashes(), b.injected_crashes());
  // With these probabilities, 1000 draws inject every category.
  EXPECT_GT(a.injected_task_failures(), 0);
  EXPECT_GT(a.injected_delays(), 0);
  EXPECT_GT(a.injected_crashes(), 0);
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule) {
  FaultInjector a(chaos_config(1));
  FaultInjector b(chaos_config(2));
  EXPECT_NE(draw_schedule(a, 1000), draw_schedule(b, 1000));
}

TEST(FaultInjectorTest, WarmupSuppressesInjection) {
  FaultConfig fc = chaos_config(7);
  fc.task_failure_prob = 1.0;
  fc.crash_prob = 0.0;
  fc.delay_prob = 0.0;
  fc.warmup_tasks = 10;
  FaultInjector injector(fc);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.next().action, FaultAction::kNone);
  }
  EXPECT_EQ(injector.next().action, FaultAction::kFailTask);
}

TEST(FaultInjectorTest, DeterministicCrashFiresExactlyOnce) {
  FaultConfig fc;  // no probabilistic faults
  fc.crash_after_tasks = 3;
  fc.seed = 5;
  FaultInjector injector(fc);
  // Three tasks complete, the fourth crashes.
  EXPECT_EQ(injector.next().action, FaultAction::kNone);
  EXPECT_EQ(injector.next().action, FaultAction::kNone);
  EXPECT_EQ(injector.next().action, FaultAction::kNone);
  EXPECT_EQ(injector.next().action, FaultAction::kCrashActor);
  // A replacement actor sharing the injector continues fault-free.
  EXPECT_EQ(injector.next().action, FaultAction::kNone);
  EXPECT_EQ(injector.injected_crashes(), 1);
}

struct Counter {
  int value = 0;
  int add(int x) {
    value += x;
    return value;
  }
};

TEST(FaultInjectionActorTest, InjectedTaskFailuresErrorFutures) {
  FaultConfig fc;
  fc.task_failure_prob = 1.0;
  fc.warmup_tasks = 2;
  fc.seed = 3;
  auto injector = std::make_shared<FaultInjector>(fc);
  Actor<Counter> actor([] { return std::make_unique<Counter>(); }, injector);
  // Warmup tasks run normally.
  EXPECT_EQ(actor.call([](Counter& c) { return c.add(1); }).get(), 1);
  EXPECT_EQ(actor.call([](Counter& c) { return c.add(1); }).get(), 2);
  // Then every task fails with InjectedFaultError, but the actor survives.
  auto f = actor.call([](Counter& c) { return c.add(1); });
  EXPECT_THROW(f.get(), InjectedFaultError);
  EXPECT_EQ(actor.state(), ActorState::kRunning);
  EXPECT_EQ(injector->injected_task_failures(), 1);
}

TEST(FaultInjectionActorTest, InjectedCrashKillsActorAndPendingTasks) {
  FaultConfig fc;
  fc.crash_after_tasks = 2;
  fc.seed = 3;
  auto injector = std::make_shared<FaultInjector>(fc);
  Actor<Counter> actor([] { return std::make_unique<Counter>(); }, injector);
  EXPECT_EQ(actor.call([](Counter& c) { return c.add(1); }).get(), 1);
  EXPECT_EQ(actor.call([](Counter& c) { return c.add(1); }).get(), 2);
  auto doomed = actor.call([](Counter& c) { return c.add(1); });
  doomed.wait();
  EXPECT_TRUE(doomed.failed());
  EXPECT_THROW(doomed.get(), InjectedFaultError);
  // The crash is observable as actor health, and later calls fail fast.
  auto late = actor.call([](Counter& c) { return c.add(1); });
  EXPECT_THROW(late.get(), ActorDeadError);
  EXPECT_EQ(actor.state(), ActorState::kFailed);
  EXPECT_EQ(injector->injected_crashes(), 1);
}

TEST(FaultInjectionActorTest, InjectedDelaySlowsButCompletes) {
  FaultConfig fc;
  fc.delay_prob = 1.0;
  fc.delay_min_ms = 5.0;
  fc.delay_max_ms = 10.0;
  fc.seed = 11;
  auto injector = std::make_shared<FaultInjector>(fc);
  Actor<Counter> actor([] { return std::make_unique<Counter>(); }, injector);
  EXPECT_EQ(actor.call([](Counter& c) { return c.add(5); }).get(), 5);
  EXPECT_EQ(injector->injected_delays(), 1);
}

}  // namespace
}  // namespace raylite
}  // namespace rlgraph
