// Reusable finite-difference gradient checker.
//
// A "program" is a scalar-loss graph function written against OpContext —
// the same form component graph functions take — so the checker can validate
// the autodiff rules behind every loss and layer without going through a
// full agent build. Gradients from reverse-mode autodiff are compared
// against central differences (f(x+eps) - f(x-eps)) / 2eps element by
// element.
//
// Non-float inputs (int action indices, bool terminal masks) are never
// perturbed: they are not differentiable and finite differences on them are
// meaningless. Callers can further restrict the checked set with
// `check_inputs` — required for programs that route an input exclusively
// through StopGradient (autodiff correctly reports zero there while the
// finite difference sees the true sensitivity).
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "backend/imperative_context.h"
#include "backend/op_context.h"
#include "tensor/tensor.h"

namespace rlgraph {
namespace gradcheck {

// Refs in, scalar loss ref out.
using Program = std::function<OpRef(OpContext&, const std::vector<OpRef>&)>;

struct Options {
  double eps = 1e-3;   // central-difference step
  double rtol = 1e-3;  // relative tolerance
  double atol = 1e-3;  // absolute floor (float32 forward-pass noise)
};

struct Mismatch {
  size_t input = 0;
  int64_t element = 0;
  double autodiff = 0.0;
  double finite_diff = 0.0;
};

struct Result {
  double loss = 0.0;
  int64_t checked_elements = 0;
  std::vector<Mismatch> mismatches;

  bool ok() const { return checked_elements > 0 && mismatches.empty(); }

  std::string describe(const std::string& name) const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s: %lld elements checked, %zu mismatches (loss=%g)",
                  name.c_str(), static_cast<long long>(checked_elements),
                  mismatches.size(), loss);
    std::string out(buf);
    for (const Mismatch& m : mismatches) {
      std::snprintf(buf, sizeof(buf),
                    "\n  input %zu element %lld: autodiff=%.6g fd=%.6g",
                    m.input, static_cast<long long>(m.element), m.autodiff,
                    m.finite_diff);
      out += buf;
    }
    return out;
  }
};

// One imperative evaluation of the program; gradients w.r.t. `wrt` refs.
inline std::pair<double, std::vector<Tensor>> eval_program(
    const Program& program, const std::vector<Tensor>& inputs,
    const std::vector<size_t>& wrt) {
  VariableStore store;
  Rng rng(1);
  ImperativeContext ctx(&store, &rng, /*build_mode=*/false);
  std::vector<OpRef> refs;
  refs.reserve(inputs.size());
  for (const Tensor& t : inputs) refs.push_back(ctx.literal(t));
  OpRef loss = program(ctx, refs);
  std::vector<OpRef> xs;
  for (size_t i : wrt) xs.push_back(refs[i]);
  std::vector<Tensor> grad_values;
  if (!xs.empty()) {
    for (OpRef g : gradients(ctx, loss, xs)) {
      grad_values.push_back(ctx.value(g));
    }
  }
  return {ctx.value(loss).scalar_value(), std::move(grad_values)};
}

inline double eval_loss(const Program& program,
                        const std::vector<Tensor>& inputs) {
  return eval_program(program, inputs, {}).first;
}

// Checks d(program)/d(inputs[i]) for every i in `check_inputs` (default:
// every float32 input) against central differences.
inline Result check(const Program& program, const std::vector<Tensor>& inputs,
                    std::vector<size_t> check_inputs = {},
                    Options opts = Options()) {
  if (check_inputs.empty()) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i].dtype() == DType::kFloat32) check_inputs.push_back(i);
    }
  }
  Result result;
  auto [loss, grads] = eval_program(program, inputs, check_inputs);
  result.loss = loss;
  for (size_t k = 0; k < check_inputs.size(); ++k) {
    const size_t i = check_inputs[k];
    for (int64_t j = 0; j < inputs[i].num_elements(); ++j) {
      std::vector<Tensor> plus = inputs, minus = inputs;
      plus[i] = inputs[i].clone();
      minus[i] = inputs[i].clone();
      plus[i].set_flat(j, inputs[i].at_flat(j) + opts.eps);
      minus[i].set_flat(j, inputs[i].at_flat(j) - opts.eps);
      const double fd =
          (eval_loss(program, plus) - eval_loss(program, minus)) /
          (2.0 * opts.eps);
      const double ad = grads[k].at_flat(j);
      ++result.checked_elements;
      const double bound =
          opts.atol + opts.rtol * std::max(std::abs(ad), std::abs(fd));
      if (!(std::abs(ad - fd) <= bound)) {
        result.mismatches.push_back(Mismatch{i, j, ad, fd});
      }
    }
  }
  return result;
}

}  // namespace gradcheck
}  // namespace rlgraph
