// Numerical gradient checking for the component library: every loss in
// components/losses.h and every layer in components/layers.h, validated
// against central finite differences via tests/gradcheck.h, at two or more
// input shapes each.
//
// Programs mirror the component graph functions op-for-op (the activation
// dispatch IS the shared components/layers.h helper); forward-agreement
// tests at the bottom pin each program to the real component through
// ComponentTest, so the finite-difference validation transfers.
#include <gtest/gtest.h>

#include <cmath>

#include "components/layers.h"
#include "components/losses.h"
#include "components/policy.h"
#include "core/component_test.h"
#include "gradcheck.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

using gradcheck::Program;

struct CheckCase {
  std::string name;
  Program program;
  std::function<std::vector<Tensor>(Rng&)> make_inputs;
  std::vector<size_t> check_inputs;  // empty = every float input
  gradcheck::Options opts;
};

class ComponentGradTest : public ::testing::TestWithParam<CheckCase> {};

TEST_P(ComponentGradTest, AutodiffMatchesFiniteDifferences) {
  const CheckCase& c = GetParam();
  Rng rng(42);
  gradcheck::Result r = gradcheck::check(c.program, c.make_inputs(rng),
                                         c.check_inputs, c.opts);
  EXPECT_TRUE(r.ok()) << r.describe(c.name);
  // A second draw guards against a luckily-passing first sample.
  gradcheck::Result r2 = gradcheck::check(c.program, c.make_inputs(rng),
                                          c.check_inputs, c.opts);
  EXPECT_TRUE(r2.ok()) << r2.describe(c.name + " (second sample)");
}

// --- program factories -------------------------------------------------------

// Dense: y = act(x @ w [+ b]); scalar loss = mean(y^2). The activation goes
// through the real components/layers.h dispatch.
Program dense_program(Activation act, bool use_bias) {
  return [act, use_bias](OpContext& ops, const std::vector<OpRef>& in) {
    OpRef h = ops.matmul(in[0], in[1]);
    if (use_bias) h = ops.add(h, in[2]);
    return ops.reduce_mean(ops.square(apply_activation(ops, act, h)));
  };
}

// Conv2D: y = act(conv(x, f, stride, padding) + b); loss = mean(y^2).
Program conv_program(int64_t stride, bool same_padding, Activation act) {
  return [stride, same_padding, act](OpContext& ops,
                                     const std::vector<OpRef>& in) {
    OpRef h = ops.apply("Conv2D", {in[0], in[1]},
                        {{"stride", stride}, {"same_padding", same_padding}});
    h = ops.add(h, in[2]);
    return ops.reduce_mean(ops.square(apply_activation(ops, act, h)));
  };
}

// Statically unrolled LSTM, mirroring LSTMLayer's graph function.
Program lstm_program(int64_t time, int64_t features, int64_t units) {
  return [time, features, units](OpContext& ops,
                                 const std::vector<OpRef>& in) {
    std::vector<int64_t> sizes(static_cast<size_t>(time), 1);
    std::vector<OpRef> steps = ops.split(in[0], 1, sizes);
    OpRef x0 = ops.squeeze(steps[0], 1);
    OpRef zeros_fxu = ops.constant(
        Tensor::zeros(DType::kFloat32, Shape{features, units}));
    OpRef h = ops.matmul(x0, zeros_fxu);
    OpRef c = h;
    OpRef w = in[1], b = in[2];
    std::vector<OpRef> outputs;
    for (int64_t t = 0; t < time; ++t) {
      OpRef xt = ops.squeeze(steps[static_cast<size_t>(t)], 1);
      OpRef gates = ops.add(ops.matmul(ops.concat({xt, h}, 1), w), b);
      std::vector<OpRef> parts =
          ops.split(gates, 1, {units, units, units, units});
      OpRef i = ops.sigmoid(parts[0]);
      OpRef f = ops.sigmoid(parts[1]);
      OpRef g = ops.tanh(parts[2]);
      OpRef o = ops.sigmoid(parts[3]);
      c = ops.add(ops.mul(f, c), ops.mul(i, g));
      h = ops.mul(o, ops.tanh(c));
      outputs.push_back(ops.expand_dims(h, 1));
    }
    return ops.reduce_mean(ops.square(ops.concat(outputs, 1)));
  };
}

// Softmax cross-entropy: mean over the batch of -sum(p * log_softmax(x)).
Program cross_entropy_program() {
  return [](OpContext& ops, const std::vector<OpRef>& in) {
    OpRef per_row =
        ops.reduce_sum(ops.mul(in[1], ops.log_softmax(in[0])), 1);
    return ops.reduce_mean(ops.neg(per_row));
  };
}

// DQNLoss::get_loss, op-for-op (see components/losses.cc). Inputs:
// (q, actions, rewards, q_next_target, q_next_online, terminals, weights).
Program dqn_program(double discount, bool double_q, double huber_delta) {
  return [discount, double_q, huber_delta](OpContext& ops,
                                           const std::vector<OpRef>& in) {
    OpRef q = in[0], actions = in[1], rewards = in[2];
    OpRef q_next_t = in[3], q_next_o = in[4];
    OpRef terminals = in[5], weights = in[6];
    OpRef q_sa = ops.select_columns(q, actions);
    OpRef next_value;
    if (double_q) {
      next_value = ops.select_columns(q_next_t, ops.argmax(q_next_o));
    } else {
      next_value = ops.reduce_max(q_next_t, 1);
    }
    OpRef not_terminal =
        ops.sub(ops.scalar(1.0f), ops.cast(terminals, DType::kFloat32));
    OpRef target = ops.add(
        rewards, ops.mul(ops.scalar(static_cast<float>(discount)),
                         ops.mul(not_terminal, next_value)));
    target = ops.stop_gradient(target);
    OpRef td = ops.sub(q_sa, target);
    OpRef abs_td = ops.abs(td);
    OpRef delta = ops.scalar(static_cast<float>(huber_delta));
    OpRef quadratic = ops.mul(ops.scalar(0.5f), ops.square(td));
    OpRef linear = ops.mul(
        delta, ops.sub(abs_td, ops.mul(ops.scalar(0.5f), delta)));
    OpRef huber = ops.where(ops.less(abs_td, delta), quadratic, linear);
    return ops.reduce_mean(ops.mul(weights, huber));
  };
}

// --- SAC / squashed-Gaussian programs ----------------------------------------
//
// The log-prob program calls the SAME free function the Policy head builds
// its graph from (components/policy.h), so the finite-difference validation
// covers the exact graph the agent trains — no separate fidelity pin needed.

// Inputs: (u, mean, logstd, log_scale). Loss = mean over the batch of the
// squashed log-prob, exercising the Gaussian density, the log-std path and
// the stable tanh-Jacobian correction together.
Program squashed_logp_program() {
  return [](OpContext& ops, const std::vector<OpRef>& in) {
    return ops.reduce_mean(
        squashed_gaussian_logp(ops, in[0], in[1], in[2], in[3]));
  };
}

// The tanh-correction path in isolation: loss = mean(log(1 - tanh(u)^2))
// via the softplus form 2*(log 2 - u - softplus(-2u)) used by the policy.
Program tanh_correction_program() {
  return [](OpContext& ops, const std::vector<OpRef>& in) {
    OpRef log2 = ops.scalar(0.69314718055994531f);
    OpRef inner = ops.softplus(ops.mul(ops.scalar(-2.0f), in[0]));
    return ops.reduce_mean(
        ops.mul(ops.scalar(2.0f), ops.sub(ops.sub(log2, in[0]), inner)));
  };
}

// SAC actor loss: mean(stop_grad(alpha) * logp - min(q1, q2)).
// Inputs: (alpha, logp, q1, q2).
Program sac_actor_program() {
  return [](OpContext& ops, const std::vector<OpRef>& in) {
    OpRef alpha = ops.stop_gradient(in[0]);
    OpRef min_q = ops.minimum(in[2], in[3]);
    return ops.reduce_mean(ops.sub(ops.mul(alpha, in[1]), min_q));
  };
}

// SAC twin-critic loss, op-for-op with SacAgent's critic_loss graph fn.
// Inputs: (q1, q2, rewards, q1_target, q2_target, logp_next, alpha,
// terminals); the soft Bellman target is stop-gradient'd.
Program sac_critic_program(double discount) {
  return [discount](OpContext& ops, const std::vector<OpRef>& in) {
    OpRef q1 = in[0], q2 = in[1], rewards = in[2];
    OpRef q1t = in[3], q2t = in[4], logp2 = in[5], alpha = in[6];
    OpRef not_terminal =
        ops.sub(ops.scalar(1.0f), ops.cast(in[7], DType::kFloat32));
    OpRef soft_q = ops.sub(ops.minimum(q1t, q2t), ops.mul(alpha, logp2));
    OpRef target = ops.stop_gradient(ops.add(
        rewards, ops.mul(ops.scalar(static_cast<float>(discount)),
                         ops.mul(not_terminal, soft_q))));
    OpRef td1 = ops.square(ops.sub(q1, target));
    OpRef td2 = ops.square(ops.sub(q2, target));
    return ops.reduce_mean(ops.mul(ops.scalar(0.5f), ops.add(td1, td2)));
  };
}

// Entropy-coefficient loss: -log_alpha * (mean(logp) + target_entropy).
// Inputs: (log_alpha scalar, logp).
Program sac_alpha_program(double target_entropy) {
  return [target_entropy](OpContext& ops, const std::vector<OpRef>& in) {
    OpRef mean_logp = ops.reduce_mean(in[1]);
    return ops.neg(ops.mul(
        in[0], ops.add(mean_logp,
                       ops.scalar(static_cast<float>(target_entropy)))));
  };
}

// --- input samplers ----------------------------------------------------------

std::function<std::vector<Tensor>(Rng&)> dense_inputs(
    int64_t batch, int64_t fan_in, int64_t units, double w_lo, double w_hi,
    double b_lo, double b_hi) {
  return [=](Rng& rng) {
    return std::vector<Tensor>{
        kernels::random_uniform(Shape{batch, fan_in}, 0.2, 1.5, rng),
        kernels::random_uniform(Shape{fan_in, units}, w_lo, w_hi, rng),
        kernels::random_uniform(Shape{units}, b_lo, b_hi, rng)};
  };
}

std::function<std::vector<Tensor>(Rng&)> conv_inputs(
    int64_t h, int64_t w, int64_t cin, int64_t k, int64_t filters) {
  return [=](Rng& rng) {
    return std::vector<Tensor>{
        kernels::random_uniform(Shape{1, h, w, cin}, 0.2, 1.5, rng),
        kernels::random_uniform(Shape{k, k, cin, filters}, -0.2, 0.2, rng),
        kernels::random_uniform(Shape{filters}, -0.3, 0.3, rng)};
  };
}

std::function<std::vector<Tensor>(Rng&)> lstm_inputs(
    int64_t batch, int64_t time, int64_t features, int64_t units) {
  return [=](Rng& rng) {
    return std::vector<Tensor>{
        kernels::random_uniform(Shape{batch, time, features}, -1.0, 1.0, rng),
        kernels::random_uniform(Shape{features + units, 4 * units}, -0.5, 0.5,
                                rng),
        kernels::random_uniform(Shape{4 * units}, -0.3, 0.3, rng)};
  };
}

std::function<std::vector<Tensor>(Rng&)> xent_inputs(int64_t batch,
                                                     int64_t classes) {
  return [=](Rng& rng) {
    return std::vector<Tensor>{
        kernels::random_uniform(Shape{batch, classes}, -1.5, 1.5, rng),
        kernels::random_uniform(Shape{batch, classes}, 0.1, 1.0, rng)};
  };
}

// Random DQN batch with a huge Huber delta: every TD error stays in the
// smooth quadratic branch, so finite differences are valid everywhere.
std::function<std::vector<Tensor>(Rng&)> dqn_smooth_inputs(int64_t batch,
                                                           int64_t actions) {
  return [=](Rng& rng) {
    std::vector<int32_t> acts;
    std::vector<bool> terms;
    for (int64_t i = 0; i < batch; ++i) {
      acts.push_back(static_cast<int32_t>(
          rng.uniform(0.0, static_cast<double>(actions)) ));
      terms.push_back(i % 3 == 1);
    }
    for (int32_t& a : acts) a = std::min<int32_t>(a, actions - 1);
    return std::vector<Tensor>{
        kernels::random_uniform(Shape{batch, actions}, 0.2, 1.5, rng),
        Tensor::from_ints(Shape{batch}, acts),
        kernels::random_uniform(Shape{batch}, 0.2, 1.5, rng),
        kernels::random_uniform(Shape{batch, actions}, 0.2, 1.5, rng),
        kernels::random_uniform(Shape{batch, actions}, 0.2, 1.5, rng),
        Tensor::from_bools(Shape{batch}, terms),
        kernels::random_uniform(Shape{batch}, 0.5, 1.5, rng)};
  };
}

// Fixed all-terminal DQN batch with delta = 1: td = q_sa - r lands well
// inside BOTH Huber branches ({0.3, 2.0, -0.5, -1.7}), each at least 0.5
// away from the |td| = delta switch and the |td| = 0 kink.
std::vector<Tensor> dqn_two_branch_inputs(Rng&) {
  return std::vector<Tensor>{
      Tensor::from_floats(Shape{4, 3}, {1.3f, 9.0f, 9.0f,    //
                                        9.0f, 3.0f, 9.0f,    //
                                        9.0f, 9.0f, 0.5f,    //
                                        -0.7f, 9.0f, 9.0f}),
      Tensor::from_ints(Shape{4}, {0, 1, 2, 0}),
      Tensor::from_floats(Shape{4}, {1.0f, 1.0f, 1.0f, 1.0f}),
      Tensor::from_floats(Shape{4, 3}, std::vector<float>(12, 0.0f)),
      Tensor::from_floats(Shape{4, 3}, std::vector<float>(12, 0.0f)),
      Tensor::from_bools(Shape{4}, {true, true, true, true}),
      Tensor::from_floats(Shape{4}, {1.0f, 0.7f, 1.3f, 0.9f})};
}

// rewards / q_next_* / terminals reach the loss only through StopGradient
// (autodiff correctly reports zero; finite differences see the raw
// sensitivity), so only q and the importance weights are checked.
const std::vector<size_t> kDqnCheckedInputs{0, 6};

std::function<std::vector<Tensor>(Rng&)> squashed_logp_inputs(int64_t batch,
                                                              int64_t dim) {
  return [=](Rng& rng) {
    return std::vector<Tensor>{
        kernels::random_uniform(Shape{batch, dim}, -1.5, 1.5, rng),   // u
        kernels::random_uniform(Shape{batch, dim}, -0.8, 0.8, rng),   // mean
        kernels::random_uniform(Shape{batch, dim}, -1.0, 0.5, rng),   // logstd
        kernels::random_uniform(Shape{1, dim}, -0.5, 0.7, rng)};      // scale
  };
}

std::function<std::vector<Tensor>(Rng&)> tanh_correction_inputs(int64_t batch,
                                                                int64_t dim) {
  return [=](Rng& rng) {
    return std::vector<Tensor>{
        kernels::random_uniform(Shape{batch, dim}, -2.5, 2.5, rng)};
  };
}

// q1/q2 sampled from disjoint ranges so min(q1, q2) stays at least 0.3 from
// its kink — finite differences are valid on both sides. `q1_below` flips
// which critic wins so both min branches get covered across cases.
std::function<std::vector<Tensor>(Rng&)> sac_actor_inputs(int64_t batch,
                                                          bool q1_below) {
  return [=](Rng& rng) {
    double lo1 = q1_below ? 0.2 : 1.5, hi1 = q1_below ? 0.9 : 2.2;
    double lo2 = q1_below ? 1.5 : 0.2, hi2 = q1_below ? 2.2 : 0.9;
    return std::vector<Tensor>{
        kernels::random_uniform(Shape{}, 0.1, 0.5, rng),            // alpha
        kernels::random_uniform(Shape{batch}, -2.0, 1.0, rng),      // logp
        kernels::random_uniform(Shape{batch}, lo1, hi1, rng),       // q1
        kernels::random_uniform(Shape{batch}, lo2, hi2, rng)};      // q2
  };
}

std::function<std::vector<Tensor>(Rng&)> sac_critic_inputs(int64_t batch) {
  return [=](Rng& rng) {
    std::vector<bool> terms;
    for (int64_t i = 0; i < batch; ++i) terms.push_back(i % 3 == 1);
    return std::vector<Tensor>{
        kernels::random_uniform(Shape{batch}, -1.0, 1.0, rng),      // q1
        kernels::random_uniform(Shape{batch}, -1.0, 1.0, rng),      // q2
        kernels::random_uniform(Shape{batch}, -1.5, 0.0, rng),      // rewards
        kernels::random_uniform(Shape{batch}, 0.2, 0.9, rng),       // q1t
        kernels::random_uniform(Shape{batch}, 1.2, 1.9, rng),       // q2t
        kernels::random_uniform(Shape{batch}, -2.0, 0.5, rng),      // logp2
        kernels::random_uniform(Shape{}, 0.1, 0.4, rng),            // alpha
        Tensor::from_bools(Shape{batch}, terms)};
  };
}

std::function<std::vector<Tensor>(Rng&)> sac_alpha_inputs(int64_t batch) {
  return [=](Rng& rng) {
    return std::vector<Tensor>{
        kernels::random_uniform(Shape{}, -1.5, 0.5, rng),           // log_alpha
        kernels::random_uniform(Shape{batch}, -3.0, 0.5, rng)};     // logp
  };
}

// Everything past q1/q2 reaches the critic loss only through the
// stop-gradient'd soft Bellman target.
const std::vector<size_t> kSacCriticCheckedInputs{0, 1};
// alpha enters the actor loss through StopGradient.
const std::vector<size_t> kSacActorCheckedInputs{1, 2, 3};

INSTANTIATE_TEST_SUITE_P(
    Losses, ComponentGradTest,
    ::testing::Values(
        CheckCase{"dqn_double_q_small", dqn_program(0.95, true, 100.0),
                  dqn_smooth_inputs(2, 3), kDqnCheckedInputs, {}},
        CheckCase{"dqn_double_q_wide", dqn_program(0.99, false, 100.0),
                  dqn_smooth_inputs(4, 5), kDqnCheckedInputs, {}},
        CheckCase{"dqn_huber_both_branches", dqn_program(0.9, false, 1.0),
                  dqn_two_branch_inputs, kDqnCheckedInputs, {}},
        CheckCase{"cross_entropy_small", cross_entropy_program(),
                  xent_inputs(2, 3), {}, {}},
        CheckCase{"cross_entropy_wide", cross_entropy_program(),
                  xent_inputs(3, 7), {}, {}}));

INSTANTIATE_TEST_SUITE_P(
    SacLosses, ComponentGradTest,
    ::testing::Values(
        CheckCase{"squashed_logp_small", squashed_logp_program(),
                  squashed_logp_inputs(2, 1), {}, {}},
        CheckCase{"squashed_logp_wide", squashed_logp_program(),
                  squashed_logp_inputs(3, 4), {}, {}},
        CheckCase{"tanh_correction_small", tanh_correction_program(),
                  tanh_correction_inputs(2, 2), {}, {}},
        CheckCase{"tanh_correction_wide", tanh_correction_program(),
                  tanh_correction_inputs(4, 3), {}, {}},
        CheckCase{"sac_actor_q1_wins", sac_actor_program(),
                  sac_actor_inputs(3, true), kSacActorCheckedInputs, {}},
        CheckCase{"sac_actor_q2_wins", sac_actor_program(),
                  sac_actor_inputs(4, false), kSacActorCheckedInputs, {}},
        CheckCase{"sac_critic_small", sac_critic_program(0.95),
                  sac_critic_inputs(3), kSacCriticCheckedInputs, {}},
        CheckCase{"sac_critic_wide", sac_critic_program(0.99),
                  sac_critic_inputs(6), kSacCriticCheckedInputs, {}},
        CheckCase{"sac_alpha_small", sac_alpha_program(-1.0),
                  sac_alpha_inputs(3), {}, {}},
        CheckCase{"sac_alpha_wide", sac_alpha_program(-2.0),
                  sac_alpha_inputs(8), {}, {}}));

INSTANTIATE_TEST_SUITE_P(
    DenseLayers, ComponentGradTest,
    ::testing::Values(
        CheckCase{"dense_linear_small",
                  dense_program(Activation::kNone, true),
                  dense_inputs(2, 3, 4, -0.5, 0.5, -0.3, 0.3), {}, {}},
        CheckCase{"dense_linear_wide",
                  dense_program(Activation::kNone, true),
                  dense_inputs(4, 5, 2, -0.5, 0.5, -0.3, 0.3), {}, {}},
        CheckCase{"dense_relu_active_small",
                  dense_program(Activation::kRelu, true),
                  dense_inputs(2, 3, 4, 0.2, 0.9, 0.1, 0.3), {}, {}},
        CheckCase{"dense_relu_active_wide",
                  dense_program(Activation::kRelu, true),
                  dense_inputs(3, 4, 2, 0.2, 0.9, 0.1, 0.3), {}, {}},
        // Strictly negative pre-activations: the dead branch must have an
        // exactly-zero gradient on both sides.
        CheckCase{"dense_relu_dead",
                  dense_program(Activation::kRelu, false),
                  dense_inputs(2, 3, 4, -0.9, -0.2, 0.0, 0.0), {0, 1}, {}},
        CheckCase{"dense_tanh_small",
                  dense_program(Activation::kTanh, true),
                  dense_inputs(2, 3, 4, -0.5, 0.5, -0.3, 0.3), {}, {}},
        CheckCase{"dense_tanh_wide",
                  dense_program(Activation::kTanh, true),
                  dense_inputs(4, 5, 3, -0.5, 0.5, -0.3, 0.3), {}, {}},
        CheckCase{"dense_sigmoid_small",
                  dense_program(Activation::kSigmoid, true),
                  dense_inputs(2, 3, 4, -0.5, 0.5, -0.3, 0.3), {}, {}},
        CheckCase{"dense_sigmoid_wide",
                  dense_program(Activation::kSigmoid, true),
                  dense_inputs(3, 2, 5, -0.5, 0.5, -0.3, 0.3), {}, {}},
        CheckCase{"dense_softmax_small",
                  dense_program(Activation::kSoftmax, true),
                  dense_inputs(2, 3, 4, -0.5, 0.5, -0.3, 0.3), {}, {}},
        CheckCase{"dense_softmax_wide",
                  dense_program(Activation::kSoftmax, true),
                  dense_inputs(3, 4, 3, -0.5, 0.5, -0.3, 0.3), {}, {}},
        CheckCase{"dense_no_bias",
                  dense_program(Activation::kTanh, false),
                  dense_inputs(2, 3, 4, -0.5, 0.5, 0.0, 0.0), {0, 1}, {}}));

INSTANTIATE_TEST_SUITE_P(
    ConvAndRecurrentLayers, ComponentGradTest,
    ::testing::Values(
        CheckCase{"conv_valid_stride1",
                  conv_program(1, false, Activation::kNone),
                  conv_inputs(4, 4, 2, 3, 2), {}, {}},
        CheckCase{"conv_same_stride2",
                  conv_program(2, true, Activation::kSigmoid),
                  conv_inputs(5, 5, 1, 3, 3), {}, {}},
        CheckCase{"conv_valid_stride2_tanh",
                  conv_program(2, false, Activation::kTanh),
                  conv_inputs(5, 5, 2, 2, 2), {}, {}},
        CheckCase{"lstm_small", lstm_program(3, 2, 3),
                  lstm_inputs(1, 3, 2, 3), {}, {}},
        CheckCase{"lstm_wide", lstm_program(2, 3, 4),
                  lstm_inputs(2, 2, 3, 4), {}, {}}));

// --- forward agreement with the real components ------------------------------
//
// The FD validation above is only as good as the programs' fidelity to the
// component graph functions; these tests pin them together by injecting the
// program's weights into a built component and comparing outputs.

Tensor eval_forward(const std::function<OpRef(OpContext&,
                                              const std::vector<OpRef>&)>& fn,
                    const std::vector<Tensor>& inputs) {
  VariableStore store;
  Rng rng(1);
  ImperativeContext ctx(&store, &rng, /*build_mode=*/false);
  std::vector<OpRef> refs;
  for (const Tensor& t : inputs) refs.push_back(ctx.literal(t));
  return ctx.value(fn(ctx, refs));
}

ComponentTest make_layer_test(std::shared_ptr<Component> layer,
                              SpacePtr input_space) {
  auto root = std::make_shared<Component>("root");
  auto* l = root->add_component(std::move(layer));
  root->register_api("apply", [l](BuildContext& ctx, const OpRecs& in) {
    return l->call_api(ctx, "apply", in);
  });
  return ComponentTest(root, {{"apply", {std::move(input_space)}}});
}

TEST(GradCheckFidelityTest, DenseProgramMatchesDenseLayer) {
  auto test = make_layer_test(
      std::make_shared<DenseLayer>("dense", 4, Activation::kTanh),
      FloatBox(Shape{3})->with_batch_rank());
  Rng rng(7);
  Tensor x = kernels::random_uniform(Shape{2, 3}, -1.0, 1.0, rng);
  Tensor w = test.executor().variables().get("root/dense/weights");
  Tensor b = test.executor().variables().get("root/dense/bias");
  Tensor program_out = eval_forward(
      [](OpContext& ops, const std::vector<OpRef>& in) {
        return apply_activation(ops, Activation::kTanh,
                                ops.add(ops.matmul(in[0], in[1]), in[2]));
      },
      {x, w, b});
  Tensor layer_out = test.test("apply", {x})[0];
  EXPECT_TRUE(program_out.all_close(layer_out, 1e-5));
}

TEST(GradCheckFidelityTest, ConvProgramMatchesConv2DLayer) {
  auto test = make_layer_test(
      std::make_shared<Conv2DLayer>("conv", 3, 3, 2, /*same_padding=*/true),
      FloatBox(Shape{5, 5, 1})->with_batch_rank());
  Rng rng(9);
  Tensor x = kernels::random_uniform(Shape{1, 5, 5, 1}, -1.0, 1.0, rng);
  Tensor f = test.executor().variables().get("root/conv/filters");
  Tensor b = test.executor().variables().get("root/conv/bias");
  Tensor program_out = eval_forward(
      [](OpContext& ops, const std::vector<OpRef>& in) {
        OpRef h = ops.apply("Conv2D", {in[0], in[1]},
                            {{"stride", int64_t{2}},
                             {"same_padding", true}});
        return ops.add(h, in[2]);
      },
      {x, f, b});
  Tensor layer_out = test.test("apply", {x})[0];
  EXPECT_TRUE(program_out.all_close(layer_out, 1e-5));
}

TEST(GradCheckFidelityTest, DQNProgramMatchesDQNLoss) {
  auto root = std::make_shared<Component>("root");
  auto* loss = root->add_component(
      std::make_shared<DQNLoss>("loss", 0.95, /*double_dqn=*/true, 1.0));
  root->register_api("get_loss", [loss](BuildContext& ctx, const OpRecs& in) {
    return loss->call_api(ctx, "get_loss", in);
  });
  SpacePtr q = FloatBox(Shape{3})->with_batch_rank();
  SpacePtr a = IntBox(3)->with_batch_rank();
  SpacePtr f = FloatBox()->with_batch_rank();
  SpacePtr b = BoolBox()->with_batch_rank();
  ComponentTest test(root, {{"get_loss", {q, a, f, q, q, b, f}}});

  Rng rng(11);
  std::vector<Tensor> inputs = dqn_smooth_inputs(3, 3)(rng);
  double program_loss =
      gradcheck::eval_loss(dqn_program(0.95, true, 1.0), inputs);
  Tensor component_loss = test.test("get_loss", inputs)[0];
  EXPECT_NEAR(program_loss, component_loss.scalar_value(), 1e-5);
}

}  // namespace
}  // namespace rlgraph
