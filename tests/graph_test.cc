// Tests for the dataflow IR: GraphDef, op schemas, and the Session
// evaluator (feeds/fetches, stateful ops, plan caching, control deps).
#include <gtest/gtest.h>

#include "backend/static_context.h"
#include "graph/session.h"

namespace rlgraph {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : rng_(7), ctx_(&store_, &rng_) {}

  Session make_session() { return Session(ctx_.graph(), &store_, &rng_); }

  VariableStore store_;
  Rng rng_;
  StaticGraphContext ctx_;
};

TEST_F(SessionTest, EvaluatesConstants) {
  OpRef a = ctx_.constant(Tensor::scalar(2.0f));
  OpRef b = ctx_.constant(Tensor::scalar(3.0f));
  OpRef c = ctx_.add(a, b);
  Session s = make_session();
  auto out = s.run({{c.node, c.index}}, {});
  EXPECT_FLOAT_EQ(out[0].scalar_value(), 5.0f);
}

TEST_F(SessionTest, FeedsPlaceholders) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim, 2});
  OpRef y = ctx_.mul(x, ctx_.scalar(3.0f));
  Session s = make_session();
  FeedMap feeds;
  feeds[x.node] = Tensor::from_floats(Shape{2, 2}, {1, 2, 3, 4});
  auto out = s.run({{y.node, y.index}}, feeds);
  EXPECT_EQ(out[0].to_floats(), (std::vector<float>{3, 6, 9, 12}));
}

TEST_F(SessionTest, MissingFeedThrows) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{2});
  OpRef y = ctx_.neg(x);
  Session s = make_session();
  EXPECT_THROW(s.run({{y.node, y.index}}, {}), ValueError);
}

TEST_F(SessionTest, FeedValidation) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim, 2});
  Session s = make_session();
  FeedMap bad_dtype;
  bad_dtype[x.node] = Tensor::from_ints(Shape{1, 2}, {1, 2});
  EXPECT_THROW(s.run({{x.node, 0}}, bad_dtype), ValueError);
  FeedMap bad_shape;
  bad_shape[x.node] = Tensor::from_floats(Shape{3}, {1, 2, 3});
  EXPECT_THROW(s.run({{x.node, 0}}, bad_shape), ValueError);
}

TEST_F(SessionTest, VariablesPersistAcrossRuns) {
  ctx_.create_variable("counter", Tensor::scalar(0.0f));
  OpRef inc = ctx_.assign_add("counter", ctx_.scalar(1.0f));
  Session s = make_session();
  EXPECT_FLOAT_EQ(s.run({{inc.node, 0}}, {})[0].scalar_value(), 1.0f);
  EXPECT_FLOAT_EQ(s.run({{inc.node, 0}}, {})[0].scalar_value(), 2.0f);
  EXPECT_FLOAT_EQ(store_.get("counter").scalar_value(), 2.0f);
}

TEST_F(SessionTest, StatefulOpsRunOncePerInvocation) {
  ctx_.create_variable("v", Tensor::scalar(0.0f));
  OpRef inc = ctx_.assign_add("v", ctx_.scalar(1.0f));
  // Two consumers of the same assign node: must not double-apply.
  OpRef a = ctx_.add(inc, ctx_.scalar(0.0f));
  OpRef b = ctx_.mul(inc, ctx_.scalar(1.0f));
  Session s = make_session();
  auto out = s.run({{a.node, 0}, {b.node, 0}}, {});
  EXPECT_FLOAT_EQ(out[0].scalar_value(), 1.0f);
  EXPECT_FLOAT_EQ(out[1].scalar_value(), 1.0f);
  EXPECT_FLOAT_EQ(store_.get("v").scalar_value(), 1.0f);
}

TEST_F(SessionTest, OnlyFetchedSubgraphExecutes) {
  ctx_.create_variable("side", Tensor::scalar(0.0f));
  OpRef touched = ctx_.assign_add("side", ctx_.scalar(1.0f));
  OpRef untouched = ctx_.scalar(5.0f);
  (void)touched;
  Session s = make_session();
  s.run({{untouched.node, 0}}, {});
  // The assign was not in the fetched subgraph: variable unchanged.
  EXPECT_FLOAT_EQ(store_.get("side").scalar_value(), 0.0f);
}

TEST_F(SessionTest, MultiOutputSplit) {
  OpRef x = ctx_.constant(Tensor::from_floats(Shape{2, 3}, {1, 2, 3, 4, 5, 6}));
  std::vector<OpRef> parts = ctx_.split(x, 1, {1, 2});
  Session s = make_session();
  auto out = s.run({{parts[0].node, parts[0].index},
                    {parts[1].node, parts[1].index}},
                   {});
  EXPECT_EQ(out[0].to_floats(), (std::vector<float>{1, 4}));
  EXPECT_EQ(out[1].to_floats(), (std::vector<float>{2, 3, 5, 6}));
}

TEST_F(SessionTest, CustomStatefulKernel) {
  int calls = 0;
  auto refs = ctx_.apply_custom(
      "custom",
      [&calls](const std::vector<Tensor>& in) {
        ++calls;
        return std::vector<Tensor>{
            Tensor::scalar(static_cast<float>(in[0].scalar_value() * 2))};
      },
      {ctx_.scalar(4.0f)}, {DType::kFloat32}, {Shape{}});
  Session s = make_session();
  EXPECT_FLOAT_EQ(s.run({{refs[0].node, 0}}, {})[0].scalar_value(), 8.0f);
  s.run({{refs[0].node, 0}}, {});
  EXPECT_EQ(calls, 2);  // re-executed every run (stateful)
}

TEST_F(SessionTest, PlanCacheReused) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{});
  OpRef y = ctx_.square(x);
  Session s = make_session();
  FeedMap feeds;
  feeds[x.node] = Tensor::scalar(3.0f);
  s.run({{y.node, 0}}, feeds);
  int64_t nodes_after_one = s.nodes_executed();
  feeds[x.node] = Tensor::scalar(4.0f);
  auto out = s.run({{y.node, 0}}, feeds);
  EXPECT_FLOAT_EQ(out[0].scalar_value(), 16.0f);
  // Same per-run node count: plan cached, no rebuild side effects.
  EXPECT_EQ(s.nodes_executed(), 2 * nodes_after_one);
  EXPECT_EQ(s.num_runs(), 2);
}

TEST_F(SessionTest, ControlDependenciesForceOrdering) {
  // A node with a control input on an assign observes the assigned value
  // even without a data dependency.
  ctx_.create_variable("flag", Tensor::scalar(0.0f));
  OpRef assign = ctx_.assign("flag", ctx_.scalar(5.0f));
  OpRef read = ctx_.variable("flag");
  // Manually add the control edge: read must run after assign.
  // (Contexts do not expose control edges directly; patch the graph.)
  auto graph = ctx_.graph();
  graph->mutable_node(read.node).control_inputs.push_back(assign.node);
  Session s = make_session();
  Tensor out = s.run({{read.node, 0}}, {})[0];
  EXPECT_FLOAT_EQ(out.scalar_value(), 5.0f);
}

TEST_F(SessionTest, FetchOrderDefinesResultOrder) {
  OpRef a = ctx_.scalar(1.0f);
  OpRef b = ctx_.scalar(2.0f);
  Session s = make_session();
  auto out = s.run({{b.node, 0}, {a.node, 0}}, {});
  EXPECT_FLOAT_EQ(out[0].scalar_value(), 2.0f);
  EXPECT_FLOAT_EQ(out[1].scalar_value(), 1.0f);
}

TEST(GraphDefTest, UniquifiesNames) {
  GraphDef g;
  NodeDef n1;
  n1.op = "Const";
  n1.name = "x";
  n1.attrs["value"] = Tensor::scalar(1.0f);
  n1.out_dtypes = {DType::kFloat32};
  n1.out_shapes = {Shape{}};
  NodeDef n2 = n1;
  int id1 = g.add_node(n1);
  int id2 = g.add_node(n2);
  EXPECT_NE(g.node(id1).name, g.node(id2).name);
  EXPECT_EQ(g.node_by_name(g.node(id2).name), id2);
  EXPECT_THROW(g.node_by_name("nope"), NotFoundError);
}

TEST(GraphDefTest, RejectsForwardReferences) {
  GraphDef g;
  NodeDef bad;
  bad.op = "Neg";
  bad.inputs = {Endpoint{5, 0}};
  bad.out_dtypes = {DType::kFloat32};
  bad.out_shapes = {Shape{}};
  EXPECT_THROW(g.add_node(bad), ValueError);
}

TEST(OpRegistryTest, LookupAndUnknownOp) {
  const OpRegistry& reg = OpRegistry::instance();
  EXPECT_TRUE(reg.contains("MatMul"));
  EXPECT_TRUE(reg.contains("CustomStateful"));
  EXPECT_FALSE(reg.contains("NoSuchOp"));
  EXPECT_THROW(reg.lookup("NoSuchOp"), NotFoundError);
  EXPECT_GT(reg.op_names().size(), 40u);
}

TEST(VariableStoreTest, LifecycleAndValidation) {
  VariableStore store;
  store.create("w", Tensor::from_floats(Shape{2}, {1, 2}));
  EXPECT_TRUE(store.exists("w"));
  EXPECT_THROW(store.create("w", Tensor::scalar(0.0f)), ValueError);
  EXPECT_THROW(store.get("missing"), NotFoundError);
  // Signature-changing assignment rejected.
  EXPECT_THROW(store.set("w", Tensor::scalar(0.0f)), ValueError);
  store.set("w", Tensor::from_floats(Shape{2}, {3, 4}));
  EXPECT_FLOAT_EQ(store.get("w").data<float>()[1], 4.0f);
}

}  // namespace
}  // namespace rlgraph
