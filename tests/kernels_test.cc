// Tests for the numeric kernels, including parameterized broadcasting sweeps
// and convolution forward/backward checks against naive references.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/kernels.h"

namespace rlgraph {
namespace {

using kernels::add;
using kernels::mul;

Tensor floats(const Shape& s, std::vector<float> v) {
  return Tensor::from_floats(s, std::move(v));
}

TEST(KernelsTest, ElementwiseBinary) {
  Tensor a = floats(Shape{3}, {1, 2, 3});
  Tensor b = floats(Shape{3}, {10, 20, 30});
  EXPECT_EQ(add(a, b).to_floats(), (std::vector<float>{11, 22, 33}));
  EXPECT_EQ(kernels::sub(b, a).to_floats(), (std::vector<float>{9, 18, 27}));
  EXPECT_EQ(mul(a, b).to_floats(), (std::vector<float>{10, 40, 90}));
  EXPECT_EQ(kernels::div(b, a).to_floats(),
            (std::vector<float>{10, 10, 10}));
  EXPECT_EQ(kernels::minimum(a, floats(Shape{3}, {2, 1, 5})).to_floats(),
            (std::vector<float>{1, 1, 3}));
  EXPECT_EQ(kernels::maximum(a, floats(Shape{3}, {2, 1, 5})).to_floats(),
            (std::vector<float>{2, 2, 5}));
}

TEST(KernelsTest, IntElementwise) {
  Tensor a = Tensor::from_ints(Shape{2}, {3, 4});
  Tensor b = Tensor::from_ints(Shape{2}, {1, 2});
  EXPECT_EQ(add(a, b).to_ints(), (std::vector<int32_t>{4, 6}));
  EXPECT_THROW(add(a, floats(Shape{2}, {1, 2})), ValueError);
}

// Parameterized broadcasting sweep: (a shape, b shape, expected shape).
struct BroadcastCase {
  Shape a, b, expected;
};
class BroadcastTest : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastTest, AddMatchesPerElementReference) {
  const BroadcastCase& c = GetParam();
  Rng rng(77);
  Tensor a = kernels::random_uniform(c.a, -2, 2, rng);
  Tensor b = kernels::random_uniform(c.b, -2, 2, rng);
  Tensor out = add(a, b);
  ASSERT_EQ(out.shape(), c.expected);
  // Reference: compute via explicit multi-index arithmetic.
  int rank = c.expected.rank();
  std::vector<int64_t> idx(static_cast<size_t>(rank), 0);
  for (int64_t flat = 0; flat < out.num_elements(); ++flat) {
    auto source_index = [&](const Shape& s) {
      int64_t si = 0, stride = 1;
      for (int d = s.rank() - 1, od = rank - 1; d >= 0; --d, --od) {
        int64_t coord = s.dim(d) == 1 ? 0 : idx[static_cast<size_t>(od)];
        si += coord * stride;
        stride *= s.dim(d);
      }
      return si;
    };
    float expected = a.data<float>()[source_index(c.a)] +
                     b.data<float>()[source_index(c.b)];
    EXPECT_FLOAT_EQ(out.data<float>()[flat], expected) << "flat=" << flat;
    for (int d = rank - 1; d >= 0; --d) {
      if (++idx[static_cast<size_t>(d)] < c.expected.dim(d)) break;
      idx[static_cast<size_t>(d)] = 0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastTest,
    ::testing::Values(
        BroadcastCase{Shape{4}, Shape{4}, Shape{4}},
        BroadcastCase{Shape{2, 3}, Shape{3}, Shape{2, 3}},
        BroadcastCase{Shape{2, 3}, Shape{}, Shape{2, 3}},
        BroadcastCase{Shape{2, 1}, Shape{1, 5}, Shape{2, 5}},
        BroadcastCase{Shape{3, 1, 2}, Shape{4, 1}, Shape{3, 4, 2}},
        BroadcastCase{Shape{1}, Shape{5}, Shape{5}},
        BroadcastCase{Shape{2, 2, 2}, Shape{2, 2, 2}, Shape{2, 2, 2}}));

TEST(KernelsTest, UnaryOps) {
  Tensor x = floats(Shape{4}, {-1, 0, 2, -3});
  EXPECT_EQ(kernels::relu(x).to_floats(), (std::vector<float>{0, 0, 2, 0}));
  EXPECT_EQ(kernels::neg(x).to_floats(), (std::vector<float>{1, 0, -2, 3}));
  EXPECT_EQ(kernels::abs(x).to_floats(), (std::vector<float>{1, 0, 2, 3}));
  EXPECT_EQ(kernels::square(x).to_floats(),
            (std::vector<float>{1, 0, 4, 9}));
  EXPECT_FLOAT_EQ(kernels::sigmoid(floats(Shape{1}, {0})).to_floats()[0],
                  0.5f);
  EXPECT_EQ(kernels::clip(x, -1.5, 1.5).to_floats(),
            (std::vector<float>{-1, 0, 1.5, -1.5}));
}

TEST(KernelsTest, Comparisons) {
  Tensor a = floats(Shape{3}, {1, 2, 3});
  Tensor b = floats(Shape{3}, {2, 2, 2});
  Tensor g = kernels::greater(a, b);
  EXPECT_EQ(g.dtype(), DType::kBool);
  EXPECT_EQ(g.data<uint8_t>()[0], 0);
  EXPECT_EQ(g.data<uint8_t>()[2], 1);
  Tensor e = kernels::equal(a, b);
  EXPECT_EQ(e.data<uint8_t>()[1], 1);
  Tensor l = kernels::less(a, b);
  EXPECT_EQ(l.data<uint8_t>()[0], 1);
  Tensor both = kernels::logical_and(g, kernels::logical_not(l));
  EXPECT_EQ(both.data<uint8_t>()[2], 1);
}

TEST(KernelsTest, Where) {
  Tensor cond = Tensor::from_bools(Shape{2}, {true, false});
  Tensor a = floats(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = floats(Shape{2, 2}, {9, 9, 9, 9});
  // Per-row select: cond [2] against values [2, 2].
  EXPECT_EQ(kernels::where(cond, a, b).to_floats(),
            (std::vector<float>{1, 2, 9, 9}));
}

TEST(KernelsTest, MatMul) {
  Tensor a = floats(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = floats(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = kernels::matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.to_floats(), (std::vector<float>{58, 64, 139, 154}));
  EXPECT_THROW(kernels::matmul(a, a), ValueError);
}

TEST(KernelsTest, Transpose2D) {
  Tensor a = floats(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(kernels::transpose2d(a).to_floats(),
            (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

// Naive conv reference for validation.
Tensor naive_conv(const Tensor& in, const Tensor& f, int stride, bool same) {
  int64_t B = in.shape().dim(0), H = in.shape().dim(1), W = in.shape().dim(2),
          C = in.shape().dim(3);
  int64_t kh = f.shape().dim(0), kw = f.shape().dim(1),
          O = f.shape().dim(3);
  int64_t oh, ow, ph = 0, pw = 0;
  if (same) {
    oh = (H + stride - 1) / stride;
    ow = (W + stride - 1) / stride;
    ph = std::max<int64_t>(0, ((oh - 1) * stride + kh - H)) / 2;
    pw = std::max<int64_t>(0, ((ow - 1) * stride + kw - W)) / 2;
  } else {
    oh = (H - kh) / stride + 1;
    ow = (W - kw) / stride + 1;
  }
  Tensor out = Tensor::zeros(DType::kFloat32, Shape{B, oh, ow, O});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t y = 0; y < oh; ++y)
      for (int64_t x = 0; x < ow; ++x)
        for (int64_t o = 0; o < O; ++o) {
          double acc = 0;
          for (int64_t fy = 0; fy < kh; ++fy)
            for (int64_t fx = 0; fx < kw; ++fx)
              for (int64_t c = 0; c < C; ++c) {
                int64_t iy = y * stride + fy - ph;
                int64_t ix = x * stride + fx - pw;
                if (iy < 0 || iy >= H || ix < 0 || ix >= W) continue;
                acc += in.at_flat(((b * H + iy) * W + ix) * C + c) *
                       f.at_flat(((fy * kw + fx) * C + c) * O + o);
              }
          out.set_flat(((b * oh + y) * ow + x) * O + o, acc);
        }
  return out;
}

struct ConvCase {
  int64_t h, w, c, k, filters;
  int stride;
  bool same;
};
class ConvTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvTest, MatchesNaiveReference) {
  const ConvCase& p = GetParam();
  Rng rng(123);
  Tensor in = kernels::random_uniform(Shape{2, p.h, p.w, p.c}, -1, 1, rng);
  Tensor f =
      kernels::random_uniform(Shape{p.k, p.k, p.c, p.filters}, -1, 1, rng);
  Tensor got = kernels::conv2d(in, f, p.stride, p.same);
  Tensor want = naive_conv(in, f, p.stride, p.same);
  EXPECT_TRUE(got.all_close(want, 1e-4))
      << got.to_string() << " vs " << want.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConvTest,
    ::testing::Values(ConvCase{5, 5, 1, 3, 2, 1, false},
                      ConvCase{8, 8, 3, 3, 4, 2, false},
                      ConvCase{6, 6, 2, 2, 3, 2, false},
                      ConvCase{5, 5, 1, 3, 2, 1, true},
                      ConvCase{7, 9, 2, 3, 2, 2, true}));

TEST(KernelsTest, ConvBackwardShapesAndFiniteDiff) {
  Rng rng(9);
  Shape in_shape{1, 4, 4, 1};
  Shape f_shape{2, 2, 1, 2};
  Tensor in = kernels::random_uniform(in_shape, -1, 1, rng);
  Tensor f = kernels::random_uniform(f_shape, -1, 1, rng);
  Tensor out = kernels::conv2d(in, f, 1, false);
  // Loss = sum(out); grad_out = ones.
  Tensor gout = Tensor::filled(DType::kFloat32, out.shape(), 1.0);
  Tensor gin = kernels::conv2d_backprop_input(in_shape, f, gout, 1, false);
  Tensor gf = kernels::conv2d_backprop_filter(in, f_shape, gout, 1, false);
  ASSERT_EQ(gin.shape(), in_shape);
  ASSERT_EQ(gf.shape(), f_shape);
  auto loss = [&](const Tensor& input, const Tensor& filter) {
    Tensor o = kernels::conv2d(input, filter, 1, false);
    double s = 0;
    for (int64_t i = 0; i < o.num_elements(); ++i) s += o.at_flat(i);
    return s;
  };
  const double eps = 1e-3;
  for (int64_t i = 0; i < in.num_elements(); i += 3) {
    Tensor p = in.clone(), m = in.clone();
    p.set_flat(i, in.at_flat(i) + eps);
    m.set_flat(i, in.at_flat(i) - eps);
    double fd = (loss(p, f) - loss(m, f)) / (2 * eps);
    EXPECT_NEAR(gin.at_flat(i), fd, 1e-2);
  }
  for (int64_t i = 0; i < f.num_elements(); ++i) {
    Tensor p = f.clone(), m = f.clone();
    p.set_flat(i, f.at_flat(i) + eps);
    m.set_flat(i, f.at_flat(i) - eps);
    double fd = (loss(in, p) - loss(in, m)) / (2 * eps);
    EXPECT_NEAR(gf.at_flat(i), fd, 1e-2);
  }
}

TEST(KernelsTest, Reductions) {
  Tensor x = floats(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(kernels::reduce_sum(x, -1, false).scalar_value(), 21.0);
  EXPECT_FLOAT_EQ(kernels::reduce_mean(x, -1, false).scalar_value(), 3.5);
  EXPECT_FLOAT_EQ(kernels::reduce_max(x, -1, false).scalar_value(), 6.0);
  EXPECT_EQ(kernels::reduce_sum(x, 0, false).to_floats(),
            (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(kernels::reduce_sum(x, 1, false).to_floats(),
            (std::vector<float>{6, 15}));
  EXPECT_EQ(kernels::reduce_mean(x, 1, true).shape(), (Shape{2, 1}));
  EXPECT_EQ(kernels::reduce_max(x, 0, false).to_floats(),
            (std::vector<float>{4, 5, 6}));
}

TEST(KernelsTest, SumToShape) {
  Tensor x = floats(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(kernels::sum_to_shape(x, Shape{3}).to_floats(),
            (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(kernels::sum_to_shape(x, Shape{2, 1}).to_floats(),
            (std::vector<float>{6, 15}));
  EXPECT_FLOAT_EQ(kernels::sum_to_shape(x, Shape{}).scalar_value(), 21.0);
  EXPECT_TRUE(kernels::sum_to_shape(x, Shape{2, 3}).equals(x));
}

TEST(KernelsTest, SoftmaxProperties) {
  Tensor x = floats(Shape{2, 3}, {1, 2, 3, 1000, 1000, 1000});
  Tensor s = kernels::softmax(x);
  // Rows sum to 1, even in the numerically-extreme row.
  for (int r = 0; r < 2; ++r) {
    float sum = 0;
    for (int c = 0; c < 3; ++c) sum += s.data<float>()[r * 3 + c];
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  EXPECT_NEAR(s.data<float>()[3], 1.0f / 3, 1e-5);
  // log_softmax = log(softmax).
  Tensor ls = kernels::log_softmax(x);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(ls.data<float>()[i], std::log(s.data<float>()[i]), 1e-5);
  }
}

TEST(KernelsTest, ArgmaxOneHotSelect) {
  Tensor q = floats(Shape{2, 3}, {1, 5, 2, 9, 0, 3});
  Tensor am = kernels::argmax(q);
  EXPECT_EQ(am.to_ints(), (std::vector<int32_t>{1, 0}));
  Tensor oh = kernels::one_hot(am, 3);
  EXPECT_EQ(oh.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(oh.data<float>()[1], 1.0f);
  EXPECT_FLOAT_EQ(oh.data<float>()[3], 1.0f);
  Tensor sel = kernels::select_columns(q, am);
  EXPECT_EQ(sel.to_floats(), (std::vector<float>{5, 9}));
  EXPECT_THROW(kernels::one_hot(Tensor::from_ints(Shape{1}, {5}), 3),
               ValueError);
}

TEST(KernelsTest, GatherRows) {
  Tensor params = floats(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor idx = Tensor::from_ints(Shape{2}, {2, 0});
  Tensor out = kernels::gather_rows(params, idx);
  EXPECT_EQ(out.to_floats(), (std::vector<float>{5, 6, 1, 2}));
  EXPECT_THROW(
      kernels::gather_rows(params, Tensor::from_ints(Shape{1}, {3})),
      ValueError);
}

TEST(KernelsTest, ConcatSplitSlice) {
  Tensor a = floats(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = floats(Shape{1, 2}, {5, 6});
  Tensor cat0 = kernels::concat({a, b}, 0);
  EXPECT_EQ(cat0.shape(), (Shape{3, 2}));
  EXPECT_EQ(cat0.to_floats(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
  Tensor c = floats(Shape{2, 1}, {9, 10});
  Tensor cat1 = kernels::concat({a, c}, 1);
  EXPECT_EQ(cat1.to_floats(), (std::vector<float>{1, 2, 9, 3, 4, 10}));
  auto parts = kernels::split(cat1, 1, {2, 1});
  EXPECT_TRUE(parts[0].equals(a));
  EXPECT_TRUE(parts[1].equals(c));
  Tensor sl = kernels::slice_rows(cat0, 1, 2);
  EXPECT_EQ(sl.to_floats(), (std::vector<float>{3, 4, 5, 6}));
  EXPECT_THROW(kernels::slice_rows(cat0, 2, 2), ValueError);
}

TEST(KernelsTest, StackRows) {
  Tensor a = floats(Shape{2}, {1, 2});
  Tensor b = floats(Shape{2}, {3, 4});
  Tensor s = kernels::stack_rows({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.to_floats(), (std::vector<float>{1, 2, 3, 4}));
}

TEST(KernelsTest, RandomKernels) {
  Rng rng(42);
  Tensor u = kernels::random_uniform(Shape{100}, 2, 3, rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(u.data<float>()[i], 2.0f);
    EXPECT_LT(u.data<float>()[i], 3.0f);
  }
  Tensor ri = kernels::random_int(Shape{100}, 4, rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(ri.data<int32_t>()[i], 0);
    EXPECT_LT(ri.data<int32_t>()[i], 4);
  }
}

}  // namespace
}  // namespace rlgraph
