// Tests for layer components, NeuralNetwork stacks, Policy heads,
// preprocessors and exploration.
#include <gtest/gtest.h>

#include "components/exploration.h"
#include "components/layers.h"
#include "components/neural_network.h"
#include "components/policy.h"
#include "components/preprocessors.h"
#include "core/component_test.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

ComponentTest make_layer_test(std::shared_ptr<Component> layer,
                              SpacePtr input_space,
                              Backend backend = Backend::kStatic) {
  auto root = std::make_shared<Component>("root");
  auto* l = root->add_component(std::move(layer));
  root->register_api("apply", [l](BuildContext& ctx, const OpRecs& in) {
    return l->call_api(ctx, "apply", in);
  });
  ExecutorOptions opts;
  opts.backend = backend;
  return ComponentTest(root, {{"apply", {std::move(input_space)}}}, opts);
}

TEST(DenseLayerTest, OutputShapeAndDeterminism) {
  auto test = make_layer_test(
      std::make_shared<DenseLayer>("dense", 8, Activation::kRelu),
      FloatBox(Shape{4})->with_batch_rank());
  Tensor x = Tensor::from_floats(Shape{3, 4},
                                 std::vector<float>(12, 0.5f));
  Tensor y1 = test.test("apply", {x})[0];
  Tensor y2 = test.test("apply", {x})[0];
  EXPECT_EQ(y1.shape(), (Shape{3, 2 * 4}));
  EXPECT_TRUE(y1.equals(y2));
  // ReLU output is non-negative.
  for (int64_t i = 0; i < y1.num_elements(); ++i) {
    EXPECT_GE(y1.at_flat(i), 0.0f);
  }
}

TEST(DenseLayerTest, VariablesScopedAndShaped) {
  auto layer = std::make_shared<DenseLayer>("dense", 6);
  auto test =
      make_layer_test(layer, FloatBox(Shape{3})->with_batch_rank());
  VariableStore& vars = test.executor().variables();
  EXPECT_EQ(vars.get("root/dense/weights").shape(), (Shape{3, 6}));
  EXPECT_EQ(vars.get("root/dense/bias").shape(), (Shape{6}));
}

TEST(DenseLayerTest, RejectsSpatialInput) {
  EXPECT_THROW(
      make_layer_test(std::make_shared<DenseLayer>("dense", 4),
                      FloatBox(Shape{2, 2})->with_batch_rank()),
      ValueError);
}

TEST(Conv2DLayerTest, OutputShape) {
  auto test = make_layer_test(
      std::make_shared<Conv2DLayer>("conv", 5, 3, 2),
      FloatBox(Shape{9, 9, 2})->with_batch_rank());
  Tensor x = Tensor::zeros(DType::kFloat32, Shape{2, 9, 9, 2});
  Tensor y = test.test("apply", {x})[0];
  EXPECT_EQ(y.shape(), (Shape{2, 4, 4, 5}));
}

TEST(LSTMLayerTest, SequenceOutputShape) {
  auto test = make_layer_test(
      std::make_shared<LSTMLayer>("lstm", 6),
      FloatBox(Shape{5, 3})->with_batch_rank());  // [B, T=5, F=3]
  Tensor x = Tensor::zeros(DType::kFloat32, Shape{2, 5, 3});
  Tensor y = test.test("apply", {x})[0];
  EXPECT_EQ(y.shape(), (Shape{2, 5, 6}));
  // Zero input with zero-init weights except forget bias: h stays 0.
  // (Weights are random; just sanity-check values are bounded by tanh.)
  for (int64_t i = 0; i < y.num_elements(); ++i) {
    EXPECT_LE(std::abs(y.at_flat(i)), 1.0);
  }
}

TEST(LSTMLayerTest, TimeDependence) {
  auto test = make_layer_test(
      std::make_shared<LSTMLayer>("lstm", 4),
      FloatBox(Shape{3, 2})->with_batch_rank());
  Rng rng(8);
  Tensor x = kernels::random_uniform(Shape{1, 3, 2}, -1, 1, rng);
  Tensor y = test.test("apply", {x})[0];
  // Changing the first time step must change later outputs (state flows).
  Tensor x2 = x.clone();
  x2.set_flat(0, x.at_flat(0) + 1.0);
  Tensor y2 = test.test("apply", {x2})[0];
  EXPECT_FALSE(y.all_close(y2, 1e-6));
}

TEST(NeuralNetworkTest, ConvToDenseAutoFlatten) {
  Json config = Json::parse(R"([
    {"type": "conv2d", "filters": 4, "kernel": 3, "stride": 2,
     "activation": "relu"},
    {"type": "dense", "units": 10, "activation": "tanh"}
  ])");
  auto test = make_layer_test(
      std::make_shared<NeuralNetwork>("net", config),
      FloatBox(Shape{9, 9, 1})->with_batch_rank());
  Tensor y = test.test("apply",
                       {Tensor::zeros(DType::kFloat32, Shape{3, 9, 9, 1})})[0];
  EXPECT_EQ(y.shape(), (Shape{3, 10}));
}

TEST(NeuralNetworkTest, RejectsUnknownLayerType) {
  EXPECT_THROW(NeuralNetwork("net", Json::parse(R"([{"type": "quantum"}])")),
               ConfigError);
  EXPECT_THROW(NeuralNetwork("net", Json::parse(R"({"not": "a list"})")),
               Error);  // config validation
}

TEST(ActivationTest, ParsesNames) {
  EXPECT_EQ(activation_from_string("relu"), Activation::kRelu);
  EXPECT_EQ(activation_from_string(""), Activation::kNone);
  EXPECT_EQ(activation_from_string("linear"), Activation::kNone);
  EXPECT_THROW(activation_from_string("swishish"), ConfigError);
}

// --- Policy heads ------------------------------------------------------------

ComponentTest make_policy_test(PolicyHead head, int64_t actions = 3) {
  Json network = Json::parse(R"([{"type": "dense", "units": 8,
                                  "activation": "tanh"}])");
  auto policy =
      std::make_shared<Policy>("policy", network, IntBox(actions), head);
  std::map<std::string, std::vector<SpacePtr>> apis;
  SpacePtr state = FloatBox(Shape{4})->with_batch_rank();
  if (head == PolicyHead::kCategorical) {
    apis = {{"get_logits_value", {state}},
            {"sample_action", {state}},
            {"get_action", {state}}};
  } else {
    apis = {{"get_q_values", {state}}, {"get_action", {state}}};
  }
  return ComponentTest(std::move(policy), std::move(apis));
}

TEST(PolicyTest, QHeadShapes) {
  auto test = make_policy_test(PolicyHead::kQValues);
  auto q = test.test_with_sampled_inputs("get_q_values", 6);
  EXPECT_EQ(q[0].shape(), (Shape{6, 3}));
}

TEST(PolicyTest, DuelingDecomposition) {
  // Dueling Q-values satisfy: Q - V = A - mean(A), so mean_a(Q(s, a)) = V.
  auto test = make_policy_test(PolicyHead::kDuelingQ);
  auto q = test.test_with_sampled_inputs("get_q_values", 4);
  // mean over actions of (Q - mean(Q)) == 0 by construction.
  Tensor mean_q = kernels::reduce_mean(q[0], 1, false);
  Tensor centered = kernels::sub(q[0], kernels::reduce_mean(q[0], 1, true));
  Tensor remean = kernels::reduce_mean(centered, 1, false);
  for (int64_t i = 0; i < remean.num_elements(); ++i) {
    EXPECT_NEAR(remean.at_flat(i), 0.0, 1e-5);
  }
  (void)mean_q;
}

TEST(PolicyTest, GreedyActionMatchesArgmaxOfQ) {
  auto test = make_policy_test(PolicyHead::kDuelingQ);
  Rng rng(3);
  Tensor s = kernels::random_uniform(Shape{5, 4}, -1, 1, rng);
  Tensor q = test.test("get_q_values", {s})[0];
  Tensor a = test.test("get_action", {s})[0];
  EXPECT_TRUE(a.equals(kernels::argmax(q)));
}

TEST(PolicyTest, CategoricalHeadsAndSampling) {
  auto test = make_policy_test(PolicyHead::kCategorical, 4);
  auto lv = test.test_with_sampled_inputs("get_logits_value", 3);
  ASSERT_EQ(lv.size(), 2u);
  EXPECT_EQ(lv[0].shape(), (Shape{3, 4}));  // logits
  EXPECT_EQ(lv[1].shape(), (Shape{3, 1}));  // value
  auto sampled = test.test_with_sampled_inputs("sample_action", 50);
  std::set<int32_t> seen;
  for (int i = 0; i < 50; ++i) {
    int32_t a = sampled[0].data<int32_t>()[i];
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
    seen.insert(a);
  }
  // Random-weight logits are near-uniform: sampling should hit several
  // distinct actions.
  EXPECT_GE(seen.size(), 2u);
}

TEST(PolicyTest, RequiresCategoricalActionSpace) {
  Json network = Json::parse(R"([{"type": "dense", "units": 4}])");
  EXPECT_THROW(Policy("p", network, FloatBox(Shape{2}),
                      PolicyHead::kQValues),
               ValueError);
}

// --- Preprocessors -------------------------------------------------------------

ComponentTest make_preproc_test(const std::string& config,
                                SpacePtr input_space) {
  auto root = std::make_shared<Component>("root");
  auto* stack = root->add_component(
      std::make_shared<PreprocessorStack>("pre", Json::parse(config)));
  root->register_api("preprocess",
                     [stack](BuildContext& ctx, const OpRecs& in) {
                       return stack->call_api(ctx, "preprocess", in);
                     });
  root->register_api("reset", [stack](BuildContext& ctx, const OpRecs& in) {
    return stack->call_api(ctx, "reset", in);
  });
  return ComponentTest(root, {{"preprocess", {std::move(input_space)}},
                              {"reset", {}}});
}

TEST(PreprocessorTest, GrayscaleAveragesChannels) {
  auto test = make_preproc_test(R"([{"type": "grayscale"}])",
                                FloatBox(Shape{2, 2, 3})->with_batch_rank());
  Tensor x = Tensor::filled(DType::kFloat32, Shape{1, 2, 2, 3}, 0.0);
  x.set_flat(0, 0.3);
  x.set_flat(1, 0.6);
  x.set_flat(2, 0.9);
  Tensor y = test.test("preprocess", {x})[0];
  EXPECT_EQ(y.shape(), (Shape{1, 2, 2, 1}));
  EXPECT_NEAR(y.at_flat(0), 0.6, 1e-6);
}

TEST(PreprocessorTest, RescaleAndClip) {
  auto test = make_preproc_test(
      R"([{"type": "rescale", "scale": 2.0, "offset": 1.0},
          {"type": "clip", "lo": 0.0, "hi": 4.0}])",
      FloatBox(Shape{2})->with_batch_rank());
  Tensor x = Tensor::from_floats(Shape{1, 2}, {-3.0f, 1.0f});
  Tensor y = test.test("preprocess", {x})[0];
  EXPECT_EQ(y.to_floats(), (std::vector<float>{0.0f, 3.0f}));
}

TEST(PreprocessorTest, FrameStackAccumulatesHistory) {
  auto test = make_preproc_test(
      R"([{"type": "frame_stack", "num_frames": 3}])",
      FloatBox(Shape{1, 1, 1})->with_batch_rank());
  auto frame = [](float v) {
    return Tensor::filled(DType::kFloat32, Shape{2, 1, 1, 1}, v);
  };
  Tensor y1 = test.test("preprocess", {frame(1)})[0];
  EXPECT_EQ(y1.shape(), (Shape{2, 1, 1, 3}));
  // First frame left-padded with itself.
  EXPECT_EQ(kernels::slice_rows(y1, 0, 1).to_floats(),
            (std::vector<float>{1, 1, 1}));
  test.test("preprocess", {frame(2)});
  Tensor y3 = test.test("preprocess", {frame(3)})[0];
  EXPECT_EQ(kernels::slice_rows(y3, 0, 1).to_floats(),
            (std::vector<float>{1, 2, 3}));
  // Reset clears history.
  test.test("reset", {});
  Tensor y4 = test.test("preprocess", {frame(9)})[0];
  EXPECT_EQ(kernels::slice_rows(y4, 0, 1).to_floats(),
            (std::vector<float>{9, 9, 9}));
}

TEST(PreprocessorTest, StagesComposeInOrder) {
  auto test = make_preproc_test(
      R"([{"type": "grayscale"},
          {"type": "rescale", "scale": 10.0}])",
      FloatBox(Shape{1, 1, 2})->with_batch_rank());
  Tensor x = Tensor::from_floats(Shape{1, 1, 1, 2}, {0.2f, 0.4f});
  Tensor y = test.test("preprocess", {x})[0];
  EXPECT_NEAR(y.scalar_value(), 3.0, 1e-5);
}

// --- Exploration -----------------------------------------------------------------

TEST(ExplorationTest, EpsilonDecaysTowardGreedy) {
  auto root = std::make_shared<Component>("root");
  auto* expl = root->add_component(std::make_shared<EpsilonGreedy>(
      "expl", 4, /*eps_start=*/1.0, /*eps_end=*/0.0, /*decay_steps=*/50));
  root->register_api("act", [expl](BuildContext& ctx, const OpRecs& in) {
    return expl->call_api(ctx, "get_action", in);
  });
  ComponentTest test(root,
                     {{"act", {FloatBox(Shape{4})->with_batch_rank()}}});
  // Q-values strongly favour action 2.
  Tensor q = Tensor::from_floats(Shape{1, 4}, {0, 0, 100, 0});
  int greedy_early = 0, greedy_late = 0;
  for (int i = 0; i < 50; ++i) {
    if (test.test("act", {q})[0].to_ints()[0] == 2) ++greedy_early;
  }
  for (int i = 0; i < 50; ++i) {
    if (test.test("act", {q})[0].to_ints()[0] == 2) ++greedy_late;
  }
  // Early: mostly random (~25% hit rate on 4 actions); late: all greedy.
  EXPECT_LT(greedy_early, 35);
  EXPECT_GE(greedy_late, 48);
}

}  // namespace
}  // namespace rlgraph
