// Tests for loss components: DQN loss against hand-computed values, V-trace
// against a slow reference, and the IMPALA loss contract.
#include <gtest/gtest.h>

#include <cmath>

#include "components/losses.h"
#include "components/vtrace.h"
#include "core/component_test.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

ComponentTest make_dqn_loss_test(double discount, bool double_q,
                                 double huber_delta = 1.0) {
  auto root = std::make_shared<Component>("root");
  auto* loss = root->add_component(
      std::make_shared<DQNLoss>("loss", discount, double_q, huber_delta));
  root->register_api("get_loss", [loss](BuildContext& ctx, const OpRecs& in) {
    return loss->call_api(ctx, "get_loss", in);
  });
  SpacePtr q = FloatBox(Shape{2})->with_batch_rank();
  SpacePtr a = IntBox(2)->with_batch_rank();
  SpacePtr f = FloatBox()->with_batch_rank();
  SpacePtr b = BoolBox()->with_batch_rank();
  return ComponentTest(root, {{"get_loss", {q, a, f, q, q, b, f}}});
}

TEST(DQNLossTest, HandComputedSingleTransition) {
  // Q(s) = [1, 2], a = 0, r = 1, Q_t(s') = [0.5, 3], non-terminal,
  // gamma = 0.9, plain max target: target = 1 + 0.9*3 = 3.7,
  // td = 1 - 3.7 = -2.7, |td| = 2.7, huber(delta=1) = 2.7 - 0.5 = 2.2.
  auto test = make_dqn_loss_test(0.9, /*double_q=*/false);
  auto out = test.test(
      "get_loss",
      {Tensor::from_floats(Shape{1, 2}, {1, 2}),
       Tensor::from_ints(Shape{1}, {0}),
       Tensor::from_floats(Shape{1}, {1}),
       Tensor::from_floats(Shape{1, 2}, {0.5f, 3}),
       Tensor::from_floats(Shape{1, 2}, {0, 0}),
       Tensor::from_bools(Shape{1}, {false}),
       Tensor::from_floats(Shape{1}, {1})});
  EXPECT_NEAR(out[0].scalar_value(), 2.2, 1e-5);
  EXPECT_NEAR(out[1].at_flat(0), 2.7, 1e-5);
}

TEST(DQNLossTest, TerminalMasksBootstrap) {
  // Terminal: target = r = 1; td = Q(s,a) - 1 = 0 -> loss 0.
  auto test = make_dqn_loss_test(0.9, false);
  auto out = test.test(
      "get_loss",
      {Tensor::from_floats(Shape{1, 2}, {1, 2}),
       Tensor::from_ints(Shape{1}, {0}),
       Tensor::from_floats(Shape{1}, {1}),
       Tensor::from_floats(Shape{1, 2}, {100, 100}),
       Tensor::from_floats(Shape{1, 2}, {100, 100}),
       Tensor::from_bools(Shape{1}, {true}),
       Tensor::from_floats(Shape{1}, {1})});
  EXPECT_NEAR(out[0].scalar_value(), 0.0, 1e-6);
}

TEST(DQNLossTest, DoubleQUsesOnlineSelection) {
  // Online net argmax picks action 0; target net evaluates it (0.5), so
  // target = 1 + 0.9*0.5 = 1.45 (NOT 1 + 0.9*3 = 3.7).
  auto test = make_dqn_loss_test(0.9, /*double_q=*/true);
  auto out = test.test(
      "get_loss",
      {Tensor::from_floats(Shape{1, 2}, {1.45f, 0}),
       Tensor::from_ints(Shape{1}, {0}),
       Tensor::from_floats(Shape{1}, {1}),
       Tensor::from_floats(Shape{1, 2}, {0.5f, 3.0f}),   // target net
       Tensor::from_floats(Shape{1, 2}, {10.0f, 1.0f}),  // online net
       Tensor::from_bools(Shape{1}, {false}),
       Tensor::from_floats(Shape{1}, {1})});
  EXPECT_NEAR(out[0].scalar_value(), 0.0, 1e-5);
}

TEST(DQNLossTest, ImportanceWeightsScaleLoss) {
  auto test = make_dqn_loss_test(0.0, false);
  auto run = [&](float w) {
    return test.test(
        "get_loss",
        {Tensor::from_floats(Shape{1, 2}, {0.5f, 0}),
         Tensor::from_ints(Shape{1}, {0}),
         Tensor::from_floats(Shape{1}, {0}),
         Tensor::from_floats(Shape{1, 2}, {0, 0}),
         Tensor::from_floats(Shape{1, 2}, {0, 0}),
         Tensor::from_bools(Shape{1}, {false}),
         Tensor::from_floats(Shape{1}, {w})})[0]
        .scalar_value();
  };
  EXPECT_NEAR(run(2.0f), 2.0 * run(1.0f), 1e-6);
}

TEST(DQNLossTest, HuberQuadraticInsideDelta) {
  // |td| = 0.5 < delta: loss = 0.5 * td^2 = 0.125.
  auto test = make_dqn_loss_test(0.0, false);
  auto out = test.test(
      "get_loss",
      {Tensor::from_floats(Shape{1, 2}, {0.5f, 0}),
       Tensor::from_ints(Shape{1}, {0}),
       Tensor::from_floats(Shape{1}, {0}),
       Tensor::from_floats(Shape{1, 2}, {0, 0}),
       Tensor::from_floats(Shape{1, 2}, {0, 0}),
       Tensor::from_bools(Shape{1}, {false}),
       Tensor::from_floats(Shape{1}, {1})});
  EXPECT_NEAR(out[0].scalar_value(), 0.125, 1e-6);
}

// --- V-trace -----------------------------------------------------------------

// Slow, obviously-correct forward implementation of the v-trace recursion
// from the IMPALA paper.
VTraceResult vtrace_reference(const std::vector<float>& log_rhos,
                              const std::vector<float>& discounts,
                              const std::vector<float>& rewards,
                              const std::vector<float>& values,
                              const std::vector<float>& bootstrap,
                              int64_t batch, int64_t time, double rho_bar,
                              double pg_rho_bar) {
  VTraceResult out;
  out.vs.resize(static_cast<size_t>(batch * time));
  out.pg_advantages.resize(static_cast<size_t>(batch * time));
  for (int64_t b = 0; b < batch; ++b) {
    auto V = [&](int64_t t) {
      return t == time ? bootstrap[static_cast<size_t>(b)]
                       : values[static_cast<size_t>(b * time + t)];
    };
    // vs_s = V(s) + sum_{t>=s} gamma^{t-s} (prod c) delta_t — computed
    // directly from the definition, O(T^2).
    for (int64_t s = 0; s < time; ++s) {
      double acc = V(s);
      for (int64_t t = s; t < time; ++t) {
        double prod = 1.0;
        for (int64_t i = s; i < t; ++i) {
          size_t ii = static_cast<size_t>(b * time + i);
          prod *= discounts[ii] * std::min(1.0, static_cast<double>(std::exp(log_rhos[ii])));
        }
        size_t tt = static_cast<size_t>(b * time + t);
        double rho = std::min(rho_bar, static_cast<double>(std::exp(log_rhos[tt])));
        double delta =
            rho * (rewards[tt] + discounts[tt] * V(t + 1) - V(t));
        acc += prod * delta;
      }
      out.vs[static_cast<size_t>(b * time + s)] = static_cast<float>(acc);
    }
    for (int64_t s = 0; s < time; ++s) {
      size_t ss = static_cast<size_t>(b * time + s);
      double vs_next = s == time - 1
                           ? bootstrap[static_cast<size_t>(b)]
                           : out.vs[ss + 1];
      double rho = std::min(pg_rho_bar, static_cast<double>(std::exp(log_rhos[ss])));
      out.pg_advantages[ss] = static_cast<float>(
          rho * (rewards[ss] + discounts[ss] * vs_next - V(s)));
    }
  }
  return out;
}

class VTraceTest : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {
};

TEST_P(VTraceTest, MatchesQuadraticReference) {
  auto [batch, time] = GetParam();
  Rng rng(static_cast<uint64_t>(batch * 100 + time));
  size_t n = static_cast<size_t>(batch * time);
  std::vector<float> log_rhos(n), discounts(n), rewards(n), values(n);
  std::vector<float> bootstrap(static_cast<size_t>(batch));
  for (size_t i = 0; i < n; ++i) {
    log_rhos[i] = static_cast<float>(rng.uniform(-0.8, 0.8));
    discounts[i] = rng.bernoulli(0.1) ? 0.0f : 0.95f;
    rewards[i] = static_cast<float>(rng.uniform(-1, 1));
    values[i] = static_cast<float>(rng.uniform(-2, 2));
  }
  for (auto& b : bootstrap) b = static_cast<float>(rng.uniform(-2, 2));

  VTraceResult fast = vtrace_from_log_rhos(log_rhos, discounts, rewards,
                                           values, bootstrap, batch, time);
  VTraceResult slow = vtrace_reference(log_rhos, discounts, rewards, values,
                                       bootstrap, batch, time, 1.0, 1.0);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast.vs[i], slow.vs[i], 1e-3) << "vs[" << i << "]";
    EXPECT_NEAR(fast.pg_advantages[i], slow.pg_advantages[i], 1e-3)
        << "pg[" << i << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, VTraceTest,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(1, 5),
                                           std::make_pair(3, 8),
                                           std::make_pair(2, 20)));

TEST(VTraceTest, OnPolicyReducesToNStepReturn) {
  // With log_rhos = 0 (on-policy) and no clipping active, vs equals the
  // discounted n-step return bootstrap.
  int64_t T = 3;
  std::vector<float> log_rhos(static_cast<size_t>(T), 0.0f);
  std::vector<float> discounts(static_cast<size_t>(T), 0.9f);
  std::vector<float> rewards{1.0f, 2.0f, 3.0f};
  std::vector<float> values{0.0f, 0.0f, 0.0f};
  std::vector<float> bootstrap{10.0f};
  VTraceResult r = vtrace_from_log_rhos(log_rhos, discounts, rewards, values,
                                        bootstrap, 1, T);
  // vs_0 = 1 + 0.9*(2 + 0.9*(3 + 0.9*10)) = 1 + 0.9*2 + 0.81*3 + 0.729*10.
  EXPECT_NEAR(r.vs[0], 1 + 0.9 * 2 + 0.81 * 3 + 0.729 * 10, 1e-4);
}

TEST(VTraceTest, InputValidation) {
  EXPECT_THROW(vtrace_from_log_rhos({0.0f}, {0.9f}, {1.0f}, {0.0f},
                                    {0.0f, 0.0f}, 1, 1),
               ValueError);
}

// --- IMPALA loss ----------------------------------------------------------------

TEST(IMPALALossTest, OutputsAndEntropySign) {
  int64_t T = 4, A = 3;
  auto root = std::make_shared<Component>("root");
  auto* loss = root->add_component(std::make_shared<IMPALALoss>(
      "loss", 0.99, 0.5, 0.01));
  root->register_api("get_loss", [loss](BuildContext& ctx, const OpRecs& in) {
    return loss->call_api(ctx, "get_loss", in);
  });
  SpacePtr logits = FloatBox(Shape{T, A})->with_batch_rank();
  SpacePtr bt_f = FloatBox(Shape{T})->with_batch_rank();
  SpacePtr bt_i = IntBox(A, Shape{T})->with_batch_rank();
  SpacePtr bt_b = BoolBox(Shape{T})->with_batch_rank();
  SpacePtr b_f = FloatBox()->with_batch_rank();
  ComponentTest test(root, {{"get_loss",
                             {logits, logits, bt_i, bt_f, bt_b, bt_f, b_f}}});
  auto out = test.test_with_sampled_inputs("get_loss", /*batch=*/2);
  ASSERT_EQ(out.size(), 4u);  // loss, pg, value, entropy
  for (const Tensor& t : out) EXPECT_EQ(t.shape(), Shape{});
  // Entropy of any categorical distribution is non-negative and bounded by
  // log(A).
  EXPECT_GE(out[3].scalar_value(), 0.0);
  EXPECT_LE(out[3].scalar_value(), std::log(static_cast<double>(A)) + 1e-5);
  // Value loss is a mean of squares.
  EXPECT_GE(out[2].scalar_value(), 0.0);
}

}  // namespace
}  // namespace rlgraph
