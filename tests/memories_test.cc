// Tests for segment trees (property-checked against naive references) and
// the memory components (FIFO semantics, prioritized sampling proportions,
// importance weights).
#include <gtest/gtest.h>

#include <map>

#include "components/memories.h"
#include "core/component_test.h"

namespace rlgraph {
namespace {

// --- SumSegmentTree ------------------------------------------------------------

TEST(SumSegmentTreeTest, BasicSums) {
  SumSegmentTree tree(8);
  tree.update(0, 1.0);
  tree.update(3, 2.0);
  tree.update(7, 4.0);
  EXPECT_DOUBLE_EQ(tree.total(), 7.0);
  EXPECT_DOUBLE_EQ(tree.sum(0, 4), 3.0);
  EXPECT_DOUBLE_EQ(tree.sum(4, 8), 4.0);
  EXPECT_DOUBLE_EQ(tree.get(3), 2.0);
  tree.update(3, 0.5);
  EXPECT_DOUBLE_EQ(tree.total(), 5.5);
}

TEST(SumSegmentTreeTest, NonPowerOfTwoCapacity) {
  SumSegmentTree tree(5);  // rounds up internally
  for (int i = 0; i < 5; ++i) tree.update(i, i + 1.0);
  EXPECT_DOUBLE_EQ(tree.sum(0, 5), 15.0);
  EXPECT_DOUBLE_EQ(tree.sum(1, 3), 5.0);
}

TEST(SumSegmentTreeTest, PrefixSumIndex) {
  SumSegmentTree tree(4);
  tree.update(0, 1.0);
  tree.update(1, 2.0);
  tree.update(2, 3.0);
  EXPECT_EQ(tree.prefix_sum_index(0.5), 0);
  EXPECT_EQ(tree.prefix_sum_index(1.5), 1);
  EXPECT_EQ(tree.prefix_sum_index(2.9), 1);
  EXPECT_EQ(tree.prefix_sum_index(3.1), 2);
  EXPECT_EQ(tree.prefix_sum_index(5.9), 2);
}

TEST(SumSegmentTreeTest, RejectsInvalidInput) {
  SumSegmentTree tree(4);
  EXPECT_THROW(tree.update(4, 1.0), ValueError);
  EXPECT_THROW(tree.update(-1, 1.0), ValueError);
  EXPECT_THROW(tree.update(0, -0.5), ValueError);
}

// Property test: random updates/queries match a naive array implementation.
class SegmentTreePropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SegmentTreePropertyTest, MatchesNaiveReference) {
  int64_t capacity = GetParam();
  SumSegmentTree sum_tree(capacity);
  MinSegmentTree min_tree(capacity);
  std::vector<double> naive(static_cast<size_t>(capacity), 0.0);
  std::vector<double> naive_min(static_cast<size_t>(capacity), 1e18);
  Rng rng(static_cast<uint64_t>(capacity) * 997);
  for (int step = 0; step < 300; ++step) {
    int64_t idx = rng.uniform_int(capacity);
    double value = rng.uniform(0.0, 10.0);
    sum_tree.update(idx, value);
    min_tree.update(idx, value);
    naive[static_cast<size_t>(idx)] = value;
    naive_min[static_cast<size_t>(idx)] = value;

    int64_t lo = rng.uniform_int(capacity);
    int64_t hi = lo + rng.uniform_int(capacity - lo + 1);
    double expected = 0;
    for (int64_t i = lo; i < hi; ++i) expected += naive[static_cast<size_t>(i)];
    EXPECT_NEAR(sum_tree.sum(lo, hi), expected, 1e-9);

    if (sum_tree.total() > 0) {
      double mass = rng.uniform(0.0, sum_tree.total() * 0.999);
      int64_t found = sum_tree.prefix_sum_index(mass);
      // Verify the defining property of prefix_sum_index.
      double before = sum_tree.sum(0, found);
      double with = before + sum_tree.get(found);
      EXPECT_LE(before, mass + 1e-9);
      EXPECT_GT(with, mass - 1e-9);
    }
  }
  double expected_min = 1e18;
  for (double v : naive_min) expected_min = std::min(expected_min, v);
  if (expected_min < 1e17) {
    // Only meaningful once every slot in some prefix was touched; compare
    // over the full range against the untouched +inf default.
    EXPECT_LE(min_tree.min_all(), expected_min + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, SegmentTreePropertyTest,
                         ::testing::Values(1, 4, 7, 16, 33, 100));

// --- Memory components ------------------------------------------------------------

class MemoryFixture {
 public:
  explicit MemoryFixture(std::shared_ptr<MemoryBase> memory) {
    SpacePtr s = FloatBox(Shape{2})->with_batch_rank();
    SpacePtr a = IntBox(3)->with_batch_rank();
    record_space_ = Tuple({FloatBox(Shape{2}), IntBox(3)})->with_batch_rank();
    auto root = std::make_shared<Component>("root");
    auto* mem = root->add_component(std::move(memory));
    root->register_api("insert", [mem](BuildContext& ctx, const OpRecs& in) {
      return mem->call_api(ctx, "insert_records", in);
    });
    root->register_api("sample", [mem](BuildContext& ctx, const OpRecs& in) {
      return mem->call_api(ctx, "get_records", in);
    });
    root->register_api("update", [mem](BuildContext& ctx, const OpRecs& in) {
      return mem->call_api(ctx, "update_records", in);
    });
    root->register_api("size", [mem](BuildContext& ctx, const OpRecs& in) {
      return mem->call_api(ctx, "get_size", in);
    });
    test_ = std::make_unique<ComponentTest>(
        root, std::map<std::string, std::vector<SpacePtr>>{
                  {"insert", {record_space_, FloatBox()->with_batch_rank()}},
                  {"sample", {IntBox(1 << 30)}},
                  {"update",
                   {IntBox(1 << 30)->with_batch_rank(),
                    FloatBox()->with_batch_rank()}},
                  {"size", {}}});
    (void)s;
    (void)a;
  }

  // Insert records with values (id, id) / action id%3 and given priorities.
  void insert(const std::vector<int>& ids, double priority = 1.0) {
    int64_t n = static_cast<int64_t>(ids.size());
    std::vector<float> states;
    std::vector<int32_t> actions;
    std::vector<float> prios;
    for (int id : ids) {
      states.push_back(static_cast<float>(id));
      states.push_back(static_cast<float>(id));
      actions.push_back(id % 3);
      prios.push_back(static_cast<float>(priority));
    }
    test_->test("insert", {Tensor::from_floats(Shape{n, 2}, states),
                           Tensor::from_ints(Shape{n}, actions),
                           Tensor::from_floats(Shape{n}, prios)});
  }

  // Sample n; returns (state ids, indices, weights).
  std::tuple<std::vector<int>, Tensor, Tensor> sample(int64_t n) {
    auto out = test_->test("sample", {Tensor::scalar_int(
                                         static_cast<int32_t>(n))});
    std::vector<int> ids;
    for (int64_t i = 0; i < n; ++i) {
      ids.push_back(static_cast<int>(out[0].data<float>()[i * 2]));
    }
    return {ids, out[2], out[3]};
  }

  int64_t size() {
    return static_cast<int64_t>(test_->test("size", {})[0].scalar_value());
  }

  ComponentTest& test() { return *test_; }

 private:
  SpacePtr record_space_;
  std::unique_ptr<ComponentTest> test_;
};

TEST(RingMemoryTest, InsertAndSize) {
  MemoryFixture fix(std::make_shared<RingMemory>("memory", 8));
  EXPECT_EQ(fix.size(), 0);
  fix.insert({0, 1, 2});
  EXPECT_EQ(fix.size(), 3);
  fix.insert({3, 4, 5, 6, 7});
  EXPECT_EQ(fix.size(), 8);
  fix.insert({8, 9});  // wraps: capacity stays 8
  EXPECT_EQ(fix.size(), 8);
}

TEST(RingMemoryTest, FifoOverwriteInvariant) {
  MemoryFixture fix(std::make_shared<RingMemory>("memory", 4));
  fix.insert({0, 1, 2, 3});
  fix.insert({4, 5});  // overwrites ids 0, 1
  std::map<int, int> seen;
  for (int trial = 0; trial < 50; ++trial) {
    auto [ids, idx, w] = fix.sample(4);
    for (int id : ids) ++seen[id];
  }
  EXPECT_EQ(seen.count(0), 0u);
  EXPECT_EQ(seen.count(1), 0u);
  EXPECT_GT(seen[4], 0);
  EXPECT_GT(seen[5], 0);
}

TEST(RingMemoryTest, UniformWeightsAreOnes) {
  MemoryFixture fix(std::make_shared<RingMemory>("memory", 8));
  fix.insert({0, 1, 2, 3});
  auto [ids, idx, w] = fix.sample(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(w.data<float>()[i], 1.0f);
  }
}

TEST(RingMemoryTest, SamplingEmptyMemoryFails) {
  MemoryFixture fix(std::make_shared<RingMemory>("memory", 8));
  EXPECT_THROW(fix.sample(2), ValueError);
}

TEST(PrioritizedReplayTest, SamplingProportionalToPriority) {
  MemoryFixture fix(
      std::make_shared<PrioritizedReplay>("memory", 16, /*alpha=*/1.0,
                                          /*beta=*/0.0));
  fix.insert({0}, 1.0);
  fix.insert({1}, 9.0);
  std::map<int, int> counts;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    auto [ids, idx, w] = fix.sample(1);
    ++counts[ids[0]];
  }
  // With alpha=1, id 1 should be drawn ~9x as often as id 0.
  EXPECT_GT(counts[1], counts[0] * 4);
  EXPECT_GT(counts[0], 0);
}

TEST(PrioritizedReplayTest, AlphaFlattensPriorities) {
  MemoryFixture fix(std::make_shared<PrioritizedReplay>("memory", 16,
                                                        /*alpha=*/0.0,
                                                        /*beta=*/0.0));
  fix.insert({0}, 1.0);
  fix.insert({1}, 100.0);
  std::map<int, int> counts;
  for (int t = 0; t < 1000; ++t) {
    auto [ids, idx, w] = fix.sample(1);
    ++counts[ids[0]];
  }
  // alpha=0: uniform regardless of priority.
  EXPECT_NEAR(static_cast<double>(counts[0]) / 1000.0, 0.5, 0.1);
}

TEST(PrioritizedReplayTest, UpdateRecordsChangesSampling) {
  MemoryFixture fix(std::make_shared<PrioritizedReplay>("memory", 16, 1.0,
                                                        0.0));
  fix.insert({0, 1}, 1.0);
  // Find the slot index of record id 1 and crank its priority.
  fix.test().test("update",
                  {Tensor::from_ints(Shape{1}, {1}),
                   Tensor::from_floats(Shape{1}, {50.0f})});
  std::map<int, int> counts;
  for (int t = 0; t < 400; ++t) {
    auto [ids, idx, w] = fix.sample(1);
    ++counts[ids[0]];
  }
  EXPECT_GT(counts[1], counts[0] * 3);
}

TEST(PrioritizedReplayTest, ImportanceWeightsNormalized) {
  MemoryFixture fix(std::make_shared<PrioritizedReplay>("memory", 16, 1.0,
                                                        /*beta=*/1.0));
  fix.insert({0}, 1.0);
  fix.insert({1}, 4.0);
  bool saw_low_weight = false;
  for (int t = 0; t < 100; ++t) {
    auto [ids, idx, w] = fix.sample(2);
    for (int i = 0; i < 2; ++i) {
      float weight = w.data<float>()[i];
      EXPECT_LE(weight, 1.0f + 1e-4);  // normalized by max weight
      EXPECT_GT(weight, 0.0f);
      if (ids[static_cast<size_t>(i)] == 1) {
        // Higher-priority records get lower IS weights.
        if (weight < 0.6f) saw_low_weight = true;
      }
    }
  }
  EXPECT_TRUE(saw_low_weight);
}

TEST(PrioritizedReplayTest, CapacityWrapKeepsTreeConsistent) {
  MemoryFixture fix(std::make_shared<PrioritizedReplay>("memory", 4, 1.0,
                                                        0.0));
  for (int round = 0; round < 5; ++round) {
    fix.insert({round * 2, round * 2 + 1}, 1.0 + round);
  }
  EXPECT_EQ(fix.size(), 4);
  // All sampled ids must be among the last 4 inserted.
  for (int t = 0; t < 50; ++t) {
    auto [ids, idx, w] = fix.sample(2);
    for (int id : ids) EXPECT_GE(id, 6);
  }
}

}  // namespace
}  // namespace rlgraph
