// Wire-level chaos tests: seeded fault injection driving the transport
// through partitions, mid-RPC peer kills, duplicated frames, and dropped
// frames — asserting that every fault resolves to the documented state at
// the futures API (DESIGN.md §4g) instead of a hang or a wrong answer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "raylite/net/rpc.h"
#include "raylite/net/wire_fault.h"
#include "util/errors.h"

namespace rlgraph {
namespace {

namespace net = raylite::net;

std::string unique_unix_endpoint(const char* tag) {
  static std::atomic<int> counter{0};
  std::string path = "/tmp/rlgc-" + std::to_string(::getpid()) + "-" +
                     std::string(tag) + "-" +
                     std::to_string(counter.fetch_add(1)) + ".sock";
  std::remove(path.c_str());
  return "unix:" + path;
}

template <typename Pred>
bool wait_until(Pred pred, double timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double, std::milli>(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

net::RpcClientOptions fast_client_options() {
  net::RpcClientOptions opts;
  opts.connection.heartbeat_interval_ms = 20.0;
  opts.connection.heartbeat_timeout_ms = 2000.0;
  opts.backoff_initial_ms = 10.0;
  opts.backoff_max_ms = 100.0;
  opts.max_reconnects = 50;
  opts.seed = 7;
  return opts;
}

// An injected cut partitions the link mid-stream; in-flight calls resolve
// ConnectionLostError, the client reconnects with backoff, and traffic
// resumes on the replacement connection — the same injector (schedule
// position preserved) rides across the reconnect.
TEST(NetChaosTest, PartitionAndReconnect) {
  auto endpoint = net::Endpoint::parse(unique_unix_endpoint("part"));
  net::RpcServer server(endpoint);
  server.register_handler("echo",
                          [](const std::vector<uint8_t>& b) { return b; });
  server.start();

  net::WireFaultConfig wf;
  wf.disconnect_after_frames = 2;  // cut the third outgoing request
  wf.seed = 11;
  auto injector = std::make_shared<net::WireFaultInjector>(wf);
  net::RpcClient client(endpoint, fast_client_options(), nullptr, injector);

  int ok = 0, lost = 0;
  for (int i = 0; i < 8; ++i) {
    std::vector<uint8_t> body = {static_cast<uint8_t>(i)};
    bool sent = false;
    for (int attempt = 0; attempt < 50 && !sent; ++attempt) {
      try {
        ASSERT_EQ(client.call("echo", body).get(), body);
        sent = true;
        ++ok;
      } catch (const ConnectionLostError&) {
        ++lost;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    ASSERT_TRUE(sent) << "call " << i << " never made it through";
  }
  EXPECT_EQ(ok, 8);
  EXPECT_GE(lost, 1);  // the injected cut was observed as a typed error
  EXPECT_GE(client.reconnects(), 1);
  EXPECT_EQ(injector->injected_disconnects(), 1);
  EXPECT_TRUE(client.connected());
}

// The peer dies while an RPC is in flight (its response frame is cut on the
// wire). The caller gets ConnectionLostError — not a hang, not a garbled
// result — and the link heals for the next call.
TEST(NetChaosTest, MidRpcPeerKill) {
  auto endpoint = net::Endpoint::parse(unique_unix_endpoint("kill"));
  net::WireFaultConfig wf;
  wf.disconnect_after_frames = 0;  // the server's first response dies
  wf.seed = 3;
  auto server_injector = std::make_shared<net::WireFaultInjector>(wf);
  net::RpcServer server(endpoint, net::RpcServerOptions{}, nullptr,
                        server_injector);
  std::atomic<int> handled{0};
  server.register_handler("work", [&](const std::vector<uint8_t>& b) {
    handled.fetch_add(1);
    return b;
  });
  server.start();

  net::RpcClient client(endpoint, fast_client_options());
  EXPECT_THROW(client.call("work", {1}).get(), ConnectionLostError);
  EXPECT_EQ(handled.load(), 1);  // the handler DID run; only the reply died

  // The client reconnects; the retry succeeds end to end.
  ASSERT_TRUE(wait_until([&] { return client.connected(); }, 5000.0));
  EXPECT_EQ(client.call("work", {2}).get(), std::vector<uint8_t>{2});
  EXPECT_EQ(handled.load(), 2);
}

// Every request frame is duplicated on the wire; the server's per-connection
// dedup cache executes each request exactly once and re-sends the cached
// response for the copy.
TEST(NetChaosTest, DuplicateFrameDeliveryExecutesOnce) {
  auto endpoint = net::Endpoint::parse(unique_unix_endpoint("dup"));
  net::RpcServer server(endpoint);
  std::atomic<int> executions{0};
  server.register_handler("count", [&](const std::vector<uint8_t>& b) {
    executions.fetch_add(1);
    return b;
  });
  server.start();

  net::WireFaultConfig wf;
  wf.duplicate_prob = 1.0;
  wf.seed = 21;
  auto injector = std::make_shared<net::WireFaultInjector>(wf);
  net::RpcClient client(endpoint, fast_client_options(), nullptr, injector);

  const int kCalls = 6;
  for (int i = 0; i < kCalls; ++i) {
    std::vector<uint8_t> body = {static_cast<uint8_t>(i)};
    EXPECT_EQ(client.call("count", body).get(), body);
  }
  EXPECT_EQ(executions.load(), kCalls);
  EXPECT_EQ(injector->injected_duplicates(), kCalls);
  // Duplicates were delivered and suppressed, not lost in transit.
  EXPECT_TRUE(wait_until(
      [&] { return server.duplicates_suppressed() >= kCalls; }, 5000.0));
}

// Dropped request frames are recovered by same-id retransmission after the
// rpc timeout; the dedup cache makes the retransmit safe (at-most-once).
TEST(NetChaosTest, DroppedFramesRecoveredByRetransmit) {
  auto endpoint = net::Endpoint::parse(unique_unix_endpoint("drop"));
  net::RpcServer server(endpoint);
  std::atomic<int> executions{0};
  server.register_handler("count", [&](const std::vector<uint8_t>& b) {
    executions.fetch_add(1);
    return b;
  });
  server.start();

  net::WireFaultConfig wf;
  wf.drop_prob = 0.5;
  wf.seed = 1234;
  auto injector = std::make_shared<net::WireFaultInjector>(wf);
  net::RpcClientOptions opts = fast_client_options();
  opts.rpc_timeout_ms = 150.0;
  opts.max_rpc_retransmits = 10;
  net::RpcClient client(endpoint, opts, nullptr, injector);

  const int kCalls = 8;
  for (int i = 0; i < kCalls; ++i) {
    std::vector<uint8_t> body = {static_cast<uint8_t>(i)};
    EXPECT_EQ(client.call("count", body).get(), body);
  }
  // The seeded schedule dropped at least one frame, and dedup kept handler
  // executions at exactly one per logical call.
  EXPECT_GE(injector->injected_drops(), 1);
  EXPECT_EQ(executions.load(), kCalls);
}

// Same seed, same config, same traffic => the injector takes byte-identical
// decisions (the acceptance criterion for reproducible chaos runs). The
// schedule here avoids timing-dependent frame counts: duplicates are
// per-sent-frame, the single cut is at a fixed frame index, and calls that
// fail fast while disconnected never consume a decision.
TEST(NetChaosTest, InjectedScheduleIsReproducible) {
  auto run_once = [](uint64_t seed) {
    auto endpoint = net::Endpoint::parse(unique_unix_endpoint("repro"));
    net::RpcServer server(endpoint);
    server.register_handler("echo",
                            [](const std::vector<uint8_t>& b) { return b; });
    server.start();
    net::WireFaultConfig wf;
    wf.duplicate_prob = 1.0;
    wf.disconnect_after_frames = 3;
    wf.seed = seed;
    auto injector = std::make_shared<net::WireFaultInjector>(wf);
    net::RpcClient client(endpoint, fast_client_options(), nullptr, injector);
    const int kCalls = 6;
    for (int i = 0; i < kCalls; ++i) {
      std::vector<uint8_t> body = {static_cast<uint8_t>(i)};
      bool sent = false;
      for (int attempt = 0; attempt < 200 && !sent; ++attempt) {
        try {
          EXPECT_EQ(client.call("echo", body).get(), body);
          sent = true;
        } catch (const ConnectionLostError&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
      EXPECT_TRUE(sent);
    }
    client.drain_and_close(2000.0);
    return std::make_tuple(injector->decisions(), injector->injected_drops(),
                           injector->injected_duplicates(),
                           injector->injected_disconnects());
  };
  auto a = run_once(42);
  auto b = run_once(42);
  EXPECT_EQ(a, b);
  // One decision per delivered call, plus exactly one for the injected cut.
  EXPECT_EQ(std::get<0>(a), 7);
  EXPECT_EQ(std::get<3>(a), 1);
}

}  // namespace
}  // namespace rlgraph
