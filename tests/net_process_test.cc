// Multi-process Ape-X: sampler workers run in separate OS processes behind
// the raylite/net transport, driven by the unchanged ApexExecutor
// coordination loop. The binary doubles as the worker executable: when
// launched with --apex-worker it serves an ApexWorkerService instead of
// running tests, so the test spawns *itself* (no fork-without-exec: the
// parent is multithreaded).
//
// The headline scenario (the PR's acceptance criterion): an Ape-X run with
// two out-of-process samplers where one worker is SIGKILLed mid-run, the
// supervisor restarts the slot through the reconnecting RPC proxy, a
// respawned worker process takes over, and the run completes with both
// sampling progress and at least one supervised restart on the books.
#include <gtest/gtest.h>

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "execution/remote_worker.h"
#include "util/errors.h"
#include "util/serialization.h"

extern char** environ;

namespace rlgraph {
namespace {

namespace net = raylite::net;

Json worker_agent_config() {
  return Json::parse(R"({
    "type": "apex",
    "network": [{"type": "dense", "units": 16, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 512},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 0.6, "eps_end": 0.1, "decay_steps": 500},
    "update": {"batch_size": 16, "sync_interval": 20, "min_records": 32}
  })");
}

ApexConfig base_config() {
  ApexConfig cfg;
  cfg.agent_config = worker_agent_config();
  cfg.env_spec = Json::parse(R"({"type": "grid_world"})");
  cfg.envs_per_worker = 2;
  cfg.num_replay_shards = 1;
  cfg.worker_sample_size = 32;
  cfg.min_shard_records = 32;
  cfg.n_step = 3;
  cfg.seed = 11;
  return cfg;
}

std::string self_exe() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  RLG_REQUIRE(n > 0, "readlink(/proc/self/exe) failed");
  buf[n] = '\0';
  return std::string(buf);
}

std::string unique_unix_endpoint(const char* tag) {
  static std::atomic<int> counter{0};
  std::string path = "/tmp/rlgp-" + std::to_string(::getpid()) + "-" +
                     std::string(tag) + "-" +
                     std::to_string(counter.fetch_add(1)) + ".sock";
  std::remove(path.c_str());
  return "unix:" + path;
}

// Spawns this binary as `--apex-worker <config.json> <index> <endpoint>`.
pid_t spawn_worker(const std::string& config_path, int index,
                   const std::string& endpoint) {
  std::string exe = self_exe();
  std::string index_str = std::to_string(index);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(exe.c_str()));
  argv.push_back(const_cast<char*>("--apex-worker"));
  argv.push_back(const_cast<char*>(config_path.c_str()));
  argv.push_back(const_cast<char*>(index_str.c_str()));
  argv.push_back(const_cast<char*>(endpoint.c_str()));
  argv.push_back(nullptr);
  pid_t pid = -1;
  int rc = ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr, argv.data(),
                         environ);
  RLG_REQUIRE(rc == 0, "posix_spawn failed: " << rc);
  return pid;
}

// A worker is ready once its listener accepts connections.
bool wait_for_listening(const std::string& endpoint, double timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double, std::milli>(timeout_ms);
  net::Endpoint ep = net::Endpoint::parse(endpoint);
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      net::Socket probe = net::Socket::connect(ep, 200.0);
      return true;
    } catch (const ConnectionError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return false;
}

std::string write_config_file(const ApexConfig& cfg, const char* tag) {
  std::string path = "/tmp/rlgp-" + std::to_string(::getpid()) + "-" +
                     std::string(tag) + ".json";
  std::ofstream out(path);
  out << apex_worker_config_to_json(cfg).dump(2);
  return path;
}

void reap(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

// One out-of-process sampler, driven directly through the RemoteApexWorker
// proxy: batches and counters round-trip the wire, and a graceful shutdown
// RPC terminates the peer with exit code 0.
TEST(NetProcessTest, RemoteWorkerRoundTrip) {
  ApexConfig cfg = base_config();
  std::string config_path = write_config_file(cfg, "rt");
  std::string endpoint = unique_unix_endpoint("rt");
  pid_t pid = spawn_worker(config_path, 0, endpoint);
  ASSERT_TRUE(wait_for_listening(endpoint, 30000.0));

  {
    net::RpcClientOptions opts;
    opts.rpc_timeout_ms = 0.0;
    RemoteApexWorker worker(endpoint, opts);
    SampleBatch batch;
    try {
      batch = worker.sample(16);
    } catch (const std::exception& e) {
      int status = 0;
      pid_t r = ::waitpid(pid, &status, WNOHANG);
      fprintf(stderr,
              "sample failed: %s; waitpid=%d exited=%d code=%d sig=%d\n",
              e.what(), (int)r, WIFEXITED(status),
              WIFEXITED(status) ? WEXITSTATUS(status) : -1,
              WIFSIGNALED(status) ? WTERMSIG(status) : -1);
      throw;
    }
    EXPECT_GE(batch.num_records, 16);
    EXPECT_EQ(batch.states.shape().dim(0), batch.num_records);
    EXPECT_GT(batch.env_frames, 0);
    EXPECT_GT(worker.executor_calls(), 0);
    worker.shutdown_peer();
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  std::remove(config_path.c_str());
}

// The acceptance scenario: Ape-X with both samplers in separate processes;
// one is SIGKILLed mid-run and respawned. The run must complete, keep
// sampling, and record at least one supervised restart of the dead slot.
TEST(NetProcessTest, ApexSurvivesWorkerProcessKill) {
  ApexConfig cfg = base_config();
  cfg.num_workers = 2;
  std::string config_path = write_config_file(cfg, "kill");
  std::string ep0 = unique_unix_endpoint("w0");
  std::string ep1 = unique_unix_endpoint("w1");
  pid_t pid0 = spawn_worker(config_path, 0, ep0);
  pid_t pid1 = spawn_worker(config_path, 1, ep1);
  ASSERT_TRUE(wait_for_listening(ep0, 60000.0));
  ASSERT_TRUE(wait_for_listening(ep1, 60000.0));

  cfg.remote_workers = {ep0, ep1};
  // Fail fast on peer death, restart generously: the respawned process can
  // take a while to come up on a loaded machine.
  cfg.remote_client.connect_timeout_ms = 500.0;
  cfg.remote_client.max_reconnects = 2;
  cfg.remote_client.backoff_initial_ms = 20.0;
  cfg.remote_client.backoff_max_ms = 100.0;
  cfg.supervisor.heartbeat_interval_ms = 20.0;
  cfg.supervisor.max_restarts_per_worker = 100;
  cfg.supervisor.backoff_initial_ms = 50.0;
  cfg.supervisor.backoff_max_ms = 250.0;
  cfg.learner_updates = true;

  ApexResult result;
  {
    ApexExecutor exec(cfg);
    std::thread chaos([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1500));
      ::kill(pid0, SIGKILL);
      int status = 0;
      ::waitpid(pid0, &status, 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      pid0 = spawn_worker(config_path, 0, ep0);
    });
    result = exec.run(8.0);
    chaos.join();
  }

  EXPECT_GT(result.sample_tasks, 0);
  EXPECT_GT(result.env_frames, 0);
  EXPECT_GE(result.worker_restarts, 1);
  // The kill surfaced as failed tasks, not a wedged run.
  EXPECT_GE(result.task_failures, 1);

  reap(pid0);
  reap(pid1);
  std::remove(config_path.c_str());
}

}  // namespace
}  // namespace rlgraph

// Custom main: worker mode must be handled before gtest sees argv.
int main(int argc, char** argv) {
  if (argc >= 5 && std::string(argv[1]) == "--apex-worker") {
    using rlgraph::ApexConfig;
    std::vector<uint8_t> bytes = rlgraph::read_file(argv[2]);
    ApexConfig config = rlgraph::apex_worker_config_from_json(
        rlgraph::Json::parse(std::string(bytes.begin(), bytes.end())));
    int index = std::atoi(argv[3]);
    rlgraph::run_apex_worker_server(config, index, argv[4]);
    return 0;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
