// Unit tests for the raylite cross-process transport: endpoint parsing,
// frame codec, connection heartbeats/teardown, RPC round-trips with typed
// remote errors, deterministic wire fault injection, the remote object
// store, and the SampleBatch / worker-config wire codecs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "execution/remote_worker.h"
#include "raylite/net/connection.h"
#include "raylite/net/frame.h"
#include "raylite/net/remote_store.h"
#include "raylite/net/rpc.h"
#include "raylite/net/socket.h"
#include "raylite/net/wire_fault.h"
#include "tensor/tensor_io.h"
#include "util/errors.h"

namespace rlgraph {
namespace {

namespace net = raylite::net;

// Each test gets its own unix socket path; unlinked eagerly so reruns and
// parallel tests never collide.
std::string unique_unix_endpoint(const char* tag) {
  static std::atomic<int> counter{0};
  std::string path = "/tmp/rlgn-" + std::to_string(::getpid()) + "-" +
                     std::string(tag) + "-" +
                     std::to_string(counter.fetch_add(1)) + ".sock";
  std::remove(path.c_str());
  return "unix:" + path;
}

// Accept-and-connect helper: returns the two ends of one established link.
std::pair<net::Socket, net::Socket> connected_pair(const char* tag) {
  net::Listener listener(net::Endpoint::parse(unique_unix_endpoint(tag)));
  net::Socket client = net::Socket::connect(listener.endpoint(), 2000.0);
  net::Socket server = listener.accept(2000.0);
  EXPECT_TRUE(client.valid());
  EXPECT_TRUE(server.valid());
  return {std::move(client), std::move(server)};
}

template <typename Pred>
bool wait_until(Pred pred, double timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double, std::milli>(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// --- Endpoint -------------------------------------------------------------

TEST(EndpointTest, ParsesTcpAndUnix) {
  net::Endpoint tcp = net::Endpoint::parse("tcp:127.0.0.1:8123");
  EXPECT_EQ(tcp.kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 8123);
  EXPECT_EQ(tcp.to_string(), "tcp:127.0.0.1:8123");

  net::Endpoint unix_ep = net::Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_ep.kind, net::Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/x.sock");
  EXPECT_EQ(unix_ep.to_string(), "unix:/tmp/x.sock");

  // Bare host:port (no scheme) is accepted as tcp.
  EXPECT_EQ(net::Endpoint::parse("127.0.0.1:80").port, 80);

  EXPECT_THROW(net::Endpoint::parse("unix:"), Error);
  EXPECT_THROW(net::Endpoint::parse("tcp:nohost"), Error);
  EXPECT_THROW(net::Endpoint::parse("tcp:1.2.3.4:99999"), Error);
}

TEST(EndpointTest, ConnectToMissingPeerThrowsConnectionError) {
  EXPECT_THROW(net::Socket::connect(
                   net::Endpoint::parse("unix:/tmp/rlgn-definitely-absent"),
                   200.0),
               ConnectionError);
}

// --- Frame codec ----------------------------------------------------------

TEST(FrameTest, HeaderLayoutIsStable) {
  net::Frame f;
  f.type = net::FrameType::kRequest;
  f.request_id = 0x0102030405060708ull;
  f.payload = {0xAA, 0xBB};
  std::vector<uint8_t> bytes = net::encode_frame(f);
  ASSERT_EQ(bytes.size(), net::kFrameHeaderBytes + 2);
  // magic "RLGN" little-endian.
  EXPECT_EQ(bytes[0], 'R');
  EXPECT_EQ(bytes[1], 'L');
  EXPECT_EQ(bytes[2], 'G');
  EXPECT_EQ(bytes[3], 'N');
  EXPECT_EQ(bytes[4], static_cast<uint8_t>(net::FrameType::kRequest));
  EXPECT_EQ(bytes[5], 0);  // flags
  EXPECT_EQ(bytes[6], 0);  // reserved
  EXPECT_EQ(bytes[7], 0);  // reserved
  EXPECT_EQ(bytes[8], 0x08);  // request id, little-endian
  EXPECT_EQ(bytes[15], 0x01);
  EXPECT_EQ(bytes[16], 2);  // payload size
  EXPECT_EQ(bytes[20], 0xAA);
}

TEST(FrameTest, RoundTripsOverSocket) {
  auto [client, server] = connected_pair("frame");
  net::Frame f;
  f.type = net::FrameType::kResponse;
  f.request_id = 42;
  f.payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> bytes = net::encode_frame(f);
  ASSERT_TRUE(client.send_all(bytes.data(), bytes.size()));

  net::Frame out;
  ASSERT_TRUE(net::read_frame(server, &out));
  EXPECT_EQ(out.type, net::FrameType::kResponse);
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(FrameTest, CorruptMagicThrowsSerializationError) {
  auto [client, server] = connected_pair("corrupt");
  std::vector<uint8_t> junk(net::kFrameHeaderBytes, 0x5A);
  ASSERT_TRUE(client.send_all(junk.data(), junk.size()));
  net::Frame out;
  EXPECT_THROW(net::read_frame(server, &out), SerializationError);
}

TEST(FrameTest, NonzeroReservedBytesThrow) {
  auto [client, server] = connected_pair("reserved");
  net::Frame f;
  f.type = net::FrameType::kPing;
  std::vector<uint8_t> bytes = net::encode_frame(f);
  bytes[5] = 0x01;  // flags must be 0 on the wire
  ASSERT_TRUE(client.send_all(bytes.data(), bytes.size()));
  net::Frame out;
  EXPECT_THROW(net::read_frame(server, &out), SerializationError);
}

TEST(FrameTest, TruncatedFrameReadsAsEof) {
  auto [client, server] = connected_pair("trunc");
  net::Frame f;
  f.type = net::FrameType::kRequest;
  f.payload.assign(100, 7);
  std::vector<uint8_t> bytes = net::encode_frame(f);
  // Send only half the frame, then close: an injected truncation.
  ASSERT_TRUE(client.send_all(bytes.data(), bytes.size() / 2));
  client.close();
  net::Frame out;
  EXPECT_FALSE(net::read_frame(server, &out));
}

TEST(FrameTest, ErrorPayloadRebuildsTypedException) {
  std::vector<uint8_t> payload =
      net::encode_error_payload("NotFoundError", "no such thing");
  std::string type, message;
  net::decode_error_payload(payload, &type, &message);
  EXPECT_EQ(type, "NotFoundError");
  try {
    net::throw_remote_error(type, message);
    FAIL() << "expected a throw";
  } catch (const NotFoundError& e) {
    EXPECT_NE(std::string(e.what()).find("no such thing"), std::string::npos);
  }
  EXPECT_THROW(net::throw_remote_error("ActorLostError", "gone"),
               ActorLostError);
  EXPECT_THROW(net::throw_remote_error("ConnectionLostError", "cut"),
               ConnectionLostError);
  // Unknown types degrade to the base Error, never a parse failure.
  EXPECT_THROW(net::throw_remote_error("SomeFutureError", "?"), Error);
}

// --- Connection -----------------------------------------------------------

struct ConnEvents {
  std::atomic<int> frames{0};
  std::atomic<int> downs{0};
  std::atomic<bool> graceful{false};
  std::string reason;
  std::mutex mutex;

  net::Connection::FrameHandler frame_handler() {
    return [this](net::Frame&&) { frames.fetch_add(1); };
  }
  net::Connection::DownHandler down_handler() {
    return [this](bool g, const std::string& r) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        reason = r;
      }
      graceful.store(g);
      downs.fetch_add(1);
    };
  }
};

TEST(ConnectionTest, HeartbeatsKeepIdleLinkAlive) {
  auto [c, s] = connected_pair("hb");
  net::ConnectionOptions opts;
  opts.heartbeat_interval_ms = 20.0;
  opts.heartbeat_timeout_ms = 2000.0;
  ConnEvents ce, se;
  net::Connection client(std::move(c), opts, ce.frame_handler(),
                         ce.down_handler());
  net::Connection server(std::move(s), opts, se.frame_handler(),
                         se.down_handler());
  // Several heartbeat intervals of pure idleness: pings flow, nobody dies.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(client.alive());
  EXPECT_TRUE(server.alive());
  EXPECT_GT(client.frames_sent(), 0);
  EXPECT_EQ(ce.downs.load(), 0);
  EXPECT_EQ(se.downs.load(), 0);
  client.close_graceful();
  ASSERT_TRUE(wait_until([&] { return se.downs.load() == 1; }, 2000.0));
  EXPECT_TRUE(se.graceful.load());
}

TEST(ConnectionTest, HardCloseIsAFaultAtThePeer) {
  auto [c, s] = connected_pair("kill");
  net::ConnectionOptions opts;
  ConnEvents ce, se;
  net::Connection client(std::move(c), opts, ce.frame_handler(),
                         ce.down_handler());
  net::Connection server(std::move(s), opts, se.frame_handler(),
                         se.down_handler());
  client.close_hard();
  ASSERT_TRUE(wait_until([&] { return se.downs.load() == 1; }, 2000.0));
  EXPECT_FALSE(se.graceful.load());
  // Exactly once, even with reader and writer both observing the cut.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(se.downs.load(), 1);
}

TEST(ConnectionTest, HeartbeatTimeoutFiresUnderSustainedTraffic) {
  auto [c, s] = connected_pair("hb-busy");
  net::Socket peer = std::move(s);
  net::ConnectionOptions opts;
  opts.heartbeat_interval_ms = 10.0;
  opts.heartbeat_timeout_ms = 150.0;
  ConnEvents ce;
  net::Connection client(std::move(c), opts, ce.frame_handler(),
                         ce.down_handler());
  // A peer that reads everything but never sends: the client's writer never
  // idles (pop_for always has a frame), so the silence check must run on
  // busy iterations too — not only on idle ticks.
  std::thread sink([&] {
    uint8_t buf[256];
    while (peer.recv_all(buf, 1)) {
    }
  });
  net::Frame f;
  f.type = net::FrameType::kRequest;
  f.payload = {1, 2, 3};
  ASSERT_TRUE(wait_until(
      [&] {
        client.send(f);
        return ce.downs.load() == 1;
      },
      5000.0));
  EXPECT_FALSE(ce.graceful.load());
  {
    std::lock_guard<std::mutex> lock(ce.mutex);
    EXPECT_NE(ce.reason.find("heartbeat timeout"), std::string::npos);
  }
  client.close_hard();
  peer.shutdown_both();
  sink.join();
}

TEST(ConnectionTest, DataFramesFlowBothWays) {
  auto [c, s] = connected_pair("data");
  net::ConnectionOptions opts;
  ConnEvents ce, se;
  net::Connection client(std::move(c), opts, ce.frame_handler(),
                         ce.down_handler());
  net::Connection server(std::move(s), opts, se.frame_handler(),
                         se.down_handler());
  net::Frame f;
  f.type = net::FrameType::kRequest;
  f.request_id = 7;
  f.payload = {9, 9, 9};
  EXPECT_TRUE(client.send(f));
  ASSERT_TRUE(wait_until([&] { return se.frames.load() == 1; }, 2000.0));
  f.type = net::FrameType::kResponse;
  EXPECT_TRUE(server.send(f));
  ASSERT_TRUE(wait_until([&] { return ce.frames.load() == 1; }, 2000.0));
}

// --- Wire fault injector --------------------------------------------------

TEST(WireFaultTest, DeterministicUnderFixedSeed) {
  net::WireFaultConfig cfg;
  cfg.drop_prob = 0.2;
  cfg.duplicate_prob = 0.2;
  cfg.delay_prob = 0.2;
  cfg.truncate_prob = 0.05;
  cfg.disconnect_prob = 0.05;
  cfg.seed = 1234;
  net::WireFaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.next(), b.next()) << "diverged at decision " << i;
  }
  // A different seed must produce a different schedule.
  net::WireFaultConfig other = cfg;
  other.seed = 99;
  net::WireFaultInjector c(other);
  net::WireFaultInjector base(cfg);
  bool any_diff = false;
  for (int i = 0; i < 500; ++i) {
    if (!(c.next() == base.next())) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WireFaultTest, WarmupSuppressesInjection) {
  net::WireFaultConfig cfg;
  cfg.drop_prob = 1.0;
  cfg.warmup_frames = 10;
  cfg.seed = 5;
  net::WireFaultInjector inj(cfg);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(inj.next().action, net::WireFaultAction::kNone);
  }
  EXPECT_EQ(inj.next().action, net::WireFaultAction::kDrop);
}

TEST(WireFaultTest, DeterministicDisconnectFiresOnce) {
  net::WireFaultConfig cfg;
  cfg.disconnect_after_frames = 2;
  cfg.seed = 5;
  net::WireFaultInjector inj(cfg);
  EXPECT_EQ(inj.next().action, net::WireFaultAction::kNone);
  EXPECT_EQ(inj.next().action, net::WireFaultAction::kNone);
  EXPECT_EQ(inj.next().action, net::WireFaultAction::kDisconnect);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(inj.next().action, net::WireFaultAction::kNone);
  }
  EXPECT_EQ(inj.injected_disconnects(), 1);
}

// --- RPC ------------------------------------------------------------------

TEST(RpcTest, EchoRoundTripAndCounters) {
  net::RpcServer server(net::Endpoint::parse(unique_unix_endpoint("rpc")));
  server.register_handler("echo",
                          [](const std::vector<uint8_t>& body) { return body; });
  server.start();

  net::RpcClient client(server.endpoint(), {});
  std::vector<uint8_t> body = {1, 2, 3};
  EXPECT_EQ(client.call("echo", body).get(), body);
  EXPECT_EQ(client.call("echo", {}).get(), std::vector<uint8_t>{});
  EXPECT_EQ(server.requests_served(), 2);
  EXPECT_EQ(client.in_flight(), 0u);
  EXPECT_TRUE(client.connected());
}

TEST(RpcTest, RemoteExceptionArrivesTyped) {
  net::RpcServer server(net::Endpoint::parse(unique_unix_endpoint("rpcerr")));
  server.register_handler("fail",
                          [](const std::vector<uint8_t>&) -> std::vector<uint8_t> {
                            throw NotFoundError("object 7 is gone");
                          });
  server.start();
  net::RpcClient client(server.endpoint(), {});
  auto fut = client.call("fail", {});
  try {
    fut.get();
    FAIL() << "expected NotFoundError";
  } catch (const NotFoundError& e) {
    EXPECT_NE(std::string(e.what()).find("object 7 is gone"),
              std::string::npos);
  }
  // The connection survives a handler error; the next call works.
  server.register_handler("ok", [](const std::vector<uint8_t>&) {
    return std::vector<uint8_t>{1};
  });
  EXPECT_EQ(client.call("ok", {}).get(), std::vector<uint8_t>{1});
}

TEST(RpcTest, UnknownMethodIsNotFound) {
  net::RpcServer server(net::Endpoint::parse(unique_unix_endpoint("rpcnm")));
  server.start();
  net::RpcClient client(server.endpoint(), {});
  EXPECT_THROW(client.call("nope", {}).get(), NotFoundError);
}

TEST(RpcTest, TcpEphemeralPortResolves) {
  net::RpcServer server(net::Endpoint::parse("tcp:127.0.0.1:0"));
  server.register_handler("echo",
                          [](const std::vector<uint8_t>& body) { return body; });
  server.start();
  EXPECT_GT(server.endpoint().port, 0);
  net::RpcClient client(server.endpoint(), {});
  std::vector<uint8_t> body = {5};
  EXPECT_EQ(client.call("echo", body).get(), body);
}

TEST(RpcTest, ExhaustedReconnectBudgetYieldsActorLostError) {
  auto endpoint = net::Endpoint::parse(unique_unix_endpoint("rpcdown"));
  auto server = std::make_unique<net::RpcServer>(endpoint);
  server->start();

  net::RpcClientOptions opts;
  opts.max_reconnects = 0;  // first failed reconnect -> permanently down
  opts.connection.heartbeat_interval_ms = 20.0;
  opts.connection.heartbeat_timeout_ms = 300.0;
  net::RpcClient client(endpoint, opts);
  ASSERT_TRUE(client.connected());

  // Take the peer away for good.
  server.reset();
  ASSERT_TRUE(wait_until(
      [&] { return client.state() == net::RpcClientState::kDown; }, 5000.0));

  // Satellite check: the terminal error is *typed* and flows through the
  // same raylite::wait_for machinery in-process futures use.
  auto fut = client.call("echo", {});
  std::vector<raylite::UntypedFuture> futures = {fut};
  auto ready =
      raylite::wait_for(futures, 1, std::chrono::milliseconds(2000));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_TRUE(fut.failed());
  EXPECT_THROW(fut.get(), ActorLostError);
}

TEST(RpcTest, DrainAndCloseResolvesEverything) {
  net::RpcServer server(net::Endpoint::parse(unique_unix_endpoint("drain")));
  server.register_handler("slow", [](const std::vector<uint8_t>& b) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return b;
  });
  server.start();
  net::RpcClient client(server.endpoint(), {});
  auto f1 = client.call("slow", {1});
  auto f2 = client.call("slow", {2});
  EXPECT_TRUE(client.drain_and_close(5000.0));
  EXPECT_EQ(f1.get(), std::vector<uint8_t>{1});
  EXPECT_EQ(f2.get(), std::vector<uint8_t>{2});
  // Closed for good: further calls fail typed, they do not hang.
  EXPECT_THROW(client.call("slow", {}).get(), ActorDeadError);
}

// --- Remote object store --------------------------------------------------

TEST(RpcTest, DedupCacheIsByteBounded) {
  auto endpoint = net::Endpoint::parse(unique_unix_endpoint("dedup-bytes"));
  net::RpcServerOptions sopts;
  sopts.dedup_cache_bytes = 2048;  // fits exactly one 1500-byte response
  net::RpcServer server(endpoint, sopts);
  std::atomic<int> executions{0};
  server.register_handler("big", [&](const std::vector<uint8_t>&) {
    executions.fetch_add(1);
    return std::vector<uint8_t>(1500, 0xAB);
  });
  server.start();

  // Speak the protocol directly so we control request ids.
  net::Socket sock = net::Socket::connect(endpoint, 2000.0);
  std::atomic<int> responses{0};
  ConnEvents ce;
  net::Connection conn(
      std::move(sock), net::ConnectionOptions{},
      [&](net::Frame&&) { responses.fetch_add(1); }, ce.down_handler());
  auto request = [&](uint64_t id) {
    net::Frame f;
    f.type = net::FrameType::kRequest;
    f.request_id = id;
    f.payload = net::encode_request_payload("big", {});
    EXPECT_TRUE(conn.send(std::move(f)));
  };

  request(1);
  ASSERT_TRUE(wait_until([&] { return responses.load() == 1; }, 2000.0));
  // Immediate retransmit of the newest id hits the cache: no re-execution.
  request(1);
  ASSERT_TRUE(wait_until([&] { return responses.load() == 2; }, 2000.0));
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(server.duplicates_suppressed(), 1);
  // A second large response blows the byte budget and evicts id 1 (the
  // newest entry is always the one retained) ...
  request(2);
  ASSERT_TRUE(wait_until([&] { return responses.load() == 3; }, 2000.0));
  // ... so a late duplicate of id 1 re-executes instead of replaying a
  // cached response that would otherwise pin unbounded memory.
  request(1);
  ASSERT_TRUE(wait_until([&] { return responses.load() == 4; }, 2000.0));
  EXPECT_EQ(executions.load(), 3);
  EXPECT_EQ(server.duplicates_suppressed(), 1);

  conn.close_graceful();
  server.stop();
}

TEST(RemoteStoreTest, PutGetEraseAcrossTheWire) {
  raylite::ObjectStore store;
  net::RpcServer server(net::Endpoint::parse(unique_unix_endpoint("store")));
  net::register_object_store_handlers(&server, &store);
  server.start();
  net::RpcClient client(server.endpoint(), {});
  net::RemoteObjectStore remote(&client);

  std::vector<uint8_t> blob = {10, 20, 30};
  raylite::ObjectId id = remote.put(blob);
  EXPECT_EQ(remote.get(id), blob);
  EXPECT_EQ(remote.get_async(id).get(), blob);
  remote.erase(id);
  EXPECT_THROW(remote.get(id), NotFoundError);
}

// --- Tensor / SampleBatch / config codecs ---------------------------------

TEST(TensorIoTest, RoundTripAndValidation) {
  Tensor t = Tensor::from_floats(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  ByteWriter w;
  write_tensor(&w, t);
  ByteReader r(w.take());
  Tensor back = read_tensor(&r);
  EXPECT_TRUE(back.shape() == t.shape());
  EXPECT_EQ(back.dtype(), t.dtype());
  EXPECT_EQ(back.data<float>()[5], 6.0f);

  // Corrupt dtype tag.
  ByteWriter w2;
  write_tensor(&w2, t);
  std::vector<uint8_t> bytes = w2.take();
  bytes[0] = 0xFF;
  ByteReader r2(bytes);
  EXPECT_THROW(read_tensor(&r2), SerializationError);
}

TEST(TensorIoTest, CorruptDimsFailBeforeAllocation) {
  // Huge dims in a corrupt stream must throw SerializationError up front,
  // not attempt a multi-TB allocation.
  ByteWriter w;
  w.write_u8(static_cast<uint8_t>(DType::kFloat32));
  w.write_u32(2);
  w.write_i64(int64_t{1} << 40);
  w.write_i64(int64_t{1} << 40);
  w.write_u64(64);
  ByteReader r(w.take());
  EXPECT_THROW(read_tensor(&r), SerializationError);

  // A declared byte count larger than what is left in the stream fails
  // cleanly too (truncated stream).
  ByteWriter w2;
  w2.write_u8(static_cast<uint8_t>(DType::kFloat32));
  w2.write_u32(1);
  w2.write_i64(4);
  w2.write_u64(16);  // but no payload bytes follow
  ByteReader r2(w2.take());
  EXPECT_THROW(read_tensor(&r2), SerializationError);
}

TEST(SampleBatchCodecTest, RoundTrip) {
  SampleBatch batch;
  batch.states = Tensor::from_floats(Shape{2, 2}, {1, 2, 3, 4});
  batch.actions = Tensor::from_floats(Shape{2, 1}, {0, 1});
  batch.rewards = Tensor::from_floats(Shape{2}, {0.5f, -0.5f});
  batch.next_states = Tensor::from_floats(Shape{2, 2}, {5, 6, 7, 8});
  batch.terminals = Tensor::from_bools(Shape{2}, {false, true});
  batch.priorities = Tensor::from_floats(Shape{2}, {0.9f, 0.1f});
  batch.num_records = 2;
  batch.env_frames = 17;
  batch.episode_returns = {1.5, -3.25};

  SampleBatch back = decode_sample_batch(encode_sample_batch(batch));
  EXPECT_EQ(back.num_records, 2);
  EXPECT_EQ(back.env_frames, 17);
  ASSERT_EQ(back.episode_returns.size(), 2u);
  EXPECT_EQ(back.episode_returns[1], -3.25);
  EXPECT_TRUE(back.states.shape() == batch.states.shape());
  EXPECT_EQ(back.states.data<float>()[3], 4.0f);
  EXPECT_EQ(back.terminals.data<uint8_t>()[1], 1);

  // A truncated batch never decodes silently wrong.
  std::vector<uint8_t> bytes = encode_sample_batch(batch);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_sample_batch(bytes), SerializationError);
}

TEST(WorkerConfigCodecTest, JsonRoundTrip) {
  ApexConfig config;
  config.agent_config = Json::parse(R"({"type": "apex", "seed": 3})");
  config.env_spec = Json::parse(R"({"type": "grid_world"})");
  config.envs_per_worker = 2;
  config.worker_sample_size = 64;
  config.n_step = 5;
  config.discount = 0.9;
  config.seed = 77;
  config.act_per_env = true;

  ApexConfig back = apex_worker_config_from_json(
      Json::parse(apex_worker_config_to_json(config).dump()));
  EXPECT_EQ(back.envs_per_worker, 2);
  EXPECT_EQ(back.worker_sample_size, 64);
  EXPECT_EQ(back.n_step, 5);
  EXPECT_EQ(back.discount, 0.9);
  EXPECT_EQ(back.seed, 77u);
  EXPECT_TRUE(back.act_per_env);
  EXPECT_EQ(back.agent_config.get_string("type", ""), "apex");
  EXPECT_EQ(back.env_spec.get_string("type", ""), "grid_world");
}

}  // namespace
}  // namespace rlgraph
