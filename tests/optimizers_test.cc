// Tests for optimizer components: convergence on a quadratic, slot state,
// gradient clipping, and the step API contract.
#include <gtest/gtest.h>

#include "components/optimizers.h"
#include "core/build_context.h"
#include "core/graph_executor.h"

namespace rlgraph {
namespace {

// Root that minimizes loss(w) = mean((w - target)^2) over variable w.
class QuadraticProblem : public Component {
 public:
  QuadraticProblem(std::shared_ptr<Optimizer> optimizer,
                   std::vector<float> target)
      : Component("problem"), target_(std::move(target)) {
    opt_ = add_component(std::move(optimizer));
    register_api("step", [this](BuildContext& ctx, const OpRecs&) -> OpRecs {
      OpRecs loss = graph_fn(
          ctx, "loss",
          [this](OpContext& ops, const std::vector<OpRef>&) {
            OpRef w = ops.variable("problem/w");
            OpRef t = ops.constant(Tensor::from_floats(
                Shape{static_cast<int64_t>(target_.size())}, target_));
            return std::vector<OpRef>{
                ops.reduce_mean(ops.square(ops.sub(w, t)))};
          },
          {});
      OpRecs vars;
      if (!ctx.assembling()) {
        OpRef w = ctx.ops().variable("problem/w");
        vars.emplace_back(FloatBox(Shape{2}), w);
      }
      OpRecs inputs{loss[0]};
      inputs.insert(inputs.end(), vars.begin(), vars.end());
      OpRecs out = opt_->call_api(ctx, "step", inputs);
      // Return the update group AND the loss: only fetched ops execute, so
      // the group must be part of the API outputs for the step to apply.
      return OpRecs{out[0], out[1]};
    });
  }

  void create_variables(BuildContext& ctx) override {
    create_var(ctx, "w", Tensor::from_floats(
                             Shape{static_cast<int64_t>(target_.size())},
                             std::vector<float>(target_.size(), 0.0f)));
  }

 private:
  Optimizer* opt_;
  std::vector<float> target_;
};

double minimize(std::shared_ptr<Optimizer> optimizer, int steps,
                Backend backend = Backend::kStatic) {
  auto problem = std::make_shared<QuadraticProblem>(
      std::move(optimizer), std::vector<float>{3.0f, -2.0f});
  ExecutorOptions opts;
  opts.backend = backend;
  GraphExecutor exec(problem, {{"step", {}}}, opts);
  exec.build();
  double loss = 0;
  for (int i = 0; i < steps; ++i) {
    loss = exec.execute("step", {})[1].scalar_value();
  }
  return loss;
}

TEST(OptimizerTest, SgdConverges) {
  double loss = minimize(
      std::make_shared<GradientDescentOptimizer>("opt", 0.1), 200);
  EXPECT_LT(loss, 1e-4);
}

TEST(OptimizerTest, AdamConverges) {
  double loss = minimize(std::make_shared<AdamOptimizer>("opt", 0.1), 300);
  EXPECT_LT(loss, 1e-3);
}

TEST(OptimizerTest, RmsPropConverges) {
  double loss = minimize(std::make_shared<RMSPropOptimizer>("opt", 0.05), 400);
  EXPECT_LT(loss, 1e-3);
}

TEST(OptimizerTest, ConvergesOnDefineByRunBackend) {
  double loss = minimize(
      std::make_shared<GradientDescentOptimizer>("opt", 0.1), 200,
      Backend::kImperative);
  EXPECT_LT(loss, 1e-4);
}

TEST(OptimizerTest, AdamCreatesSlotVariables) {
  auto problem = std::make_shared<QuadraticProblem>(
      std::make_shared<AdamOptimizer>("opt", 0.01),
      std::vector<float>{1.0f, 1.0f});
  GraphExecutor exec(problem, {{"step", {}}});
  exec.build();
  exec.execute("step", {});
  EXPECT_TRUE(exec.variables().exists("problem/opt/m/problem.w"));
  EXPECT_TRUE(exec.variables().exists("problem/opt/v/problem.w"));
  EXPECT_TRUE(exec.variables().exists("problem/opt/t/problem.w"));
}

TEST(OptimizerTest, GradientClippingBoundsStep) {
  // Huge learning-rate-free check: with clip 1.0 the global grad norm of the
  // first step is bounded, so |w| moves at most lr * 1.0 per element-norm.
  auto unclipped = std::make_shared<QuadraticProblem>(
      std::make_shared<GradientDescentOptimizer>("opt", 1.0, /*clip=*/0.0),
      std::vector<float>{100.0f, 0.0f});
  GraphExecutor e1(unclipped, {{"step", {}}});
  e1.build();
  e1.execute("step", {});
  double moved_unclipped =
      std::abs(e1.variables().get("problem/w").at_flat(0));

  auto clipped = std::make_shared<QuadraticProblem>(
      std::make_shared<GradientDescentOptimizer>("opt", 1.0, /*clip=*/1.0),
      std::vector<float>{100.0f, 0.0f});
  GraphExecutor e2(clipped, {{"step", {}}});
  e2.build();
  e2.execute("step", {});
  double moved_clipped = std::abs(e2.variables().get("problem/w").at_flat(0));
  EXPECT_GT(moved_unclipped, 50.0);
  EXPECT_LE(moved_clipped, 1.0 + 1e-5);
}

TEST(OptimizerTest, FactoryParsesConfigs) {
  EXPECT_NE(make_optimizer("o", Json::parse(R"({"type": "sgd"})")), nullptr);
  EXPECT_NE(make_optimizer("o", Json::parse(R"({"type": "adam",
                                                "learning_rate": 0.01})")),
            nullptr);
  EXPECT_NE(make_optimizer("o", Json::parse(R"({"type": "rmsprop"})")),
            nullptr);
  EXPECT_THROW(make_optimizer("o", Json::parse(R"({"type": "lion"})")),
               ConfigError);
  EXPECT_THROW(
      make_optimizer("o", Json::parse(R"({"learning_rate": -1.0})")),
      ValueError);
}

}  // namespace
}  // namespace rlgraph
