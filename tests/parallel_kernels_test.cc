// Bitwise serial-vs-parallel equivalence for every sharded kernel: each
// case computes the result with parallelism forced to 1, then at 2 and 8
// threads, and requires exact equality. Inputs are sized past the kernels'
// cost thresholds so the parallel runs genuinely shard.
#include <gtest/gtest.h>

#include <functional>

#include "tensor/kernels.h"
#include "util/thread_pool.h"

namespace rlgraph {
namespace {

Tensor random_tensor(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return kernels::random_uniform(shape, -2.0, 2.0, rng);
}

// Run `fn` serially and at several thread counts; every result must be
// bitwise identical to the serial one.
void expect_parallel_matches_serial(const std::function<Tensor()>& fn) {
  set_global_parallelism(1);
  Tensor serial = fn();
  for (size_t threads : {size_t{2}, size_t{8}}) {
    set_global_parallelism(threads);
    Tensor parallel = fn();
    EXPECT_TRUE(serial.equals(parallel)) << "diverged at " << threads
                                         << " threads";
  }
  set_global_parallelism(1);
}

TEST(ParallelKernelsTest, ElementwiseBinarySameShape) {
  Tensor a = random_tensor(Shape{200, 200}, 1);  // 40000 > kCheapGrain
  Tensor b = random_tensor(Shape{200, 200}, 2);
  expect_parallel_matches_serial([&] { return kernels::add(a, b); });
  expect_parallel_matches_serial([&] { return kernels::mul(a, b); });
  expect_parallel_matches_serial([&] { return kernels::maximum(a, b); });
}

TEST(ParallelKernelsTest, ElementwiseBinaryBroadcast) {
  Tensor a = random_tensor(Shape{3000, 8}, 3);
  Tensor row = random_tensor(Shape{8}, 4);
  Tensor col = random_tensor(Shape{3000, 1}, 5);
  expect_parallel_matches_serial([&] { return kernels::add(a, row); });
  expect_parallel_matches_serial([&] { return kernels::mul(a, col); });
}

TEST(ParallelKernelsTest, ElementwiseUnary) {
  Tensor a = random_tensor(Shape{120, 200}, 6);  // 24000 > kMathGrain
  expect_parallel_matches_serial([&] { return kernels::exp(a); });
  expect_parallel_matches_serial([&] { return kernels::tanh(a); });
  expect_parallel_matches_serial([&] { return kernels::sigmoid(a); });
  expect_parallel_matches_serial([&] { return kernels::relu(a); });
}

TEST(ParallelKernelsTest, Where) {
  Tensor a = random_tensor(Shape{200, 200}, 7);
  Tensor b = random_tensor(Shape{200, 200}, 8);
  Tensor cond = kernels::greater(a, b);
  expect_parallel_matches_serial([&] { return kernels::where(cond, a, b); });
}

TEST(ParallelKernelsTest, MatMul) {
  Tensor a = random_tensor(Shape{96, 64}, 9);
  Tensor b = random_tensor(Shape{64, 80}, 10);
  expect_parallel_matches_serial([&] { return kernels::matmul(a, b); });
  // k above the 256-element block size exercises the tiled accumulation.
  Tensor c = random_tensor(Shape{48, 600}, 11);
  Tensor d = random_tensor(Shape{600, 32}, 12);
  expect_parallel_matches_serial([&] { return kernels::matmul(c, d); });
}

TEST(ParallelKernelsTest, Transpose2D) {
  Tensor a = random_tensor(Shape{200, 300}, 13);  // non-square, off-tile sizes
  expect_parallel_matches_serial([&] { return kernels::transpose2d(a); });
  Tensor b = random_tensor(Shape{257, 129}, 14);
  expect_parallel_matches_serial([&] { return kernels::transpose2d(b); });
}

TEST(ParallelKernelsTest, Conv2DForward) {
  Tensor input = random_tensor(Shape{4, 16, 16, 3}, 15);
  Tensor filter = random_tensor(Shape{3, 3, 3, 8}, 16);
  expect_parallel_matches_serial(
      [&] { return kernels::conv2d(input, filter, 1, true); });
  expect_parallel_matches_serial(
      [&] { return kernels::conv2d(input, filter, 2, false); });
}

TEST(ParallelKernelsTest, Conv2DBackpropInput) {
  Shape input_shape{4, 16, 16, 3};
  Tensor filter = random_tensor(Shape{3, 3, 3, 8}, 17);
  Tensor grad_out = random_tensor(Shape{4, 16, 16, 8}, 18);
  expect_parallel_matches_serial([&] {
    return kernels::conv2d_backprop_input(input_shape, filter, grad_out, 1,
                                          true);
  });
}

TEST(ParallelKernelsTest, Conv2DBackpropFilter) {
  // The one conv kernel that reduces across shards (per-shard partial
  // filters combined in a fixed tree): the core determinism case.
  Tensor input = random_tensor(Shape{8, 12, 12, 3}, 19);
  Tensor grad_out = random_tensor(Shape{8, 12, 12, 6}, 20);
  expect_parallel_matches_serial([&] {
    return kernels::conv2d_backprop_filter(input, Shape{3, 3, 3, 6}, grad_out,
                                           1, true);
  });
}

TEST(ParallelKernelsTest, FullReductions) {
  // axis == -1 reduces 40000 elements to a scalar via shard partials + a
  // fixed pairwise tree; float addition is non-associative, so this only
  // passes if the combine order is thread-count independent.
  Tensor a = random_tensor(Shape{200, 200}, 21);
  expect_parallel_matches_serial(
      [&] { return kernels::reduce_sum(a, -1, false); });
  expect_parallel_matches_serial(
      [&] { return kernels::reduce_mean(a, -1, false); });
  expect_parallel_matches_serial(
      [&] { return kernels::reduce_max(a, -1, false); });
}

TEST(ParallelKernelsTest, AxisReductions) {
  Tensor a = random_tensor(Shape{300, 200}, 22);
  for (int axis : {0, 1}) {
    expect_parallel_matches_serial(
        [&, axis] { return kernels::reduce_sum(a, axis, false); });
    expect_parallel_matches_serial(
        [&, axis] { return kernels::reduce_mean(a, axis, true); });
    expect_parallel_matches_serial(
        [&, axis] { return kernels::reduce_max(a, axis, false); });
  }
}

TEST(ParallelKernelsTest, SoftmaxFamily) {
  Tensor a = random_tensor(Shape{128, 512}, 23);
  expect_parallel_matches_serial([&] { return kernels::softmax(a); });
  expect_parallel_matches_serial([&] { return kernels::log_softmax(a); });
  expect_parallel_matches_serial([&] { return kernels::argmax(a); });
}

}  // namespace
}  // namespace rlgraph
