// Inter-op parallel scheduling of CompiledPlans: wide plans produce results
// bitwise identical to serial execution at any thread count, stateful steps
// stay ordered (RNG draws, variable writes), failures propagate, and a full
// DQN training trace is reproducible at 1/2/8 threads.
#include <gtest/gtest.h>

#include <cmath>

#include "agents/dqn_agent.h"
#include "backend/static_context.h"
#include "env/grid_world.h"
#include "graph/exec_plan.h"
#include "graph/session.h"
#include "util/thread_pool.h"

namespace rlgraph {
namespace {

struct ParallelismGuard {
  explicit ParallelismGuard(size_t n) { set_global_parallelism(n); }
  ~ParallelismGuard() { set_global_parallelism(1); }
};

class ParallelPlanTest : public ::testing::Test {
 protected:
  ParallelPlanTest() : rng_(7), ctx_(&store_, &rng_) {}

  Session make_session() { return Session(ctx_.graph(), &store_, &rng_); }

  VariableStore store_;
  Rng rng_;
  StaticGraphContext ctx_;
};

TEST_F(ParallelPlanTest, WidePlanMatchesSerialBitwise) {
  // Eight independent branches off one input: max_parallel_width() == 8,
  // so the parallel executor genuinely overlaps steps.
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{256});
  std::vector<OpRef> branches;
  for (int i = 0; i < 8; ++i) {
    OpRef b = ctx_.tanh(ctx_.mul(x, ctx_.scalar(0.25f * (i + 1))));
    branches.push_back(ctx_.exp(ctx_.neg(b)));
  }
  OpRef sum = branches[0];
  for (int i = 1; i < 8; ++i) sum = ctx_.add(sum, branches[i]);

  Session s = make_session();
  auto call = s.prepare({{sum.node, 0}}, {x.node});
  EXPECT_GE(call->plan().max_parallel_width(), 8);

  std::vector<float> data(256);
  for (size_t i = 0; i < data.size(); ++i) data[i] = 0.013f * (float)i - 1.5f;
  Tensor feed = Tensor::from_floats(Shape{256}, data);

  set_global_parallelism(1);
  std::vector<float> serial = call->run({feed})[0].to_floats();
  for (size_t threads : {size_t{2}, size_t{8}}) {
    ParallelismGuard guard(threads);
    for (int rep = 0; rep < 5; ++rep) {
      EXPECT_EQ(call->run({feed})[0].to_floats(), serial)
          << threads << " threads, rep " << rep;
    }
  }
}

TEST_F(ParallelPlanTest, ChainPlanStaysOnSerialPath) {
  // A pure chain has width 1: the executor must not pay scheduling
  // overhead (and max_parallel_width() advertises that).
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{64});
  OpRef v = x;
  for (int i = 0; i < 6; ++i) v = ctx_.neg(v);
  Session s = make_session();
  auto call = s.prepare({{v.node, 0}}, {x.node});
  EXPECT_EQ(call->plan().max_parallel_width(), 1);

  ParallelismGuard guard(8);
  std::vector<float> data(64, 1.25f);
  Tensor out = call->run({Tensor::from_floats(Shape{64}, data)})[0];
  EXPECT_EQ(out.to_floats(), data);  // even number of negations
}

TEST_F(ParallelPlanTest, StatefulStepsKeepScheduleOrder) {
  // Two assign_adds into the same variable plus a read, all fetched from
  // one plan: the stateful chain must serialize them in schedule order at
  // any parallelism, alongside enough pure width to trigger the parallel
  // executor.
  ctx_.create_variable("acc", Tensor::zeros(DType::kFloat32, Shape{16}));
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{16});
  std::vector<OpRef> pure;
  for (int i = 0; i < 6; ++i) {
    pure.push_back(ctx_.tanh(ctx_.mul(x, ctx_.scalar(0.1f * (i + 1)))));
  }
  OpRef wide = pure[0];
  for (int i = 1; i < 6; ++i) wide = ctx_.add(wide, pure[i]);
  OpRef a1 = ctx_.assign_add("acc", x);
  OpRef a2 = ctx_.assign_add("acc", ctx_.mul(x, ctx_.scalar(2.0f)));
  OpRef read = ctx_.variable("acc");
  std::vector<int> read_deps{a1.node, a2.node};
  ctx_.graph()->mutable_node(read.node).control_inputs = read_deps;

  Session s = make_session();
  auto call = s.prepare({{wide.node, 0}, {read.node, 0}}, {x.node});

  std::vector<float> data(16, 0.5f);
  Tensor feed = Tensor::from_floats(Shape{16}, data);
  for (size_t threads : {size_t{1}, size_t{8}}) {
    store_.set("acc", Tensor::zeros(DType::kFloat32, Shape{16}));
    ParallelismGuard guard(threads);
    std::vector<Tensor> out = call->run({feed});
    // 0.5 + 1.0 applied once each: the read (ordered after both writes by
    // control deps + the stateful chain) sees 1.5 everywhere.
    for (float v : out[1].to_floats()) {
      EXPECT_FLOAT_EQ(v, 1.5f) << threads << " threads";
    }
  }
}

TEST_F(ParallelPlanTest, FailingStepPropagatesFromParallelExecution) {
  // A wide plan where one branch reads an unfed placeholder: its kernel
  // throws mid-run on some pool thread, and the submitting thread must
  // observe that exception (first failure wins, run terminates cleanly).
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{32});
  OpRef unfed = ctx_.placeholder("unfed", DType::kFloat32, Shape{32});
  std::vector<OpRef> branches;
  for (int i = 0; i < 6; ++i) {
    branches.push_back(ctx_.tanh(ctx_.mul(x, ctx_.scalar(0.2f * (i + 1)))));
  }
  OpRef bad = ctx_.neg(unfed);
  OpRef sum = bad;
  for (const OpRef& b : branches) sum = ctx_.add(sum, b);

  auto plan = CompiledPlan::compile(ctx_.graph(), {{sum.node, 0}}, {x.node});
  ASSERT_GE(plan->max_parallel_width(), 2);
  ParallelismGuard guard(8);
  RunArena arena;
  std::vector<float> data(32, 1.0f);
  EXPECT_THROW(plan->execute(arena, {Tensor::from_floats(Shape{32}, data)},
                             &store_, &rng_),
               Error);
}

TEST_F(ParallelPlanTest, FusedPlanBitwiseMatchesUnfusedAtAnyThreadCount) {
  // A two-layer dense network plus an elementwise tail: pattern fusion
  // collapses MatMul+Add+activation into FusedDense steps and the tail into
  // one FusedElementwise. The fused kernels reuse the standalone kernels'
  // shard grains and per-element loops, so results are bitwise identical to
  // the unfused plan at any thread count — with fewer dispatches.
  auto fill = [](int64_t count, float scale) {
    std::vector<float> v(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      v[static_cast<size_t>(i)] =
          scale * std::sin(0.37f * static_cast<float>(i));
    }
    return v;
  };
  store_.create("w1", Tensor::from_floats(Shape{32, 32}, fill(32 * 32, 0.3f)));
  store_.create("b1", Tensor::from_floats(Shape{32}, fill(32, 0.1f)));
  store_.create("w2", Tensor::from_floats(Shape{32, 16}, fill(32 * 16, 0.25f)));
  store_.create("b2", Tensor::from_floats(Shape{16}, fill(16, 0.05f)));

  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{64, 32});
  OpRef h1 = ctx_.relu(ctx_.add(ctx_.matmul(x, ctx_.variable("w1")),
                                ctx_.variable("b1")));
  OpRef h2 = ctx_.tanh(ctx_.add(ctx_.matmul(h1, ctx_.variable("w2")),
                                ctx_.variable("b2")));
  OpRef out = ctx_.mul(ctx_.neg(h2), ctx_.scalar(0.5f));

  auto unfused =
      CompiledPlan::compile(ctx_.graph(), {{out.node, 0}}, {x.node});
  auto fused = CompiledPlan::compile(ctx_.graph(), {{out.node, 0}}, {x.node},
                                     /*fuse_patterns=*/true);
  EXPECT_GE(fused->fused_kernel_steps(), 3);  // 2x FusedDense + tail chain
  EXPECT_LT(fused->num_steps(), unfused->num_steps());

  Tensor feed = Tensor::from_floats(Shape{64, 32}, fill(64 * 32, 1.0f));
  set_global_parallelism(1);
  RunArena serial_arena;
  std::vector<float> serial =
      unfused->execute(serial_arena, {feed}, &store_, &rng_)[0].to_floats();
  {
    RunArena arena;
    EXPECT_EQ(fused->execute(arena, {feed}, &store_, &rng_)[0].to_floats(),
              serial);
  }
  for (size_t threads : {size_t{2}, size_t{8}}) {
    ParallelismGuard guard(threads);
    for (int rep = 0; rep < 3; ++rep) {
      RunArena fused_arena;
      EXPECT_EQ(
          fused->execute(fused_arena, {feed}, &store_, &rng_)[0].to_floats(),
          serial)
          << threads << " threads, rep " << rep;
      RunArena unfused_arena;
      EXPECT_EQ(
          unfused->execute(unfused_arena, {feed}, &store_, &rng_)[0]
              .to_floats(),
          serial)
          << threads << " threads, rep " << rep;
    }
  }
}

Json dqn_config() {
  Json cfg = Json::parse(R"({
    "type": "dqn",
    "network": [{"type": "dense", "units": 24, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 256},
    "optimizer": {"type": "adam", "learning_rate": 0.002},
    "exploration": {"eps_start": 0.8, "eps_end": 0.1, "decay_steps": 300},
    "update": {"batch_size": 16, "sync_interval": 10, "min_records": 32},
    "discount": 0.95
  })");
  cfg["backend"] = Json("static");
  return cfg;
}

struct Trace {
  std::vector<int32_t> actions;
  std::vector<double> losses;
};

Trace run_dqn(int steps) {
  GridWorld env(GridWorld::Config{4, 0.01, 30, true});
  env.seed(99);
  DQNAgent agent(dqn_config(), env.state_space(), env.action_space());
  agent.build();
  Trace trace;
  Tensor obs = env.reset();
  for (int i = 0; i < steps; ++i) {
    Tensor batch = obs.reshaped(obs.shape().prepend(1));
    Tensor action = agent.get_actions(batch);
    trace.actions.push_back(action.to_ints()[0]);
    StepResult r = env.step(action.to_ints()[0]);
    agent.observe(agent.last_preprocessed(), action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}),
                  r.observation.reshaped(r.observation.shape().prepend(1)),
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    trace.losses.push_back(agent.update());
    obs = r.terminal ? env.reset() : r.observation;
  }
  return trace;
}

TEST(ParallelDQNTest, FullUpdateTraceIdenticalAtAnyThreadCount) {
  // The tentpole acceptance test: a complete DQN act/observe/update loop —
  // forward pass, loss, autodiff backward pass, Adam apply, target sync —
  // produces bit-identical actions and losses at 1, 2, and 8 threads.
  set_global_parallelism(1);
  Trace serial = run_dqn(80);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    ParallelismGuard guard(threads);
    Trace parallel = run_dqn(80);
    EXPECT_EQ(serial.actions, parallel.actions) << threads << " threads";
    EXPECT_EQ(serial.losses, parallel.losses) << threads << " threads";
  }
}

}  // namespace
}  // namespace rlgraph
