// Tests for the graph optimization passes: DCE, constant folding, and
// elementwise fusion, including endpoint remapping correctness.
#include <gtest/gtest.h>

#include "backend/static_context.h"
#include "graph/passes.h"
#include "graph/session.h"

namespace rlgraph {
namespace {

class PassesTest : public ::testing::Test {
 protected:
  PassesTest() : rng_(3), ctx_(&store_, &rng_) {}

  Tensor eval(const OptimizeResult& opt, OpRef ref, const FeedMap& feeds = {}) {
    Session s(opt.graph, &store_, &rng_);
    Endpoint e = opt.endpoint_map.at({ref.node, ref.index});
    return s.run({e}, feeds)[0];
  }

  VariableStore store_;
  Rng rng_;
  StaticGraphContext ctx_;
};

TEST_F(PassesTest, DeadNodesRemoved) {
  OpRef live = ctx_.scalar(1.0f);
  OpRef dead = ctx_.neg(ctx_.scalar(2.0f));
  (void)dead;
  OptimizeResult opt =
      optimize_graph(ctx_.graph_def(), {{live.node, live.index}});
  EXPECT_EQ(opt.nodes_after, 1);
  EXPECT_FLOAT_EQ(eval(opt, live).scalar_value(), 1.0f);
}

TEST_F(PassesTest, ConstantFolding) {
  OpRef a = ctx_.scalar(2.0f);
  OpRef b = ctx_.scalar(3.0f);
  OpRef sum = ctx_.add(a, b);
  OpRef doubled = ctx_.mul(sum, ctx_.scalar(2.0f));
  OptimizeResult opt =
      optimize_graph(ctx_.graph_def(), {{doubled.node, doubled.index}});
  EXPECT_GE(opt.folded, 2);
  // Whole graph collapses to one constant.
  EXPECT_EQ(opt.nodes_after, 1);
  EXPECT_EQ(opt.graph->node(0).op, "Const");
  EXPECT_FLOAT_EQ(eval(opt, doubled).scalar_value(), 10.0f);
}

TEST_F(PassesTest, FoldingStopsAtPlaceholders) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{});
  OpRef y = ctx_.add(x, ctx_.add(ctx_.scalar(1.0f), ctx_.scalar(2.0f)));
  OptimizeResult opt = optimize_graph(ctx_.graph_def(),
                                      {{y.node, y.index}, {x.node, x.index}});
  EXPECT_EQ(opt.folded, 1);  // 1+2 folds, x+3 cannot
  FeedMap feeds;
  feeds[opt.endpoint_map.at({x.node, 0}).node] = Tensor::scalar(10.0f);
  EXPECT_FLOAT_EQ(eval(opt, y, feeds).scalar_value(), 13.0f);
}

TEST_F(PassesTest, StatefulOpsNeverFolded) {
  store_.create("v", Tensor::scalar(5.0f));
  OpRef read = ctx_.variable("v");
  OpRef y = ctx_.neg(read);
  OptimizeResult opt = optimize_graph(ctx_.graph_def(), {{y.node, y.index}});
  // Variable read survives; value tracks the store.
  EXPECT_FLOAT_EQ(eval(opt, y).scalar_value(), -5.0f);
  store_.set("v", Tensor::scalar(7.0f));
  EXPECT_FLOAT_EQ(eval(opt, y).scalar_value(), -7.0f);
}

TEST_F(PassesTest, ElementwiseChainsFuse) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim});
  OpRef y = ctx_.tanh(ctx_.relu(ctx_.neg(x)));
  OptimizeResult opt = optimize_graph(ctx_.graph_def(),
                                      {{y.node, y.index}, {x.node, x.index}});
  EXPECT_EQ(opt.fused_chains, 1);
  // Placeholder + fused node only.
  EXPECT_EQ(opt.nodes_after, 2);
  FeedMap feeds;
  feeds[opt.endpoint_map.at({x.node, 0}).node] =
      Tensor::from_floats(Shape{3}, {-1, 0, 2});
  Tensor out = eval(opt, y, feeds);
  EXPECT_NEAR(out.data<float>()[0], std::tanh(1.0f), 1e-6);
  EXPECT_NEAR(out.data<float>()[1], 0.0f, 1e-6);
  EXPECT_NEAR(out.data<float>()[2], 0.0f, 1e-6);  // relu(-2) = 0
}

TEST_F(PassesTest, FusionRespectsMultipleConsumers) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim});
  OpRef mid = ctx_.relu(x);
  OpRef y1 = ctx_.tanh(mid);
  OpRef y2 = ctx_.exp(mid);  // mid has two consumers; must not be absorbed
  OptimizeResult opt = optimize_graph(
      ctx_.graph_def(),
      {{y1.node, 0}, {y2.node, 0}, {x.node, 0}});
  FeedMap feeds;
  feeds[opt.endpoint_map.at({x.node, 0}).node] =
      Tensor::from_floats(Shape{1}, {0.5f});
  EXPECT_NEAR(eval(opt, y1, feeds).scalar_value(), std::tanh(0.5), 1e-6);
  EXPECT_NEAR(eval(opt, y2, feeds).scalar_value(), std::exp(0.5), 1e-5);
}

TEST_F(PassesTest, RootsAreNeverFusedAway) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim});
  OpRef mid = ctx_.relu(x);  // a root (fetched by the API registry)
  OpRef y = ctx_.tanh(mid);
  OptimizeResult opt = optimize_graph(
      ctx_.graph_def(), {{y.node, 0}, {mid.node, 0}, {x.node, 0}});
  FeedMap feeds;
  feeds[opt.endpoint_map.at({x.node, 0}).node] =
      Tensor::from_floats(Shape{1}, {2.0f});
  EXPECT_NEAR(eval(opt, mid, feeds).scalar_value(), 2.0, 1e-6);
  EXPECT_NEAR(eval(opt, y, feeds).scalar_value(), std::tanh(2.0), 1e-6);
}

TEST_F(PassesTest, OptionsDisablePasses) {
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim});
  OpRef y = ctx_.tanh(ctx_.relu(ctx_.add(ctx_.scalar(1.0f),
                                         ctx_.scalar(2.0f))));
  (void)x;
  OptimizeOptions options;
  options.constant_folding = false;
  options.elementwise_fusion = false;
  OptimizeResult opt =
      optimize_graph(ctx_.graph_def(), {{y.node, 0}}, options);
  EXPECT_EQ(opt.folded, 0);
  EXPECT_EQ(opt.fused_chains, 0);
  EXPECT_FLOAT_EQ(eval(opt, y).scalar_value(), std::tanh(3.0f));
}

// --- per-plan pattern fusion -------------------------------------------------

class PlanFusionTest : public PassesTest {
 protected:
  // Evaluate an endpoint of the ORIGINAL graph through the fused graph.
  Tensor eval_fused(const PlanFusionResult& fused, OpRef ref,
                    const FeedMap& feeds = {}) {
    Session s(fused.graph, &store_, &rng_);
    Endpoint e = fused.endpoint_map.at({ref.node, ref.index});
    FeedMap remapped;
    for (const auto& [node, value] : feeds) {
      remapped[fused.endpoint_map.at({node, 0}).node] = value;
    }
    return s.run({e}, remapped)[0];
  }

  Tensor eval_raw(OpRef ref, const FeedMap& feeds = {}) {
    Session s(ctx_.graph(), &store_, &rng_);
    return s.run({{ref.node, ref.index}}, feeds)[0];
  }

  static void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
    ASSERT_EQ(a.shape(), b.shape());
    const float* pa = a.data<float>();
    const float* pb = b.data<float>();
    for (int64_t i = 0; i < a.num_elements(); ++i) {
      EXPECT_EQ(pa[i], pb[i]) << "element " << i;
    }
  }
};

TEST_F(PlanFusionTest, MatMulBiasReluBecomesFusedDense) {
  store_.create("w", Tensor::from_floats(Shape{3, 2}, {1, -2, 3, 4, -5, 6}));
  store_.create("b", Tensor::from_floats(Shape{2}, {0.5f, -0.25f}));
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim, 3});
  OpRef y = ctx_.relu(ctx_.add(ctx_.matmul(x, ctx_.variable("w")),
                               ctx_.variable("b")));

  PlanFusionResult fused = fuse_plan_patterns(ctx_.graph_def(), {{y.node, 0}});
  ASSERT_NE(fused.graph, nullptr);
  EXPECT_EQ(fused.fused_patterns, 1);
  EXPECT_EQ(fused.steps_saved, 2);  // Add + Relu absorbed into the MatMul
  const NodeDef& fn =
      fused.graph->node(fused.endpoint_map.at({y.node, 0}).node);
  EXPECT_EQ(fn.op, "FusedDense");

  FeedMap feeds;
  feeds[x.node] = Tensor::from_floats(Shape{2, 3}, {1, -1, 2, 0, 3, -2});
  expect_bitwise_equal(eval_fused(fused, y, feeds), eval_raw(y, feeds));
}

TEST_F(PlanFusionTest, MultiConsumerIntermediateBlocksDenseFusion) {
  // Near miss: the MatMul output feeds both the bias Add and a second
  // consumer, so absorbing it would recompute (or orphan) that consumer.
  store_.create("w2", Tensor::from_floats(Shape{2, 2}, {1, 2, 3, 4}));
  store_.create("b2", Tensor::from_floats(Shape{2}, {1, 1}));
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim, 2});
  OpRef mm = ctx_.matmul(x, ctx_.variable("w2"));
  OpRef biased = ctx_.add(mm, ctx_.variable("b2"));
  OpRef other = ctx_.neg(mm);  // second consumer of the MatMul
  OpRef out = ctx_.add(biased, other);

  PlanFusionResult fused =
      fuse_plan_patterns(ctx_.graph_def(), {{out.node, 0}});
  EXPECT_EQ(fused.fused_patterns, 0);
  if (fused.graph != nullptr) {  // chain fusion may still fire elsewhere
    FeedMap feeds;
    feeds[x.node] = Tensor::from_floats(Shape{1, 2}, {2, -3});
    expect_bitwise_equal(eval_fused(fused, out, feeds), eval_raw(out, feeds));
  }
}

TEST_F(PlanFusionTest, BroadcastBinaryChainFuses) {
  // relu(x + b) * s with b [4] broadcast over [B, 4] and a scalar s: one
  // FusedElementwise with two broadcast extras.
  store_.create("bias_vec", Tensor::from_floats(Shape{4}, {1, -1, 2, -2}));
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{2, 4});
  OpRef y = ctx_.mul(ctx_.relu(ctx_.add(x, ctx_.variable("bias_vec"))),
                     ctx_.scalar(3.0f));

  PlanFusionResult fused = fuse_plan_patterns(ctx_.graph_def(), {{y.node, 0}});
  ASSERT_NE(fused.graph, nullptr);
  EXPECT_EQ(fused.fused_chains, 1);
  EXPECT_GE(fused.steps_saved, 2);
  const NodeDef& fn =
      fused.graph->node(fused.endpoint_map.at({y.node, 0}).node);
  EXPECT_EQ(fn.op, "FusedElementwise");
  EXPECT_EQ(fn.inputs.size(), 3u);  // chain input + bias extra + scalar extra

  FeedMap feeds;
  feeds[x.node] =
      Tensor::from_floats(Shape{2, 4}, {0.5f, -2, 1, 3, -1, 4, -0.5f, 2});
  expect_bitwise_equal(eval_fused(fused, y, feeds), eval_raw(y, feeds));
}

TEST_F(PlanFusionTest, KeptEndpointsAreNeverAbsorbed) {
  // Fetching the intermediate relu keeps it addressable: the chain above it
  // must not absorb it.
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim});
  OpRef mid = ctx_.relu(x);
  OpRef y = ctx_.tanh(ctx_.neg(mid));

  PlanFusionResult fused = fuse_plan_patterns(
      ctx_.graph_def(), {{y.node, 0}, {mid.node, 0}});
  ASSERT_NE(fused.graph, nullptr);  // neg+tanh still fuse
  EXPECT_EQ(fused.fused_chains, 1);
  EXPECT_EQ(fused.steps_saved, 1);
  FeedMap feeds;
  feeds[x.node] = Tensor::from_floats(Shape{3}, {-1, 0.5f, 2});
  expect_bitwise_equal(eval_fused(fused, mid, feeds), eval_raw(mid, feeds));
  expect_bitwise_equal(eval_fused(fused, y, feeds), eval_raw(y, feeds));
}

TEST_F(PlanFusionTest, StatefulClosureDeclines) {
  // An Assign in the fetched closure marks a training/acting plan; the
  // whole pass declines rather than fusing around state writes.
  store_.create("sv", Tensor::scalar(1.0f));
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim});
  OpRef chain = ctx_.tanh(ctx_.relu(x));
  OpRef write = ctx_.assign("sv", chain);
  PlanFusionResult fused =
      fuse_plan_patterns(ctx_.graph_def(), {{write.node, 0}});
  EXPECT_EQ(fused.graph, nullptr);
  EXPECT_EQ(fused.fused_chains, 0);
  EXPECT_EQ(fused.fused_patterns, 0);
}

TEST_F(PassesTest, OptimizedGraphMatchesUnoptimized) {
  // A realistic mixed graph: math on placeholders, constants, a variable.
  store_.create("w", Tensor::from_floats(Shape{3, 2}, {1, 2, 3, 4, 5, 6}));
  OpRef x = ctx_.placeholder("x", DType::kFloat32, Shape{kUnknownDim, 3});
  OpRef w = ctx_.variable("w");
  OpRef h = ctx_.relu(ctx_.matmul(x, w));
  OpRef scaled = ctx_.mul(h, ctx_.add(ctx_.scalar(1.0f), ctx_.scalar(1.0f)));
  OpRef out = ctx_.reduce_sum(ctx_.tanh(ctx_.neg(scaled)));

  Tensor input = Tensor::from_floats(Shape{2, 3}, {1, -1, 2, 0, 3, -2});
  Session raw(ctx_.graph(), &store_, &rng_);
  FeedMap feeds;
  feeds[x.node] = input;
  Tensor expected = raw.run({{out.node, 0}}, feeds)[0];

  OptimizeResult opt = optimize_graph(ctx_.graph_def(),
                                      {{out.node, 0}, {x.node, 0}});
  EXPECT_LT(opt.nodes_after, opt.nodes_before);
  FeedMap feeds2;
  feeds2[opt.endpoint_map.at({x.node, 0}).node] = input;
  Tensor got = eval(opt, out, feeds2);
  EXPECT_TRUE(got.all_close(expected, 1e-5));
}

}  // namespace
}  // namespace rlgraph
