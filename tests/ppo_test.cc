// Tests for the PPO agent: API contract, GAE machinery, the clipped
// surrogate's trust-region property, and learning on Catch.
#include <gtest/gtest.h>

#include "agents/ppo_agent.h"
#include "env/catch_env.h"
#include "env/grid_world.h"
#include "env/vector_env.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

Json ppo_config() {
  return Json::parse(R"({
    "type": "ppo",
    "network": [{"type": "dense", "units": 64, "activation": "relu"},
                {"type": "dense", "units": 64, "activation": "relu"}],
    "optimizer": {"type": "adam", "learning_rate": 0.002},
    "rollout_length": 16, "discount": 0.97, "gae_lambda": 0.95,
    "clip_ratio": 0.2, "epochs": 3, "minibatch_size": 32,
    "value_coef": 0.5, "entropy_coef": 0.01
  })");
}

TEST(PPOAgentTest, ActReturnsActionsAndCachesLogProbs) {
  GridWorld env(GridWorld::Config{});
  PPOAgent agent(ppo_config(), env.state_space(), env.action_space());
  agent.build();
  Tensor s = Tensor::zeros(DType::kFloat32, Shape{4, 16});
  Tensor a = agent.get_actions(s);
  EXPECT_EQ(a.shape(), (Shape{4}));
  EXPECT_EQ(agent.last_log_probs().shape(), (Shape{4}));
  // log-probs of a 4-way categorical are in [log(eps), 0].
  for (int i = 0; i < 4; ++i) {
    EXPECT_LE(agent.last_log_probs().at_flat(i), 0.0);
    EXPECT_GT(agent.last_log_probs().at_flat(i), -10.0);
  }
}

TEST(PPOAgentTest, ObserveRequiresMatchingAct) {
  GridWorld env(GridWorld::Config{});
  PPOAgent agent(ppo_config(), env.state_space(), env.action_space());
  agent.build();
  Tensor s = Tensor::zeros(DType::kFloat32, Shape{2, 16});
  Tensor a = Tensor::from_ints(Shape{2}, {0, 1});
  Tensor r = Tensor::zeros(DType::kFloat32, Shape{2});
  Tensor t = Tensor::from_bools(Shape{2}, {false, false});
  // No preceding act(): the cached log-prob batch does not match.
  EXPECT_THROW(agent.observe(s, a, r, s, t), ValueError);
}

TEST(PPOAgentTest, UpdateRunsAfterFullRollout) {
  GridWorld env(GridWorld::Config{});
  PPOAgent agent(ppo_config(), env.state_space(), env.action_space());
  agent.build();
  Rng rng(3);
  Tensor t = Tensor::from_bools(Shape{4}, std::vector<bool>(4, false));
  for (int i = 0; i < 16; ++i) {
    Tensor s = kernels::random_uniform(Shape{4, 16}, 0, 1, rng);
    Tensor a = agent.get_actions(s);
    Tensor r = kernels::random_uniform(Shape{4}, -1, 1, rng);
    agent.observe(s, a, r, s, t);
    if (i < 15) {
      EXPECT_DOUBLE_EQ(agent.update(), 0.0);
    }
  }
  auto before = agent.get_weights("agent/policy");
  double loss = agent.update();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_EQ(agent.buffered_steps(), 0);
  auto after = agent.get_weights("agent/policy");
  bool changed = false;
  for (auto& [name, value] : before) {
    if (!value.all_close(after.at(name), 1e-9)) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(PPOAgentTest, GreedyActionsAndValuesAfterUpdates) {
  GridWorld env(GridWorld::Config{});
  Json cfg = ppo_config();
  cfg["epochs"] = Json(static_cast<int64_t>(2));
  PPOAgent agent(cfg, env.state_space(), env.action_space());
  agent.build();
  Rng rng(5);
  Tensor t = Tensor::from_bools(Shape{4}, std::vector<bool>(4, false));
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 16; ++i) {
      Tensor s = kernels::random_uniform(Shape{4, 16}, 0, 1, rng);
      Tensor a = agent.get_actions(s);
      Tensor r = kernels::random_uniform(Shape{4}, -1, 1, rng);
      agent.observe(s, a, r, s, t);
    }
    double loss = agent.update();
    EXPECT_TRUE(std::isfinite(loss)) << "round " << round;
  }
  // Post-update policy still produces valid greedy actions and finite
  // values (no NaN blow-up from the ratio/exp path).
  Tensor s = kernels::random_uniform(Shape{8, 16}, 0, 1, rng);
  Tensor greedy = agent.get_actions(s, /*explore=*/false);
  for (int i = 0; i < 8; ++i) {
    EXPECT_GE(greedy.to_ints()[i], 0);
    EXPECT_LT(greedy.to_ints()[i], 4);
  }
  Tensor v = agent.get_values(s);
  for (int64_t i = 0; i < v.num_elements(); ++i) {
    EXPECT_TRUE(std::isfinite(v.at_flat(i)));
  }
}

TEST(PPOAgentTest, LearnsCatch) {
  Json env_spec = Json::parse(
      R"({"type": "catch", "height": 8, "width": 6,
          "rounds_per_episode": 21})");
  VectorEnv env(env_spec, 8, 9);
  PPOAgent agent(ppo_config(), env.state_space(), env.action_space());
  agent.build();
  Tensor obs = env.reset();
  for (int step = 0; step < 2500; ++step) {
    Tensor actions = agent.get_actions(obs);
    VectorStepResult r = env.step(actions);
    agent.observe(obs, actions, r.rewards, r.observations, r.terminals);
    agent.update();
    obs = r.observations;
  }
  std::vector<double> returns = env.drain_episode_returns();
  ASSERT_GE(returns.size(), 8u);
  double recent = 0;
  size_t n = std::min<size_t>(returns.size(), 20);
  for (size_t i = returns.size() - n; i < returns.size(); ++i) {
    recent += returns[i];
  }
  recent /= static_cast<double>(n);
  EXPECT_GT(recent, 5.0) << "PPO failed to learn Catch";
}

TEST(PPOAgentTest, FactoryCreatesPPO) {
  GridWorld env(GridWorld::Config{});
  auto agent =
      make_agent(ppo_config(), env.state_space(), env.action_space());
  EXPECT_NE(dynamic_cast<PPOAgent*>(agent.get()), nullptr);
}

}  // namespace
}  // namespace rlgraph
