// Tests for the raylite actor engine: actor lifecycle, futures, exception
// propagation, wait(), and the object store.
#include <gtest/gtest.h>

#include <atomic>

#include "raylite/actor.h"
#include "raylite/object_store.h"

namespace rlgraph {
namespace raylite {
namespace {

struct Counter {
  int value = 0;
  int add(int x) {
    value += x;
    return value;
  }
};

TEST(ActorTest, SerializesCallsOnActorThread) {
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  std::vector<Future<int>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(actor.call([i](Counter& c) { return c.add(i); }));
  }
  // Calls execute in order with exclusive access: the final value is the
  // sum, and each intermediate result is a strictly increasing prefix sum.
  int prev = 0;
  for (auto& f : futures) {
    int v = f.get();
    EXPECT_GT(v, prev);
    prev = v;
  }
  EXPECT_EQ(prev, 5050);
}

TEST(ActorTest, ConstructsInstanceOnActorThread) {
  std::thread::id actor_thread;
  Actor<Counter> actor([&actor_thread] {
    actor_thread = std::this_thread::get_id();
    return std::make_unique<Counter>();
  });
  auto f = actor.call(
      [](Counter&) { return std::this_thread::get_id(); });
  EXPECT_EQ(f.get(), actor_thread);
  EXPECT_NE(actor_thread, std::this_thread::get_id());
}

TEST(ActorTest, PropagatesExceptions) {
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  auto f = actor.call([](Counter&) -> int {
    throw std::runtime_error("actor-side failure");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The actor survives and keeps processing.
  EXPECT_EQ(actor.call([](Counter& c) { return c.add(1); }).get(), 1);
}

TEST(ActorTest, RethrowsOriginalErrorSubtype) {
  // A throwing task marks the future errored and get() rethrows the
  // original rlgraph::Error subtype, not a flattened base type.
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  auto f = actor.call([](Counter&) -> int {
    throw NotFoundError("no such record");
  });
  f.wait();
  EXPECT_TRUE(f.ready());
  EXPECT_TRUE(f.failed());
  try {
    f.get();
    FAIL() << "expected NotFoundError";
  } catch (const NotFoundError& e) {
    EXPECT_STREQ(e.what(), "no such record");
  }
  // A successful call's future is ready but not failed.
  auto ok = actor.call([](Counter& c) { return c.add(2); });
  EXPECT_EQ(ok.get(), 2);
  EXPECT_TRUE(ok.ready());
  EXPECT_FALSE(ok.failed());
}

TEST(FutureTest, TryGetAndTimedGet) {
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  auto slow = actor.call([](Counter&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return 9;
  });
  EXPECT_FALSE(slow.try_get().has_value());
  EXPECT_THROW(slow.get_for(std::chrono::milliseconds(1)), TimeoutError);
  EXPECT_FALSE(slow.wait_for(std::chrono::milliseconds(1)));
  // The task was not lost to the timeout — it still completes.
  EXPECT_EQ(slow.get_for(std::chrono::seconds(10)), 9);
  EXPECT_EQ(slow.try_get().value(), 9);
  EXPECT_TRUE(slow.wait_for(std::chrono::milliseconds(1)));
}

TEST(ActorTest, FactoryFailureMarksActorFailed) {
  Actor<Counter> actor([]() -> std::unique_ptr<Counter> {
    throw ValueError("factory exploded");
  });
  // Calls resolve errored with ActorDeadError instead of hanging or
  // terminating the process.
  auto f = actor.call([](Counter& c) { return c.value; });
  f.wait();
  EXPECT_TRUE(f.failed());
  EXPECT_THROW(f.get(), ActorDeadError);
  EXPECT_EQ(actor.state(), ActorState::kFailed);
  EXPECT_NE(actor.failure(), nullptr);
  // Subsequent calls on the dead actor return already-errored futures.
  auto g = actor.call([](Counter& c) { return c.value; });
  EXPECT_TRUE(g.failed());
  EXPECT_THROW(g.get(), ActorDeadError);
}

TEST(ActorTest, LifecycleStates) {
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  EXPECT_EQ(actor.state(), ActorState::kRunning);
  actor.call([](Counter& c) { return c.add(1); }).get();
  actor.stop();
  EXPECT_EQ(actor.state(), ActorState::kStopped);
  EXPECT_EQ(actor.failure(), nullptr);
  EXPECT_STREQ(to_string(ActorState::kRunning), "running");
  EXPECT_STREQ(to_string(ActorState::kFailed), "failed");
  EXPECT_STREQ(to_string(ActorState::kStopped), "stopped");
}

TEST(ActorTest, VoidCalls) {
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  Future<void> f = actor.call([](Counter& c) { c.value = 42; });
  f.get();
  EXPECT_EQ(actor.call([](Counter& c) { return c.value; }).get(), 42);
}

TEST(ActorTest, StopDrainsOutstandingCalls) {
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  std::vector<Future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(actor.call([](Counter& c) { return c.add(1); }));
  }
  actor.stop();
  // All enqueued calls completed before the join.
  EXPECT_EQ(futures.back().get(), 50);
  EXPECT_THROW(actor.call([](Counter& c) { return c.value; }), ValueError);
}

TEST(WaitTest, ReturnsWhenEnoughReady) {
  Actor<Counter> fast([] { return std::make_unique<Counter>(); });
  Actor<Counter> slow([] { return std::make_unique<Counter>(); });
  auto f1 = fast.call([](Counter&) { return 1; });
  auto f2 = slow.call([](Counter&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return 2;
  });
  std::vector<UntypedFuture> futures{f1, f2};
  std::vector<size_t> ready = wait(futures, 1);
  ASSERT_GE(ready.size(), 1u);
  EXPECT_EQ(ready[0], 0u);  // the fast one
  std::vector<size_t> all = wait(futures, 2);
  EXPECT_EQ(all.size(), 2u);
}

TEST(WaitTest, EmptyAndOverflowingNumReturns) {
  std::vector<UntypedFuture> none;
  EXPECT_TRUE(wait(none, 3).empty());
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  auto f = actor.call([](Counter&) { return 0; });
  std::vector<UntypedFuture> one{f};
  EXPECT_EQ(wait(one, 99).size(), 1u);  // clamped
}

TEST(WaitTest, ErroredFuturesCountAsReady) {
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  auto bad = actor.call([](Counter&) -> int { throw ValueError("boom"); });
  auto slow = actor.call([](Counter&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return 1;
  });
  std::vector<UntypedFuture> futures{bad, slow};
  std::vector<size_t> ready = wait(futures, 1);
  ASSERT_GE(ready.size(), 1u);
  EXPECT_EQ(ready[0], 0u);
  EXPECT_TRUE(futures[0].failed());
}

TEST(WaitTest, TimedWaitReturnsEarlyOnTimeout) {
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  auto slow = actor.call([](Counter&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return 1;
  });
  std::vector<UntypedFuture> futures{slow};
  // Nothing resolves within 5ms: the timed wait comes back empty-handed.
  std::vector<size_t> ready =
      wait_for(futures, 1, std::chrono::milliseconds(5));
  EXPECT_TRUE(ready.empty());
  ready = wait_for(futures, 1, std::chrono::seconds(10));
  EXPECT_EQ(ready.size(), 1u);
}

TEST(ObjectStoreTest, PutGetTyped) {
  ObjectStore store;
  ObjectId id = store.put(std::string("payload"));
  auto value = store.get<std::string>(id);
  EXPECT_EQ(*value, "payload");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_THROW(store.get<int>(id), ValueError);  // wrong type
}

TEST(ObjectStoreTest, EraseAndMissing) {
  ObjectStore store;
  ObjectId id = store.put(7);
  // Values stay alive through outstanding references after erase.
  auto ref = store.get<int>(id);
  store.erase(id);
  EXPECT_EQ(*ref, 7);
  EXPECT_THROW(store.get<int>(id), NotFoundError);
}

TEST(ObjectStoreTest, ConcurrentPuts) {
  ObjectStore store;
  std::vector<std::thread> threads;
  std::atomic<int> total{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, &total, t] {
      for (int i = 0; i < 100; ++i) {
        ObjectId id = store.put(t * 1000 + i);
        total.fetch_add(*store.get<int>(id));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.size(), 400u);
  EXPECT_EQ(total.load(), (0 + 1 + 2 + 3) * 1000 * 100 + 4 * 4950);
}

// TSAN regression for the BlockingQueue close/pop_for race: many waiters
// parked with deadlines, producers pushing, and two threads racing close().
// Every waiter must return exactly once (item or nullopt) — no hang, no
// double wake-up accounting, no data race on the closed flag.
TEST(BlockingQueueTest, CloseRacingTimedPopsWakesEveryWaiterOnce) {
  for (int round = 0; round < 20; ++round) {
    BlockingQueue<int> queue;
    constexpr int kWaiters = 8;
    std::atomic<int> returns{0};
    std::atomic<int> items{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWaiters; ++w) {
      threads.emplace_back([&] {
        // Deadline far in the future: only close() can wake an idle waiter.
        auto got = queue.pop_for(std::chrono::seconds(30));
        if (got.has_value()) items.fetch_add(1);
        returns.fetch_add(1);
      });
    }
    std::thread producer([&] {
      for (int i = 0; i < 3; ++i) queue.push(i);
    });
    // Two closers race each other and the producer; only the closing
    // transition may notify.
    std::thread closer_a([&] { queue.close(); });
    std::thread closer_b([&] { queue.close(); });
    producer.join();
    closer_a.join();
    closer_b.join();
    for (auto& t : threads) t.join();
    EXPECT_EQ(returns.load(), kWaiters);
    EXPECT_LE(items.load(), 3);
    // Pushes after close are refused; drained pops return nullopt promptly.
    EXPECT_FALSE(queue.push(99));
    while (queue.try_pop().has_value()) {
    }
    EXPECT_FALSE(queue.pop_for(std::chrono::milliseconds(1)).has_value());
  }
}

// A task that throws ActorDeadError (or a subclass) poisons the actor: it
// transitions to kFailed so supervision takes over, and queued/later calls
// fail with the preserved error type. This is how a remote proxy whose
// transport went permanently down feeds the restart path.
TEST(ActorTest, ActorDeadErrorFromTaskPoisonsActor) {
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  EXPECT_EQ(actor.call([](Counter& c) { return c.add(1); }).get(), 1);

  auto poisoned = actor.call([](Counter&) -> int {
    throw ActorLostError("transport exhausted its reconnect budget");
  });
  EXPECT_THROW(poisoned.get(), ActorLostError);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (actor.state() != ActorState::kFailed &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(actor.state(), ActorState::kFailed);

  // Later calls resolve errored with the preserved ActorLostError type, and
  // flow through wait_for like any other resolved future.
  auto after = actor.call([](Counter& c) { return c.add(1); });
  std::vector<UntypedFuture> futures = {after};
  auto ready = wait_for(futures, 1, std::chrono::milliseconds(2000));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_TRUE(after.failed());
  EXPECT_THROW(after.get(), ActorLostError);
}

// Ordinary exceptions do NOT poison: the future errors, the actor lives.
TEST(ActorTest, OrdinaryTaskExceptionDoesNotPoison) {
  Actor<Counter> actor([] { return std::make_unique<Counter>(); });
  auto bad = actor.call([](Counter&) -> int {
    throw ValueError("just a bad argument");
  });
  EXPECT_THROW(bad.get(), ValueError);
  EXPECT_EQ(actor.call([](Counter& c) { return c.add(5); }).get(), 5);
  EXPECT_EQ(actor.state(), ActorState::kRunning);
}

}  // namespace
}  // namespace raylite
}  // namespace rlgraph
