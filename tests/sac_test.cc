// Continuous-control tests: the squashed-Gaussian policy head (shapes,
// bounds, log-std clipping, deterministic-vs-sampled acting), the
// squashed log-prob math against a double-precision reference, and the
// SacAgent (finite losses, replay gating, target-network init, weight
// snapshot round-trips through the serving wire format).
//
// Runs under the `continuous` ctest label; the slow training-to-gate test
// lives in sac_train_test.cc (`continuous-train`) so sanitizer sweeps can
// include this suite without paying for a full training run.
#include <gtest/gtest.h>

#include <cmath>

#include "agents/sac_agent.h"
#include "backend/imperative_context.h"
#include "components/policy.h"
#include "core/component_test.h"
#include "env/pendulum_env.h"
#include "tensor/kernels.h"

namespace rlgraph {
namespace {

// --- squashed-Gaussian policy head -------------------------------------------

// Action space with asymmetric per-dimension bounds to catch scale/center
// mix-ups that a symmetric [-1, 1] box would hide.
SpacePtr bounded_action_space() {
  return FloatBox(Shape{2}, {-2.0, -1.0}, {2.0, 3.0});
}

ComponentTest make_squashed_policy_test() {
  Json network = Json::parse(R"([{"type": "dense", "units": 8,
                                  "activation": "tanh"}])");
  auto policy = std::make_shared<Policy>("policy", network,
                                         bounded_action_space(),
                                         PolicyHead::kSquashedGaussian);
  SpacePtr state = FloatBox(Shape{3})->with_batch_rank();
  return ComponentTest(std::move(policy),
                       {{"get_mean_logstd", {state}},
                        {"sample_action_logp", {state}},
                        {"get_action", {state}}});
}

TEST(SquashedGaussianPolicyTest, HeadShapesAndLogStdClipping) {
  auto test = make_squashed_policy_test();
  auto out = test.test_with_sampled_inputs("get_mean_logstd", 5);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].shape(), (Shape{5, 2}));  // mean
  EXPECT_EQ(out[1].shape(), (Shape{5, 2}));  // log_std
  for (int64_t i = 0; i < out[1].num_elements(); ++i) {
    EXPECT_GE(out[1].at_flat(i), -5.0 - 1e-6);
    EXPECT_LE(out[1].at_flat(i), 2.0 + 1e-6);
  }
}

TEST(SquashedGaussianPolicyTest, SampledActionsStayInBoundsWithFiniteLogp) {
  auto test = make_squashed_policy_test();
  auto out = test.test_with_sampled_inputs("sample_action_logp", 64);
  ASSERT_EQ(out.size(), 2u);
  ASSERT_EQ(out[0].shape(), (Shape{64, 2}));
  ASSERT_EQ(out[1].shape(), (Shape{64}));
  SpacePtr space = bounded_action_space();
  const auto& box = static_cast<const BoxSpace&>(*space);
  for (int64_t i = 0; i < 64; ++i) {
    for (int64_t d = 0; d < 2; ++d) {
      float a = out[0].data<float>()[i * 2 + d];
      EXPECT_GE(a, box.low(d)) << "row " << i << " dim " << d;
      EXPECT_LE(a, box.high(d)) << "row " << i << " dim " << d;
    }
    EXPECT_TRUE(std::isfinite(out[1].data<float>()[i])) << "row " << i;
  }
}

TEST(SquashedGaussianPolicyTest, GreedyIsDeterministicSamplingIsNot) {
  auto test = make_squashed_policy_test();
  Rng rng(3);
  Tensor s = kernels::random_uniform(Shape{4, 3}, -1.0, 1.0, rng);
  Tensor greedy1 = test.test("get_action", {s})[0];
  Tensor greedy2 = test.test("get_action", {s})[0];
  EXPECT_TRUE(greedy1.equals(greedy2));
  // Greedy actions are also inside the (strictly interior of the) box.
  SpacePtr space = bounded_action_space();
  const auto& box = static_cast<const BoxSpace&>(*space);
  for (int64_t i = 0; i < greedy1.num_elements(); ++i) {
    EXPECT_GE(greedy1.at_flat(i), box.low(i % 2));
    EXPECT_LE(greedy1.at_flat(i), box.high(i % 2));
  }
  // Sampling draws from the executor's stateful RNG chain: consecutive
  // calls advance the stream and must differ.
  Tensor sampled1 = test.test("sample_action_logp", {s})[0];
  Tensor sampled2 = test.test("sample_action_logp", {s})[0];
  EXPECT_FALSE(sampled1.equals(sampled2));
}

TEST(SquashedGaussianPolicyTest, RequiresBoundedFloatBox) {
  Json network = Json::parse(R"([{"type": "dense", "units": 4}])");
  // Discrete action space: wrong head.
  EXPECT_THROW(Policy("p", network, IntBox(3),
                      PolicyHead::kSquashedGaussian),
               ValueError);
  // Unbounded float box: tanh squashing needs finite bounds to map onto.
  EXPECT_THROW(Policy("p", network, FloatBox(Shape{2}),
                      PolicyHead::kSquashedGaussian),
               ValueError);
}

// --- squashed log-prob math ---------------------------------------------------

Tensor eval_logp(const Tensor& u, const Tensor& mean, const Tensor& logstd,
                 const Tensor& log_scale) {
  VariableStore store;
  Rng rng(1);
  ImperativeContext ctx(&store, &rng, /*build_mode=*/false);
  OpRef out = squashed_gaussian_logp(ctx, ctx.literal(u), ctx.literal(mean),
                                     ctx.literal(logstd),
                                     ctx.literal(log_scale));
  return ctx.value(out);
}

TEST(SquashedGaussianMathTest, LogpMatchesDoubleReference) {
  const int64_t B = 3, D = 2;
  Rng rng(17);
  Tensor u = kernels::random_uniform(Shape{B, D}, -1.5, 1.5, rng);
  Tensor mean = kernels::random_uniform(Shape{B, D}, -0.8, 0.8, rng);
  Tensor logstd = kernels::random_uniform(Shape{B, D}, -1.0, 0.5, rng);
  Tensor log_scale = kernels::random_uniform(Shape{1, D}, -0.5, 0.7, rng);

  Tensor got = eval_logp(u, mean, logstd, log_scale);
  ASSERT_EQ(got.shape(), (Shape{B}));
  for (int64_t i = 0; i < B; ++i) {
    double want = 0.0;
    for (int64_t d = 0; d < D; ++d) {
      double uu = u.data<float>()[i * D + d];
      double mu = mean.data<float>()[i * D + d];
      double ls = logstd.data<float>()[i * D + d];
      double z = (uu - mu) / std::exp(ls);
      double gauss = -0.5 * z * z - ls - 0.5 * std::log(2.0 * M_PI);
      // Exact tanh-squash correction: log d(tanh u)/du = log(1 - tanh^2 u).
      double corr = std::log(1.0 - std::tanh(uu) * std::tanh(uu));
      want += gauss - log_scale.data<float>()[d] - corr;
    }
    EXPECT_NEAR(got.data<float>()[i], want, 1e-4) << "row " << i;
  }
}

TEST(SquashedGaussianMathTest, TanhCorrectionStableAtSaturation) {
  // At |u| = 12, float tanh(u) rounds to exactly 1, so the naive
  // log(1 - tanh^2) is log(0) = -inf. The softplus form the policy uses,
  // 2*(log 2 - u - softplus(-2u)), stays finite and matches the
  // double-precision value.
  Tensor u = Tensor::from_floats(Shape{1, 1}, {12.0f});
  Tensor zero = Tensor::from_floats(Shape{1, 1}, {0.0f});
  Tensor log_scale = Tensor::from_floats(Shape{1, 1}, {0.0f});
  float naive = std::log(1.0f - std::tanh(12.0f) * std::tanh(12.0f));
  ASSERT_FALSE(std::isfinite(naive));

  // With mean = u and logstd = 0 the Gaussian term is the constant
  // -0.5*log(2*pi); what is left is minus the correction.
  Tensor logp = eval_logp(u, u, zero, log_scale);
  double correction =
      -(logp.data<float>()[0] + 0.5 * std::log(2.0 * M_PI));
  double want = std::log1p(-std::tanh(12.0) * std::tanh(12.0));
  EXPECT_TRUE(std::isfinite(logp.data<float>()[0]));
  EXPECT_NEAR(correction, want, 1e-3);
}

// --- SacAgent -----------------------------------------------------------------

Json sac_config() {
  return Json::parse(R"({
    "type": "sac",
    "network": [{"type": "dense", "units": 16, "activation": "relu"}],
    "optimizer": {"type": "adam", "learning_rate": 0.003},
    "memory": {"capacity": 512},
    "update": {"batch_size": 16, "min_records": 32},
    "seed": 7
  })");
}

// Drive `steps` random-policy pendulum steps into the agent's replay.
void fill_replay(SacAgent& agent, PendulumEnv& env, int steps) {
  Tensor obs = env.reset();
  for (int i = 0; i < steps; ++i) {
    Tensor batch = obs.reshaped(Shape{1, 3});
    Tensor action = agent.get_actions(batch, /*explore=*/true);
    StepResult r = env.step_continuous(action);
    agent.observe(batch, action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}),
                  r.observation.reshaped(Shape{1, 3}),
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    obs = r.terminal ? env.reset() : r.observation;
  }
}

TEST(SacAgentTest, UpdateGatesOnMinRecordsThenProducesFiniteLosses) {
  PendulumEnv env(PendulumEnv::Config{});
  env.seed(1);
  SacAgent agent(sac_config(), env.state_space(), env.action_space());
  agent.build();

  fill_replay(agent, env, 8);
  EXPECT_EQ(agent.update(), 0.0) << "must no-op below min_records";
  fill_replay(agent, env, 40);
  ASSERT_GE(agent.memory_size(), 32);

  double critic_loss = agent.update();
  EXPECT_TRUE(std::isfinite(critic_loss));
  EXPECT_GT(critic_loss, 0.0);  // squared TD errors
  EXPECT_TRUE(std::isfinite(agent.last_actor_loss()));
  EXPECT_TRUE(std::isfinite(agent.last_alpha_loss()));
  EXPECT_GT(agent.alpha(), 0.0);  // alpha = exp(log_alpha) stays positive
}

TEST(SacAgentTest, TargetCriticsStartEqualToOnlineCritics) {
  PendulumEnv env(PendulumEnv::Config{});
  SacAgent agent(sac_config(), env.state_space(), env.action_space());
  agent.build();
  auto weights = agent.get_weights();
  int compared = 0;
  for (const auto& [name, tensor] : weights) {
    const std::string online = "agent/critic-";
    auto pos = name.find(online);
    if (pos == std::string::npos) continue;
    std::string target_name = name;
    target_name.replace(pos, online.size(), "agent/target-critic-");
    auto it = weights.find(target_name);
    if (it == weights.end()) continue;
    EXPECT_TRUE(it->second.equals(tensor)) << name;
    ++compared;
  }
  EXPECT_GE(compared, 4) << "expected weights+bias for two critic torsos";
}

TEST(SacAgentTest, PolyakSyncMovesTargetsTowardOnline) {
  PendulumEnv env(PendulumEnv::Config{});
  env.seed(2);
  SacAgent agent(sac_config(), env.state_space(), env.action_space());
  agent.build();
  fill_replay(agent, env, 48);
  agent.update();  // one step: online critics move, targets blend by tau

  auto weights = agent.get_weights();
  double total_gap = 0.0;
  for (const auto& [name, tensor] : weights) {
    auto pos = name.find("agent/critic-");
    if (pos == std::string::npos) continue;
    std::string target_name = name;
    target_name.replace(pos, std::string("agent/critic-").size(),
                        "agent/target-critic-");
    auto it = weights.find(target_name);
    if (it == weights.end()) continue;
    for (int64_t i = 0; i < tensor.num_elements(); ++i) {
      total_gap += std::abs(tensor.at_flat(i) - it->second.at_flat(i));
    }
  }
  // tau = 0.005: targets lag the online nets but are no longer identical.
  EXPECT_GT(total_gap, 0.0);
}

TEST(SacAgentTest, WeightsRoundTripAndGreedyActionsMatchBitwise) {
  PendulumEnv env(PendulumEnv::Config{});
  SacAgent source(sac_config(), env.state_space(), env.action_space());
  source.build();
  std::vector<uint8_t> bytes = source.export_weights();

  Json cfg = sac_config();
  cfg["seed"] = Json(static_cast<int64_t>(999));  // different init
  SacAgent restored(cfg, env.state_space(), env.action_space());
  restored.build();
  restored.import_weights(bytes);

  auto want = source.get_weights();
  auto got = restored.get_weights();
  ASSERT_EQ(want.size(), got.size());
  for (const auto& [name, tensor] : want) {
    ASSERT_TRUE(got.count(name)) << name;
    EXPECT_TRUE(got[name].equals(tensor)) << name;
  }

  Rng rng(5);
  Tensor states = kernels::random_uniform(Shape{6, 3}, -1.0, 1.0, rng);
  Tensor a = source.get_actions(states, /*explore=*/false);
  Tensor b = restored.get_actions(states, /*explore=*/false);
  EXPECT_TRUE(a.equals(b)) << "greedy mean actions must survive the round trip";
}

}  // namespace
}  // namespace rlgraph
