// End-to-end continuous-control training gate: SacAgent learns pendulum
// swing-up from scratch under a fixed seed, reaching a mean episode return
// of at least -250 over the last 20 episodes (random policy sits near -1200;
// a balanced pole is near 0). This is the ISSUE acceptance gate for the SAC
// workload and the slowest test in the tree (~30s optimized), so it carries
// its own `continuous-train` label and stays out of the sanitizer sweeps.
#include <gtest/gtest.h>

#include <deque>
#include <numeric>

#include "agents/sac_agent.h"
#include "env/pendulum_env.h"

namespace rlgraph {
namespace {

TEST(SacTrainingTest, ReachesPendulumRewardGate) {
  PendulumEnv env(PendulumEnv::Config{});
  env.seed(3);

  Json cfg = Json::parse(R"({
    "type": "sac",
    "network": [{"type": "dense", "units": 64, "activation": "relu"},
                {"type": "dense", "units": 64, "activation": "relu"}],
    "optimizer": {"type": "adam", "learning_rate": 0.003},
    "memory": {"capacity": 20000},
    "update": {"batch_size": 64, "min_records": 500},
    "seed": 11
  })");
  SacAgent agent(cfg, env.state_space(), env.action_space());
  agent.build();

  // The gate run: up to 50 episodes (200 steps each), one update per env
  // step, early exit as soon as the 20-episode window clears -250. Under
  // this exact seed pair the gate is reached around episode 31.
  constexpr double kGate = -250.0;
  constexpr int kMaxEpisodes = 50;
  std::deque<double> window;
  double best_mean = -1e30;
  Tensor obs = env.reset();
  double ep_return = 0.0;
  int episodes = 0;
  bool reached = false;
  while (episodes < kMaxEpisodes && !reached) {
    Tensor batch = obs.reshaped(Shape{1, 3});
    Tensor action = agent.get_actions(batch, /*explore=*/true);
    StepResult r = env.step_continuous(action);
    agent.observe(batch, action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}),
                  r.observation.reshaped(Shape{1, 3}),
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    ep_return += r.reward;
    agent.update();
    obs = r.observation;
    if (r.terminal) {
      ++episodes;
      window.push_back(ep_return);
      if (window.size() > 20) window.pop_front();
      const double mean =
          std::accumulate(window.begin(), window.end(), 0.0) / window.size();
      if (mean > best_mean) best_mean = mean;
      if (window.size() == 20 && mean >= kGate) reached = true;
      ep_return = 0.0;
      obs = env.reset();
    }
  }
  EXPECT_TRUE(reached) << "best 20-episode mean return after " << episodes
                       << " episodes: " << best_mean << " (gate " << kGate
                       << ")";
  EXPECT_GT(agent.alpha(), 0.0);
}

}  // namespace
}  // namespace rlgraph
