// Failure-path tests for the RLGW weight wire format behind
// Agent::export_weights() / import_weights(): truncated payloads, wrong
// magic/version, corrupt metadata and architecture mismatches must all throw
// SerializationError — never crash, never half-apply.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <memory>

#include "agents/dqn_agent.h"
#include "util/random.h"
#include "util/serialization.h"

namespace rlgraph {
namespace {

Json small_dqn_config() {
  return Json::parse(R"({
    "type": "dqn",
    "network": [{"type": "dense", "units": 8, "activation": "relu"}],
    "memory": {"type": "replay", "capacity": 64},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 1.0, "eps_end": 0.05, "decay_steps": 100},
    "update": {"batch_size": 8, "sync_interval": 25, "min_records": 16},
    "discount": 0.95
  })");
}

std::unique_ptr<DQNAgent> make_built_agent(int64_t obs_dim = 4,
                                           int64_t actions = 3) {
  auto agent = std::make_unique<DQNAgent>(
      small_dqn_config(), FloatBox(Shape{obs_dim}), IntBox(actions));
  agent->build();
  return agent;
}

// Patch little-endian u32 at a byte offset.
void poke_u32(std::vector<uint8_t>& bytes, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes[offset + i] = (v >> (8 * i)) & 0xFF;
}

TEST(WeightSnapshotTest, TruncatedPayloadThrowsTyped) {
  auto agent = make_built_agent();
  std::vector<uint8_t> bytes = agent->export_weights();
  ASSERT_GT(bytes.size(), 16u);
  // Cut at many depths: inside the header, inside a name, inside tensor
  // data. Every cut must surface as SerializationError.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{7}, size_t{11},
                      size_t{20}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<long>(keep));
    EXPECT_THROW(deserialize_weights(cut), SerializationError)
        << "cut at " << keep << " bytes";
    EXPECT_THROW(agent->import_weights(cut), SerializationError)
        << "cut at " << keep << " bytes";
  }
}

TEST(WeightSnapshotTest, WrongMagicThrowsTyped) {
  auto agent = make_built_agent();
  std::vector<uint8_t> bytes = agent->export_weights();
  poke_u32(bytes, 0, 0xDEADBEEF);
  EXPECT_THROW(deserialize_weights(bytes), SerializationError);
  EXPECT_THROW(agent->import_weights(bytes), SerializationError);
}

TEST(WeightSnapshotTest, UnsupportedVersionThrowsTyped) {
  auto agent = make_built_agent();
  std::vector<uint8_t> bytes = agent->export_weights();
  poke_u32(bytes, 4, 999);  // version field follows the magic
  EXPECT_THROW(deserialize_weights(bytes), SerializationError);
}

TEST(WeightSnapshotTest, InflatedCountReadsAsTruncation) {
  auto agent = make_built_agent();
  std::vector<uint8_t> bytes = agent->export_weights();
  uint32_t count = static_cast<uint32_t>(agent->get_weights().size());
  poke_u32(bytes, 8, count + 5);  // claim more entries than the payload has
  EXPECT_THROW(deserialize_weights(bytes), SerializationError);
}

TEST(WeightSnapshotTest, DeflatedCountReadsAsTrailingGarbage) {
  auto agent = make_built_agent();
  std::vector<uint8_t> bytes = agent->export_weights();
  uint32_t count = static_cast<uint32_t>(agent->get_weights().size());
  ASSERT_GT(count, 1u);
  poke_u32(bytes, 8, count - 1);  // leftover bytes after the declared entries
  EXPECT_THROW(deserialize_weights(bytes), SerializationError);
}

TEST(WeightSnapshotTest, InvalidDtypeTagThrowsTyped) {
  auto agent = make_built_agent();
  std::vector<uint8_t> bytes = agent->export_weights();
  // First entry: magic(4) + version(4) + count(4) + name_len(4) + name.
  uint32_t name_len = 0;
  std::memcpy(&name_len, bytes.data() + 12, sizeof(name_len));
  bytes[16 + name_len] = 0xFF;  // dtype tag
  EXPECT_THROW(deserialize_weights(bytes), SerializationError);
}

TEST(WeightSnapshotTest, ArchitectureMismatchThrowsBeforeMutation) {
  auto source = make_built_agent(4, 3);
  std::vector<uint8_t> bytes = source->export_weights();

  // A structurally different agent: same wire format, different variables.
  DQNAgent other(small_dqn_config(), FloatBox(Shape{6}), IntBox(5));
  other.build();
  auto before = other.get_weights();
  EXPECT_THROW(other.import_weights(bytes), SerializationError);
  // The failed import must not have touched any variable.
  auto after = other.get_weights();
  ASSERT_EQ(before.size(), after.size());
  for (const auto& [name, tensor] : before) {
    EXPECT_TRUE(after[name].equals(tensor)) << name;
  }
}

TEST(WeightSnapshotTest, SubsetSnapshotThrowsCountMismatch) {
  auto agent = make_built_agent();
  // A prefix export covers only part of the variable set; importing it as a
  // full snapshot must be rejected, not silently partially applied.
  std::vector<uint8_t> subset = agent->export_weights("agent/policy");
  ASSERT_LT(deserialize_weights(subset).size(), agent->get_weights().size());
  EXPECT_THROW(agent->import_weights(subset), SerializationError);
}

TEST(WeightSnapshotTest, IntactSnapshotStillRoundTrips) {
  auto source = make_built_agent();
  std::vector<uint8_t> bytes = source->export_weights();
  Json cfg = small_dqn_config();
  cfg["seed"] = Json(static_cast<int64_t>(777));
  DQNAgent restored(cfg, FloatBox(Shape{4}), IntBox(3));
  restored.build();
  restored.import_weights(bytes);
  auto want = source->get_weights();
  auto got = restored.get_weights();
  ASSERT_EQ(want.size(), got.size());
  for (const auto& [name, tensor] : want) {
    EXPECT_TRUE(got[name].equals(tensor)) << name;
  }
}

// --- RLGQ quantized snapshots -----------------------------------------------

// Patch a little-endian f32 at a byte offset.
void poke_f32(std::vector<uint8_t>& bytes, size_t offset, float v) {
  std::memcpy(bytes.data() + offset, &v, sizeof(v));
}

std::vector<Tensor> calibration_states(int64_t obs_dim) {
  Rng rng(31);
  std::vector<Tensor> states;
  for (int b = 0; b < 4; ++b) {
    std::vector<float> v(static_cast<size_t>(2 * obs_dim));
    for (float& x : v) x = static_cast<float>(rng.uniform(-1.5, 1.5));
    states.push_back(Tensor::from_floats(Shape{2, obs_dim}, v));
  }
  return states;
}

TEST(QuantizedSnapshotTest, RoundTripsBitExact) {
  auto source = make_built_agent();
  ASSERT_GT(source->enable_quantized_actions(calibration_states(4)), 0);
  std::vector<uint8_t> bytes = source->export_weights_quantized();

  auto restored = make_built_agent();
  ASSERT_FALSE(restored->quantized_actions_enabled());
  restored->import_weights_quantized(bytes);
  EXPECT_TRUE(restored->quantized_actions_enabled());

  // Identical int8 weights + scales: the restored agent's quantized plan
  // acts identically, and re-exporting reproduces the exact payload.
  Rng rng(55);
  std::vector<float> v(16 * 4);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.5, 1.5));
  Tensor obs = Tensor::from_floats(Shape{16, 4}, v);
  EXPECT_TRUE(source->get_actions_quantized(obs).equals(
      restored->get_actions_quantized(obs)));
  EXPECT_EQ(restored->export_weights_quantized(), bytes);
}

TEST(QuantizedSnapshotTest, CorruptScaleThrowsTyped) {
  auto source = make_built_agent();
  ASSERT_GT(source->enable_quantized_actions(calibration_states(4)), 0);
  std::vector<uint8_t> intact = source->export_weights_quantized();

  // First weight entry: magic(4) + version(4) + wcount(4) + name_len(4) +
  // name, then the f32 scale.
  uint32_t name_len = 0;
  std::memcpy(&name_len, intact.data() + 12, sizeof(name_len));
  const size_t first_scale = 16 + name_len;
  // The payload ends with the last activation-scale entry's f32.
  const size_t last_scale = intact.size() - 4;
  for (float bad : {0.0f, -1.0f, std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::infinity()}) {
    for (size_t offset : {first_scale, last_scale}) {
      std::vector<uint8_t> bytes = intact;
      poke_f32(bytes, offset, bad);
      auto victim = make_built_agent();
      EXPECT_THROW(victim->import_weights_quantized(bytes),
                   SerializationError)
          << "scale " << bad << " at offset " << offset;
      // The rejected snapshot must not have installed a quantized plan.
      EXPECT_FALSE(victim->quantized_actions_enabled());
    }
  }
}

TEST(QuantizedSnapshotTest, TruncationAndWrongMagicThrowTyped) {
  auto source = make_built_agent();
  ASSERT_GT(source->enable_quantized_actions(calibration_states(4)), 0);
  std::vector<uint8_t> bytes = source->export_weights_quantized();
  for (size_t keep : {size_t{0}, size_t{3}, size_t{10}, size_t{21},
                      bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<long>(keep));
    auto victim = make_built_agent();
    EXPECT_THROW(victim->import_weights_quantized(cut), SerializationError)
        << "cut at " << keep << " bytes";
  }
  std::vector<uint8_t> wrong = bytes;
  poke_u32(wrong, 0, 0xDEADBEEF);
  auto victim = make_built_agent();
  EXPECT_THROW(victim->import_weights_quantized(wrong), SerializationError);
  poke_u32(wrong, 0, 0x524C4751);  // restore magic, break the version
  poke_u32(wrong, 4, 999);
  EXPECT_THROW(victim->import_weights_quantized(wrong), SerializationError);
}

}  // namespace
}  // namespace rlgraph
