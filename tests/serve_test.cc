// Policy-serving subsystem tests: dynamic batcher flush/shed policy,
// versioned policy store, hot-swap consistency under concurrent load,
// admission control, graceful drain, and agent weight snapshot round-trips.
// Runs under the `concurrency` + `serve` ctest labels (TSAN-clean).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "agents/dqn_agent.h"
#include "agents/sac_agent.h"
#include "serve/batcher.h"
#include "serve/policy_server.h"
#include "serve/policy_store.h"

namespace rlgraph {
namespace {

using namespace std::chrono_literals;
using serve::ActRequest;
using serve::ActResult;
using serve::BatcherConfig;
using serve::DynamicBatcher;
using serve::PolicyServer;
using serve::PolicyServerConfig;
using serve::PolicySnapshot;
using serve::PolicyStore;
using serve::ServeClock;

Tensor obs1(float v) { return Tensor::from_floats(Shape{1}, {v}); }

// --- DynamicBatcher ----------------------------------------------------------

TEST(DynamicBatcherTest, FlushOnTimeoutWithSingleRequest) {
  BatcherConfig cfg;
  cfg.max_batch_size = 8;
  cfg.max_queue_delay = 50ms;
  DynamicBatcher batcher(cfg);

  const auto t0 = ServeClock::now();
  std::future<ActResult> fut = batcher.submit(obs1(1.0f));
  std::vector<ActRequest> batch = batcher.next_batch();
  const double waited = std::chrono::duration<double>(
      ServeClock::now() - t0).count();

  ASSERT_EQ(batch.size(), 1u);
  // The lone request flushes once its max_queue_delay elapses — not sooner
  // (it waits for potential peers), not unboundedly later.
  EXPECT_GE(waited, 0.040);
  EXPECT_LT(waited, 5.0);
  batch[0].promise.set_value(ActResult{obs1(0.0f), 1});
  EXPECT_EQ(fut.get().policy_version, 1);
}

TEST(DynamicBatcherTest, FullBatchFlushesWithoutWaiting) {
  BatcherConfig cfg;
  cfg.max_batch_size = 4;
  cfg.max_queue_delay = 10s;  // must not matter
  DynamicBatcher batcher(cfg);
  for (int i = 0; i < 4; ++i) (void)batcher.submit(obs1(float(i)));

  const auto t0 = ServeClock::now();
  std::vector<ActRequest> batch = batcher.next_batch();
  const double waited = std::chrono::duration<double>(
      ServeClock::now() - t0).count();
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_LT(waited, 1.0);
  for (ActRequest& r : batch) r.promise.set_value(ActResult{});
}

TEST(DynamicBatcherTest, MaxBatchOverflowSplitting) {
  BatcherConfig cfg;
  cfg.max_batch_size = 4;
  cfg.max_queue_delay = 10s;
  DynamicBatcher batcher(cfg);
  std::vector<std::future<ActResult>> futures;
  for (int i = 0; i < 11; ++i) futures.push_back(batcher.submit(obs1(1.0f)));
  batcher.close();  // drain mode: flushes are immediate

  std::vector<size_t> sizes;
  for (;;) {
    std::vector<ActRequest> batch = batcher.next_batch();
    if (batch.empty()) break;
    sizes.push_back(batch.size());
    for (ActRequest& r : batch) r.promise.set_value(ActResult{});
  }
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 4u);
  EXPECT_EQ(sizes[2], 3u);
  for (auto& f : futures) f.get();  // all served despite the overflow
}

TEST(DynamicBatcherTest, DeadlineExpiredRequestsShedBeforeDispatch) {
  MetricRegistry metrics;
  BatcherConfig cfg;
  cfg.max_batch_size = 8;
  cfg.max_queue_delay = 5ms;
  DynamicBatcher batcher(cfg, &metrics);

  std::future<ActResult> doomed =
      batcher.submit(obs1(1.0f), ServeClock::now() + 1ms);
  std::future<ActResult> live = batcher.submit(obs1(2.0f));
  std::this_thread::sleep_for(20ms);

  std::vector<ActRequest> batch = batcher.next_batch();
  ASSERT_EQ(batch.size(), 1u);  // the expired request never reaches a shard
  EXPECT_FLOAT_EQ(batch[0].obs.to_floats()[0], 2.0f);
  batch[0].promise.set_value(ActResult{});
  live.get();

  EXPECT_THROW(doomed.get(), TimeoutError);
  EXPECT_EQ(metrics.counter("serve/shed_deadline"), 1);
}

TEST(DynamicBatcherTest, OverloadShedsWithTypedError) {
  MetricRegistry metrics;
  BatcherConfig cfg;
  cfg.queue_capacity = 2;
  DynamicBatcher batcher(cfg, &metrics);
  auto f1 = batcher.submit(obs1(1.0f));
  auto f2 = batcher.submit(obs1(2.0f));
  EXPECT_THROW(batcher.submit(obs1(3.0f)), OverloadedError);
  EXPECT_EQ(metrics.counter("serve/shed_overload"), 1);
  EXPECT_EQ(batcher.pending(), 2u);
  batcher.close();
  batcher.shed_all("test over");
  EXPECT_THROW(f1.get(), OverloadedError);
  EXPECT_THROW(f2.get(), OverloadedError);
}

TEST(DynamicBatcherTest, BucketBoundaryFlushesWithoutDelay) {
  // With flush buckets configured, a batch flushes the moment the queue
  // reaches a bucket boundary — it does not sit out max_queue_delay waiting
  // for a full max_batch. Deterministic: the bucket is hit before
  // next_batch() is even called, so no timing window is involved.
  MetricRegistry metrics;
  BatcherConfig cfg;
  cfg.max_batch_size = 64;
  cfg.max_queue_delay = 10s;  // must not matter
  cfg.flush_buckets = {4};
  DynamicBatcher batcher(cfg, &metrics);
  std::vector<std::future<ActResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(batcher.submit(obs1(static_cast<float>(i))));
  }

  const auto t0 = ServeClock::now();
  std::vector<ActRequest> batch = batcher.next_batch();
  const double waited =
      std::chrono::duration<double>(ServeClock::now() - t0).count();
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_LT(waited, 1.0);  // bucket flush, not the 10s delay
  EXPECT_EQ(metrics.counter("serve/bucket_flushes"), 1);
  for (ActRequest& r : batch) r.promise.set_value(ActResult{});
  for (auto& f : futures) f.get();
}

TEST(DynamicBatcherTest, SubmitAfterCloseRejected) {
  DynamicBatcher batcher(BatcherConfig{});
  batcher.close();
  EXPECT_THROW(batcher.submit(obs1(1.0f)), OverloadedError);
  EXPECT_TRUE(batcher.next_batch().empty());
}

// --- PolicyStore -------------------------------------------------------------

TEST(PolicyStoreTest, VersionsAdvanceAndSnapshotsAreImmutable) {
  PolicyStore store;
  EXPECT_EQ(store.version(), 0);
  EXPECT_FALSE(store.snapshot().valid());

  serve::WeightMap w1;
  w1["w"] = Tensor::scalar(1.0f);
  EXPECT_EQ(store.publish(std::move(w1)), 1);
  PolicySnapshot s1 = store.snapshot();
  ASSERT_TRUE(s1.valid());
  EXPECT_EQ(s1.version, 1);

  serve::WeightMap w2;
  w2["w"] = Tensor::scalar(2.0f);
  EXPECT_EQ(store.publish(std::move(w2)), 2);

  // The old snapshot held by a reader is untouched by the publication.
  EXPECT_FLOAT_EQ(s1.weights->at("w").scalar_value(), 1.0f);
  EXPECT_EQ(store.snapshot().version, 2);
}

TEST(PolicyStoreTest, PublishSerializedRoundTrips) {
  std::map<std::string, Tensor> weights;
  weights["layer/w"] = Tensor::from_floats(Shape{2, 2}, {1, 2, 3, 4});
  weights["layer/b"] = Tensor::from_floats(Shape{2}, {5, 6});
  std::vector<uint8_t> bytes = serialize_weights(weights);

  PolicyStore store;
  EXPECT_EQ(store.publish_serialized(bytes), 1);
  PolicySnapshot snap = store.snapshot();
  ASSERT_TRUE(snap.valid());
  EXPECT_TRUE(snap.weights->at("layer/w").equals(weights["layer/w"]));
  EXPECT_TRUE(snap.weights->at("layer/b").equals(weights["layer/b"]));
}

// --- PolicyServer with a fake engine -----------------------------------------

// Engine whose outputs encode the snapshot it is running: forward() maps
// every observation to `version` when the snapshot's two tensors agree, and
// to -1 when it ever observes a torn (a != b) pair. Members are only
// touched from the owning shard thread, per the ServingEngine contract.
class SnapshotEchoEngine : public serve::ServingEngine {
 public:
  void load(const PolicySnapshot& snapshot) override {
    a_ = snapshot.weights->at("a").scalar_value();
    b_ = snapshot.weights->at("b").scalar_value();
  }
  Tensor forward(const Tensor& obs_batch) override {
    const int64_t n = obs_batch.shape().dim(0);
    const float v = (a_ == b_) ? static_cast<float>(a_) : -1.0f;
    std::vector<float> out(static_cast<size_t>(n), v);
    return Tensor::from_floats(Shape{n}, out);
  }

 private:
  double a_ = 0.0;
  double b_ = 0.0;
};

serve::WeightMap version_weights(int64_t v) {
  serve::WeightMap w;
  w["a"] = Tensor::scalar(static_cast<float>(v));
  w["b"] = Tensor::scalar(static_cast<float>(v));
  return w;
}

PolicyServerConfig quick_server_config() {
  PolicyServerConfig cfg;
  cfg.num_shards = 2;
  cfg.batcher.max_batch_size = 8;
  cfg.batcher.max_queue_delay = 1ms;
  return cfg;
}

TEST(PolicyServerTest, ServesAndReportsPublishedVersion) {
  PolicyServer server([](int) { return std::make_unique<SnapshotEchoEngine>(); },
                      quick_server_config());
  server.store().publish(version_weights(1));
  server.start();

  ActResult r = server.act(obs1(0.5f));
  EXPECT_EQ(r.policy_version, 1);
  EXPECT_FLOAT_EQ(r.action.scalar_value(), 1.0f);

  server.store().publish(version_weights(2));
  // The swap is picked up between batches; drain until it lands.
  for (int i = 0; i < 1000 && r.policy_version != 2; ++i) {
    r = server.act(obs1(0.5f));
  }
  EXPECT_EQ(r.policy_version, 2);
  EXPECT_FLOAT_EQ(r.action.scalar_value(), 2.0f);
  server.shutdown();
  EXPECT_GE(server.metrics().counter("serve/requests"), 2);
}

// The acceptance-criterion test: hot-swapping under concurrent load never
// yields a torn snapshot, and every response's action is consistent with
// the version it claims was used.
TEST(PolicyServerTest, HotSwapUnderLoadIsVersionConsistent) {
  PolicyServer server([](int) { return std::make_unique<SnapshotEchoEngine>(); },
                      quick_server_config());
  server.store().publish(version_weights(1));
  server.start();

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int64_t v = 2; !stop.load(); ++v) {
      server.store().publish(version_weights(v));
      std::this_thread::sleep_for(200us);
    }
  });

  constexpr int kClients = 4;
  constexpr int kRequests = 200;
  std::atomic<int> inconsistent{0};
  std::atomic<int> torn{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequests; ++i) {
        ActResult r = server.act(obs1(1.0f));
        const double value = r.action.scalar_value();
        if (value < 0) torn.fetch_add(1);
        if (value != static_cast<double>(r.policy_version)) {
          inconsistent.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop = true;
  publisher.join();
  server.shutdown();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(inconsistent.load(), 0);
  EXPECT_GE(server.metrics().counter("serve/requests"), kClients * kRequests);
}

TEST(PolicyServerTest, GracefulDrainServesQueuedRequests) {
  PolicyServerConfig cfg = quick_server_config();
  cfg.num_shards = 1;
  cfg.batcher.max_queue_delay = 20ms;
  PolicyServer server([](int) { return std::make_unique<SnapshotEchoEngine>(); },
                      cfg);
  const int64_t version = server.store().publish(version_weights(7));
  server.start();

  std::vector<std::future<ActResult>> futures;
  for (int i = 0; i < 40; ++i) futures.push_back(server.act_async(obs1(1.0f)));
  server.shutdown();  // drain: everything already admitted still gets served
  for (auto& f : futures) {
    ActResult r = f.get();
    EXPECT_EQ(r.policy_version, version);
    EXPECT_FLOAT_EQ(r.action.scalar_value(), 7.0f);  // served the published weights
  }
  EXPECT_THROW(server.act(obs1(1.0f)), Error);  // no longer accepting
}

class ThrowingEngine : public serve::ServingEngine {
 public:
  void load(const PolicySnapshot&) override {}
  Tensor forward(const Tensor&) override { throw Error("engine exploded"); }
};

TEST(PolicyServerTest, EngineErrorsPropagateToEveryRequestOfTheBatch) {
  PolicyServerConfig cfg = quick_server_config();
  cfg.num_shards = 1;
  PolicyServer server([](int) { return std::make_unique<ThrowingEngine>(); },
                      cfg);
  server.start();
  std::vector<std::future<ActResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.act_async(obs1(1.0f)));
  for (auto& f : futures) EXPECT_THROW(f.get(), Error);
  server.shutdown();
  EXPECT_GE(server.metrics().counter("serve/batch_failures"), 1);
}

// --- agent integration -------------------------------------------------------

Json serve_dqn_config() {
  return Json::parse(R"({
    "type": "dqn",
    "network": [{"type": "dense", "units": 16, "activation": "relu"},
                {"type": "dense", "units": 16, "activation": "relu"}],
    "memory": {"type": "replay", "capacity": 256},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 1.0, "eps_end": 0.05, "decay_steps": 100},
    "update": {"batch_size": 16, "sync_interval": 25, "min_records": 32},
    "discount": 0.95
  })");
}

TEST(AgentWeightsTest, ExportImportRoundTripsAcrossAgents) {
  SpacePtr obs_space = FloatBox(Shape{4});
  SpacePtr act_space = IntBox(3);
  DQNAgent source(serve_dqn_config(), obs_space, act_space);
  source.build();
  std::vector<uint8_t> bytes = source.export_weights();

  Json cfg = serve_dqn_config();
  cfg["seed"] = Json(static_cast<int64_t>(999));  // different init
  DQNAgent restored(cfg, obs_space, act_space);
  restored.build();
  restored.import_weights(bytes);

  auto want = source.get_weights();
  auto got = restored.get_weights();
  ASSERT_EQ(want.size(), got.size());
  for (const auto& [name, tensor] : want) {
    ASSERT_TRUE(got.count(name)) << name;
    EXPECT_TRUE(got[name].equals(tensor)) << name;
  }
}

TEST(AgentWeightsTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_THROW(deserialize_weights(junk), Error);
}

TEST(PolicyServerTest, AgentEngineMatchesDirectGreedyActions) {
  SpacePtr obs_space = FloatBox(Shape{4});
  SpacePtr act_space = IntBox(3);

  // "Trainer" agent: the weights we publish.
  DQNAgent trainer(serve_dqn_config(), obs_space, act_space);
  trainer.build();

  PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = 8;
  cfg.batcher.max_queue_delay = 1ms;
  PolicyServer server(serve_dqn_config(), obs_space, act_space, cfg);
  server.store().publish(trainer.get_weights());
  server.start();

  Rng rng(42);
  std::vector<Tensor> observations;
  for (int i = 0; i < 16; ++i) {
    std::vector<float> v(4);
    for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    observations.push_back(Tensor::from_floats(Shape{4}, v));
  }

  Tensor want = trainer.get_actions(stack_leading(observations),
                                    /*explore=*/false);
  for (int i = 0; i < 16; ++i) {
    ActResult r = server.act(observations[static_cast<size_t>(i)]);
    EXPECT_EQ(r.policy_version, 1);
    EXPECT_EQ(static_cast<int32_t>(r.action.scalar_value()),
              want.to_ints()[static_cast<size_t>(i)])
        << "obs " << i;
  }
  server.shutdown();
}

// Bucketed padding: every flushed batch is rounded up to a configured
// bucket size before the forward pass, and the padding rows' actions are
// dropped — clients only ever see answers to their own observations.
class RowEchoEngine : public serve::ServingEngine {
 public:
  // Engines die with their shard thread at shutdown, so observed batch
  // sizes are recorded into test-owned storage, not engine members.
  RowEchoEngine(std::mutex* mu, std::vector<int64_t>* sizes)
      : mu_(mu), sizes_(sizes) {}
  void load(const PolicySnapshot&) override {}
  Tensor forward(const Tensor& obs_batch) override {
    const int64_t n = obs_batch.shape().dim(0);
    {
      std::lock_guard<std::mutex> lock(*mu_);
      sizes_->push_back(n);
    }
    std::vector<float> out(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      out[static_cast<size_t>(i)] =
          obs_batch.data<float>()[i] * 10.0f;  // action = f(own obs)
    }
    return Tensor::from_floats(Shape{n}, out);
  }

 private:
  std::mutex* mu_;
  std::vector<int64_t>* sizes_;
};

TEST(PolicyServerTest, PadsBatchesToBucketsAndTruncatesResponses) {
  std::mutex mu;
  std::vector<int64_t> seen_sizes;
  PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_queue_delay = 1ms;
  cfg.pad_batches = true;
  cfg.batch_buckets = {4};  // every batch pads to exactly 4 rows
  PolicyServer server(
      [&](int) { return std::make_unique<RowEchoEngine>(&mu, &seen_sizes); },
      cfg);
  server.start();

  for (int i = 0; i < 6; ++i) {
    ActResult r = server.act(obs1(static_cast<float>(i)));
    EXPECT_FLOAT_EQ(r.action.scalar_value(), 10.0f * i) << "request " << i;
  }
  server.shutdown();

  EXPECT_FALSE(seen_sizes.empty());
  for (int64_t n : seen_sizes) {
    EXPECT_EQ(n, 4) << "forward saw an unpadded batch";
  }
  // Sequential act() calls flush as batches of 1 real + 3 padding rows.
  EXPECT_GE(server.metrics().counter("serve/padded_rows"), 6 * 3);
}

TEST(PolicyServerTest, OversizedBatchesServeUnpaddedPastLargestBucket) {
  // A flush bigger than every bucket runs at its natural size: bucket_for
  // falls through rather than truncating work.
  std::mutex mu;
  std::vector<int64_t> seen_sizes;
  PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = 8;
  cfg.batcher.max_queue_delay = 50ms;  // wide window: coalesce the burst
  cfg.pad_batches = true;
  cfg.batch_buckets = {2};
  PolicyServer server(
      [&](int) { return std::make_unique<RowEchoEngine>(&mu, &seen_sizes); },
      cfg);
  server.start();

  std::vector<std::future<ActResult>> futs;
  for (int i = 0; i < 6; ++i) {
    futs.push_back(server.act_async(obs1(static_cast<float>(i))));
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(futs[static_cast<size_t>(i)].get().action.scalar_value(),
                    10.0f * i);
  }
  server.shutdown();
  for (int64_t n : seen_sizes) {
    EXPECT_TRUE(n == 2 || n > 2) << "batch of " << n;
  }
}

// --- per-request-class precision routing -------------------------------------

TEST(RequestClassConfigTest, ParsesPrecisionAndDeadline) {
  serve::RequestClassConfig rc = serve::RequestClassConfig::from_json(
      Json::parse(R"({"precision": "int8", "deadline_us": 5000})"));
  EXPECT_EQ(rc.precision, serve::Precision::kInt8);
  EXPECT_EQ(rc.deadline.count(), 5000);
  serve::RequestClassConfig defaults =
      serve::RequestClassConfig::from_json(Json::parse(R"({})"));
  EXPECT_EQ(defaults.precision, serve::Precision::kFp32);
  EXPECT_EQ(defaults.deadline.count(), 0);  // inherit the server default
  EXPECT_THROW(serve::RequestClassConfig::from_json(
                   Json::parse(R"({"precision": "fp16"})")),
               ValueError);
}

TEST(PolicyServerTest, RoutesRequestClassesToQuantizedVariant) {
  SpacePtr obs_space = FloatBox(Shape{4});
  SpacePtr act_space = IntBox(3);
  DQNAgent trainer(serve_dqn_config(), obs_space, act_space);
  trainer.build();
  Rng rng(3);
  std::vector<float> cal(8 * 4);
  for (float& x : cal) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  trainer.enable_quantized_actions({Tensor::from_floats(Shape{8, 4}, cal)});

  PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = 8;
  cfg.batcher.max_queue_delay = 1ms;
  serve::RequestClassConfig realtime;
  realtime.precision = serve::Precision::kInt8;
  cfg.request_classes["realtime"] = realtime;
  cfg.request_classes["batch"] = serve::RequestClassConfig{};
  PolicyServer server(serve_dqn_config(), obs_space, act_space, cfg);
  server.store().publish_quantized(trainer.get_weights(),
                                   trainer.export_weights_quantized());
  server.start();

  std::vector<float> v(4);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  Tensor obs = Tensor::from_floats(Shape{4}, v);
  ActResult rt = server.act_async(obs, "realtime").get();
  EXPECT_EQ(rt.served_precision, serve::Precision::kInt8);
  EXPECT_EQ(rt.policy_version, 1);
  // The int8 answer is the trainer's own quantized plan's answer.
  Tensor want = trainer.get_actions_quantized(obs.reshaped(Shape{1, 4}));
  EXPECT_EQ(static_cast<int32_t>(rt.action.scalar_value()), want.to_ints()[0]);

  ActResult bt = server.act_async(obs, "batch").get();
  EXPECT_EQ(bt.served_precision, serve::Precision::kFp32);
  EXPECT_EQ(bt.policy_version, 1);

  EXPECT_THROW(server.act_async(obs, "no-such-class"), NotFoundError);
  server.shutdown();
  EXPECT_GE(server.metrics().counter("serve/quantized_serves"), 1);
  EXPECT_EQ(server.metrics().counter("serve/quantized_fallbacks"), 0);
  EXPECT_EQ(server.metrics().gauge("serve/quantized_policy_version"), 1);
}

TEST(PolicyServerTest, Int8FallsBackToFp32WithoutQuantizedVariant) {
  SpacePtr obs_space = FloatBox(Shape{4});
  SpacePtr act_space = IntBox(3);
  DQNAgent trainer(serve_dqn_config(), obs_space, act_space);
  trainer.build();

  PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = 8;
  cfg.batcher.max_queue_delay = 1ms;
  cfg.default_precision = serve::Precision::kInt8;
  PolicyServer server(serve_dqn_config(), obs_space, act_space, cfg);
  server.store().publish(trainer.get_weights());  // fp32 only
  server.start();

  Rng rng(9);
  std::vector<float> v(4);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  ActResult r = server.act(Tensor::from_floats(Shape{4}, v));
  // No quantized variant published: the request is served fp32 and counted
  // as a fallback, never failed.
  EXPECT_EQ(r.served_precision, serve::Precision::kFp32);
  EXPECT_EQ(r.policy_version, 1);
  server.shutdown();
  EXPECT_GE(server.metrics().counter("serve/quantized_fallbacks"), 1);
  EXPECT_EQ(server.metrics().counter("serve/quantized_serves"), 0);
}

TEST(PolicyServerTest, RejectsMalformedObservationsAtAdmission) {
  SpacePtr obs_space = FloatBox(Shape{4});
  SpacePtr act_space = IntBox(3);
  PolicyServerConfig cfg;
  cfg.num_shards = 1;
  PolicyServer server(serve_dqn_config(), obs_space, act_space, cfg);
  server.start();
  EXPECT_THROW(server.act(Tensor::from_floats(Shape{5}, {1, 2, 3, 4, 5})),
               ValueError);
  EXPECT_THROW(server.act(Tensor::from_floats(Shape{1, 4}, {1, 2, 3, 4})),
               ValueError);
  server.shutdown();
}

// --- tensor batching primitives ----------------------------------------------

TEST(BatchingPrimitivesTest, StackUnstackRoundTrip) {
  std::vector<Tensor> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(Tensor::from_floats(
        Shape{2}, {static_cast<float>(i), static_cast<float>(10 * i)}));
  }
  Tensor stacked = stack_leading(parts);
  EXPECT_EQ(stacked.shape(), (Shape{3, 2}));
  std::vector<Tensor> back = unstack_leading(stacked);
  ASSERT_EQ(back.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(back[i].equals(parts[i]));
}

TEST(BatchingPrimitivesTest, StackRejectsMismatchedParts) {
  std::vector<Tensor> parts;
  parts.push_back(Tensor::from_floats(Shape{2}, {1, 2}));
  parts.push_back(Tensor::from_floats(Shape{3}, {1, 2, 3}));
  EXPECT_THROW(stack_leading(parts), ValueError);
  EXPECT_THROW(stack_leading({}), ValueError);
}

// --- continuous-control serving ----------------------------------------------
//
// The SAC serve path: a trainer publishes weights, the server answers with
// deterministic squashed-mean actions. Dense forward passes are row-wise
// independent, so a served action must be BITWISE identical to the trainer's
// greedy action for the same observation regardless of how requests coalesce
// — exercised here at batch sizes 1, 4 and 16 against the padded-bucket
// shape-specialized plans.

Json serve_sac_config() {
  return Json::parse(R"({
    "type": "sac",
    "network": [{"type": "dense", "units": 16, "activation": "relu"},
                {"type": "dense", "units": 16, "activation": "relu"}],
    "memory": {"capacity": 256},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "update": {"batch_size": 16, "min_records": 32},
    "seed": 21
  })");
}

TEST(PolicyServerTest, SacMeanActionsMatchTrainerGreedyAcrossBatchSizes) {
  SpacePtr obs_space = FloatBox(Shape{3});
  SpacePtr act_space = FloatBox(Shape{1}, {-2.0}, {2.0});

  SacAgent trainer(serve_sac_config(), obs_space, act_space);
  trainer.build();

  PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = 16;
  cfg.batcher.max_queue_delay = 10ms;  // lets concurrent requests coalesce
  cfg.pad_batches = true;
  cfg.batch_buckets = {1, 4, 16};  // the shape-specialized plan sizes
  PolicyServer server(serve_sac_config(), obs_space, act_space, cfg);
  server.store().publish(trainer.get_weights());
  server.start();

  Rng rng(77);
  std::vector<Tensor> observations;
  for (int i = 0; i < 16; ++i) {
    std::vector<float> v(3);
    for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    observations.push_back(Tensor::from_floats(Shape{3}, v));
  }
  // Reference: greedy actions for the full stacked batch in one plan run.
  Tensor want = trainer.get_actions(stack_leading(observations),
                                    /*explore=*/false);
  ASSERT_EQ(want.shape(), (Shape{16, 1}));

  for (int concurrency : {1, 4, 16}) {
    std::vector<Tensor> got(16);
    for (int base = 0; base < 16; base += concurrency) {
      std::vector<std::thread> threads;
      for (int k = 0; k < concurrency; ++k) {
        threads.emplace_back([&, base, k] {
          got[static_cast<size_t>(base + k)] =
              server.act(observations[static_cast<size_t>(base + k)]).action;
        });
      }
      for (auto& t : threads) t.join();
    }
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(got[static_cast<size_t>(i)].shape(), (Shape{1}))
          << "concurrency " << concurrency << " obs " << i;
      // Bitwise: float equality, no tolerance.
      EXPECT_EQ(got[static_cast<size_t>(i)].to_floats()[0],
                want.data<float>()[i])
          << "concurrency " << concurrency << " obs " << i;
    }
  }
  server.shutdown();
}

}  // namespace
}  // namespace rlgraph
