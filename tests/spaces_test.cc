// Tests for spaces: boxes, containers, ranks, sampling, flatten/unflatten
// round-trips (parameterized across space structures), and JSON parsing.
#include <gtest/gtest.h>

#include "spaces/nested.h"
#include "spaces/space.h"

namespace rlgraph {
namespace {

TEST(BoxSpaceTest, FloatBoxBasics) {
  SpacePtr s = FloatBox(Shape{3, 4}, 0.0, 1.0);
  const auto& box = static_cast<const BoxSpace&>(*s);
  EXPECT_EQ(box.dtype(), DType::kFloat32);
  EXPECT_EQ(box.value_shape(), (Shape{3, 4}));
  EXPECT_EQ(box.full_shape(), (Shape{3, 4}));
  EXPECT_FALSE(s->has_batch_rank());
}

TEST(BoxSpaceTest, RanksAddUnknownLeadingDims) {
  SpacePtr s = FloatBox(Shape{5})->with_batch_rank();
  const auto& box = static_cast<const BoxSpace&>(*s);
  EXPECT_EQ(box.full_shape(), (Shape{kUnknownDim, 5}));
  SpacePtr st = s->with_time_rank();
  EXPECT_EQ(static_cast<const BoxSpace&>(*st).full_shape(),
            (Shape{kUnknownDim, kUnknownDim, 5}));
  EXPECT_TRUE(st->has_batch_rank());
  EXPECT_TRUE(st->has_time_rank());
}

TEST(BoxSpaceTest, IntBoxCategorical) {
  SpacePtr s = IntBox(6);
  const auto& box = static_cast<const BoxSpace&>(*s);
  EXPECT_EQ(box.num_categories(), 6);
  EXPECT_EQ(box.dtype(), DType::kInt32);
  EXPECT_THROW(IntBox(0), ValueError);
}

TEST(BoxSpaceTest, SampleRespectsBoundsAndShape) {
  Rng rng(5);
  SpacePtr s = FloatBox(Shape{4}, -1.0, 1.0)->with_batch_rank();
  NestedTensor v = s->sample(rng, 8);
  EXPECT_EQ(v.tensor().shape(), (Shape{8, 4}));
  EXPECT_TRUE(s->contains(v));

  SpacePtr a = IntBox(3)->with_batch_rank();
  NestedTensor av = a->sample(rng, 100);
  for (int64_t i = 0; i < 100; ++i) {
    int32_t x = av.tensor().data<int32_t>()[i];
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 3);
  }
  EXPECT_TRUE(a->contains(av));
}

TEST(BoxSpaceTest, PerDimensionBounds) {
  SpacePtr s = FloatBox(Shape{3}, {-2.0, 0.0, 1.0}, {2.0, 1.0, 5.0});
  const auto& box = static_cast<const BoxSpace&>(*s);
  ASSERT_TRUE(box.per_dim_bounds());
  EXPECT_EQ(box.low(0), -2.0);
  EXPECT_EQ(box.high(1), 1.0);
  EXPECT_EQ(box.low(2), 1.0);

  // One vector element per flattened value element, lows <= highs.
  EXPECT_THROW(FloatBox(Shape{3}, {-1.0, -1.0}, {1.0, 1.0, 1.0}), ValueError);
  EXPECT_THROW(FloatBox(Shape{2}, {-1.0, 2.0}, {1.0, 1.0}), ValueError);

  // contains() and sample() honor each dimension's own range.
  Rng rng(9);
  NestedTensor v = s->with_batch_rank()->sample(rng, 50);
  EXPECT_TRUE(s->with_batch_rank()->contains(v));
  for (int64_t i = 0; i < 50; ++i) {
    for (int64_t d = 0; d < 3; ++d) {
      float x = v.tensor().data<float>()[i * 3 + d];
      EXPECT_GE(x, box.low(d)) << "row " << i << " dim " << d;
      EXPECT_LE(x, box.high(d)) << "row " << i << " dim " << d;
    }
  }
  EXPECT_FALSE(s->contains(
      NestedTensor(Tensor::from_floats(Shape{3}, {0.0f, 0.5f, 0.5f}))))
      << "0.5 is below dim 2's low of 1.0";
}

TEST(BoxSpaceTest, PerDimensionBoundsEqualityAndJson) {
  SpacePtr a = FloatBox(Shape{2}, {-2.0, -1.0}, {2.0, 3.0});
  SpacePtr b = FloatBox(Shape{2}, {-2.0, -1.0}, {2.0, 3.0});
  SpacePtr c = FloatBox(Shape{2}, {-2.0, -1.0}, {2.0, 4.0});
  SpacePtr scalar_bounds = FloatBox(Shape{2}, -2.0, 3.0);
  EXPECT_TRUE(a->equals(*b));
  EXPECT_FALSE(a->equals(*c));
  EXPECT_FALSE(a->equals(*scalar_bounds));

  SpacePtr rebuilt = Space::from_json(a->to_json());
  EXPECT_TRUE(a->equals(*rebuilt))
      << a->to_string() << " vs " << rebuilt->to_string();
  const auto& box = static_cast<const BoxSpace&>(*rebuilt);
  EXPECT_TRUE(box.per_dim_bounds());
  EXPECT_EQ(box.high(1), 3.0);

  SpacePtr parsed = Space::from_json(Json::parse(
      R"({"type": "float", "shape": [2], "low": [-2.0, -1.0],
          "high": [2.0, 3.0]})"));
  EXPECT_TRUE(a->equals(*parsed));
}

TEST(BoxSpaceTest, ContainsRejectsViolations) {
  SpacePtr s = FloatBox(Shape{2}, 0.0, 1.0);
  EXPECT_TRUE(s->contains(NestedTensor(
      Tensor::from_floats(Shape{2}, {0.5f, 0.9f}))));
  EXPECT_FALSE(s->contains(NestedTensor(
      Tensor::from_floats(Shape{2}, {0.5f, 1.5f}))));  // out of bounds
  EXPECT_FALSE(s->contains(NestedTensor(
      Tensor::from_floats(Shape{3}, {0, 0, 0}))));  // wrong shape
  EXPECT_FALSE(s->contains(NestedTensor(
      Tensor::from_ints(Shape{2}, {0, 1}))));  // wrong dtype
}

TEST(DictSpaceTest, OrderingAndLookup) {
  SpacePtr s = Dict({{"zebra", FloatBox(Shape{1})},
                     {"apple", IntBox(4)}});
  const auto& d = static_cast<const DictSpace&>(*s);
  // Keys sorted.
  EXPECT_EQ(d.entries()[0].first, "apple");
  EXPECT_EQ(d.entries()[1].first, "zebra");
  EXPECT_TRUE(d.at("apple")->is_box());
  EXPECT_THROW(d.at("missing"), NotFoundError);
  EXPECT_THROW(Dict({{"a", FloatBox()}, {"a", FloatBox()}}), ValueError);
}

TEST(DictSpaceTest, PaperListingOneActionSpace) {
  // "Dict space: 1 discrete, 1 continuous action" (paper Listing 1).
  SpacePtr action = Dict({{"discrete", IntBox(4)},
                          {"cont", FloatBox(Shape{})}})
                        ->with_batch_rank();
  Rng rng(1);
  NestedTensor sample = action->sample(rng, 3);
  EXPECT_TRUE(action->contains(sample));
  auto leaves = sample.flatten();
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(leaves[0].first, "cont");
  EXPECT_EQ(leaves[1].first, "discrete");
}

// Parameterized flatten/unflatten round-trip across structures.
struct SpaceCase {
  std::string name;
  SpacePtr space;
};
class SpaceRoundTripTest : public ::testing::TestWithParam<SpaceCase> {};

TEST_P(SpaceRoundTripTest, FlattenUnflattenRoundTrips) {
  SpacePtr space = GetParam().space->with_batch_rank();
  Rng rng(11);
  NestedTensor v = space->sample(rng, 4);
  auto leaves = v.flatten();
  NestedTensor rebuilt = NestedTensor::unflatten(*space, leaves);
  auto leaves2 = rebuilt.flatten();
  ASSERT_EQ(leaves.size(), leaves2.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(leaves[i].first, leaves2[i].first);
    EXPECT_TRUE(leaves[i].second.equals(leaves2[i].second));
  }
  EXPECT_TRUE(space->contains(rebuilt));
}

TEST_P(SpaceRoundTripTest, JsonRoundTrips) {
  SpacePtr space = GetParam().space;
  SpacePtr rebuilt = Space::from_json(space->to_json());
  EXPECT_TRUE(space->equals(*rebuilt))
      << space->to_string() << " vs " << rebuilt->to_string();
}

TEST_P(SpaceRoundTripTest, FlattenOrderMatchesSpaceFlatten) {
  SpacePtr space = GetParam().space->with_batch_rank();
  std::vector<std::pair<std::string, SpacePtr>> space_leaves;
  space->flatten(&space_leaves);
  Rng rng(2);
  auto value_leaves = space->sample(rng, 2).flatten();
  ASSERT_EQ(space_leaves.size(), value_leaves.size());
  for (size_t i = 0; i < space_leaves.size(); ++i) {
    EXPECT_EQ(space_leaves[i].first, value_leaves[i].first);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structures, SpaceRoundTripTest,
    ::testing::Values(
        SpaceCase{"box", FloatBox(Shape{3})},
        SpaceCase{"scalar_box", FloatBox()},
        SpaceCase{"int_box", IntBox(5, Shape{2})},
        SpaceCase{"bool_box", BoolBox(Shape{4})},
        SpaceCase{"flat_dict",
                  Dict({{"a", FloatBox(Shape{2})}, {"b", IntBox(3)}})},
        SpaceCase{"nested_dict",
                  Dict({{"outer",
                         Dict({{"x", FloatBox(Shape{2})},
                               {"y", BoolBox()}})},
                        {"z", IntBox(2)}})},
        SpaceCase{"tuple", Tuple({FloatBox(Shape{2}), IntBox(4)})},
        SpaceCase{"dict_of_tuple",
                  Dict({{"t", Tuple({FloatBox(), FloatBox(Shape{3})})}})}),
    [](const ::testing::TestParamInfo<SpaceCase>& info) {
      return info.param.name;
    });

TEST(SpaceJsonTest, ParsesDeclaredSpecs) {
  SpacePtr s = Space::from_json(Json::parse(
      R"({"type": "float", "shape": [84, 84, 4], "low": 0, "high": 1,
          "add_batch_rank": true})"));
  const auto& box = static_cast<const BoxSpace&>(*s);
  EXPECT_EQ(box.value_shape(), (Shape{84, 84, 4}));
  EXPECT_TRUE(s->has_batch_rank());

  SpacePtr d = Space::from_json(Json::parse(
      R"({"type": "dict", "spaces": {"discrete": {"type": "int",
          "num_categories": 6}, "cont": {"type": "float"}}})"));
  EXPECT_TRUE(d->is_container());
  EXPECT_THROW(Space::from_json(Json::parse(R"({"type": "quaternion"})")),
               ConfigError);
}

TEST(NestedTensorTest, DictAccess) {
  NestedTensor v = NestedTensor::dict(
      {{"b", NestedTensor(Tensor::scalar(2.0f))},
       {"a", NestedTensor(Tensor::scalar(1.0f))}});
  EXPECT_DOUBLE_EQ(v.at("a").tensor().scalar_value(), 1.0);
  EXPECT_DOUBLE_EQ(v.at("b").tensor().scalar_value(), 2.0);
  EXPECT_THROW(v.at("c"), NotFoundError);
  EXPECT_THROW(v.tensor(), ValueError);
}

TEST(NestedTensorTest, UnflattenValidatesLeafCount) {
  SpacePtr s = Dict({{"a", FloatBox()}, {"b", FloatBox()}});
  std::vector<std::pair<std::string, Tensor>> too_few{
      {"a", Tensor::scalar(1.0f)}};
  EXPECT_THROW(NestedTensor::unflatten(*s, too_few), ValueError);
}

TEST(SpaceTest, ZerosProducesContainedValue) {
  SpacePtr s = Dict({{"img", FloatBox(Shape{2, 2}, 0, 1)},
                     {"d", IntBox(3)}})
                   ->with_batch_rank();
  NestedTensor z = s->zeros(3);
  EXPECT_TRUE(s->contains(z));
  EXPECT_DOUBLE_EQ(z.at("img").tensor().at_flat(0), 0.0);
}

}  // namespace
}  // namespace rlgraph
