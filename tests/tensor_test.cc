// Tests for Shape and Tensor.
#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace rlgraph {
namespace {

TEST(ShapeTest, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.num_elements(), 24);
  EXPECT_TRUE(s.fully_specified());
  EXPECT_FALSE(s.is_scalar());
  EXPECT_TRUE(Shape{}.is_scalar());
  EXPECT_EQ(Shape{}.num_elements(), 1);
}

TEST(ShapeTest, PartialShapes) {
  Shape s{kUnknownDim, 5};
  EXPECT_FALSE(s.fully_specified());
  EXPECT_THROW(s.num_elements(), ValueError);
  EXPECT_TRUE(s.matches(Shape{7, 5}));
  EXPECT_TRUE(s.matches(Shape{1, 5}));
  EXPECT_FALSE(s.matches(Shape{7, 6}));
  EXPECT_FALSE(s.matches(Shape{5}));
}

TEST(ShapeTest, Manipulation) {
  Shape s{3, 4};
  EXPECT_EQ(s.prepend(2), (Shape{2, 3, 4}));
  EXPECT_EQ(s.with_dim(0, 9), (Shape{9, 4}));
  EXPECT_EQ(s.concat(Shape{5}), (Shape{3, 4, 5}));
  EXPECT_EQ(s.drop_front(1), (Shape{4}));
  EXPECT_EQ(s.drop_front(2), Shape{});
  EXPECT_THROW(s.drop_front(3), ValueError);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ((Shape{kUnknownDim, 3}).to_string(), "(?, 3)");
  EXPECT_EQ(Shape{}.to_string(), "()");
}

TEST(ShapeTest, Broadcasting) {
  EXPECT_EQ(broadcast_shapes(Shape{2, 3}, Shape{2, 3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shapes(Shape{2, 3}, Shape{3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shapes(Shape{2, 1}, Shape{1, 5}), (Shape{2, 5}));
  EXPECT_EQ(broadcast_shapes(Shape{}, Shape{4, 4}), (Shape{4, 4}));
  EXPECT_EQ(broadcast_shapes(Shape{kUnknownDim, 3}, Shape{3}),
            (Shape{kUnknownDim, 3}));
  EXPECT_THROW(broadcast_shapes(Shape{2}, Shape{3}), ValueError);
}

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t = Tensor::zeros(DType::kFloat32, Shape{2, 2});
  EXPECT_EQ(t.num_elements(), 4);
  EXPECT_EQ(t.byte_size(), 16u);
  t.mutable_data<float>()[3] = 7.0f;
  EXPECT_FLOAT_EQ(t.data<float>()[3], 7.0f);
  EXPECT_DOUBLE_EQ(t.at_flat(3), 7.0);
  EXPECT_THROW(t.data<int32_t>(), ValueError);
}

TEST(TensorTest, ScalarFactories) {
  EXPECT_DOUBLE_EQ(Tensor::scalar(2.5f).scalar_value(), 2.5);
  EXPECT_DOUBLE_EQ(Tensor::scalar_int(-3).scalar_value(), -3.0);
  EXPECT_DOUBLE_EQ(Tensor::scalar_bool(true).scalar_value(), 1.0);
  EXPECT_THROW(Tensor::zeros(DType::kFloat32, Shape{2}).scalar_value(),
               ValueError);
}

TEST(TensorTest, FromVectors) {
  Tensor f = Tensor::from_floats(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(f.data<float>()[2], 3.0f);
  Tensor i = Tensor::from_ints(Shape{3}, {5, 6, 7});
  EXPECT_EQ(i.data<int32_t>()[1], 6);
  Tensor b = Tensor::from_bools(Shape{2}, {true, false});
  EXPECT_EQ(b.data<uint8_t>()[0], 1);
  EXPECT_THROW(Tensor::from_floats(Shape{2}, {1, 2, 3}), ValueError);
}

TEST(TensorTest, SharedBufferSemanticsAndClone) {
  Tensor a = Tensor::from_floats(Shape{2}, {1, 2});
  Tensor b = a;  // shares the buffer
  b.mutable_data<float>()[0] = 9.0f;
  EXPECT_FLOAT_EQ(a.data<float>()[0], 9.0f);
  Tensor c = a.clone();
  c.mutable_data<float>()[0] = 5.0f;
  EXPECT_FLOAT_EQ(a.data<float>()[0], 9.0f);
}

TEST(TensorTest, Reshape) {
  Tensor t = Tensor::from_floats(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(r.data<float>()[4], 5.0f);  // same underlying order
  EXPECT_THROW(t.reshaped(Shape{4}), ValueError);
}

TEST(TensorTest, Cast) {
  Tensor f = Tensor::from_floats(Shape{3}, {1.7f, -2.3f, 0.0f});
  Tensor i = f.cast(DType::kInt32);
  EXPECT_EQ(i.to_ints(), (std::vector<int32_t>{1, -2, 0}));
  Tensor b = Tensor::from_bools(Shape{2}, {true, false});
  Tensor bf = b.cast(DType::kFloat32);
  EXPECT_FLOAT_EQ(bf.data<float>()[0], 1.0f);
}

TEST(TensorTest, EqualsAndAllClose) {
  Tensor a = Tensor::from_floats(Shape{2}, {1.0f, 2.0f});
  Tensor b = Tensor::from_floats(Shape{2}, {1.0f, 2.0f});
  Tensor c = Tensor::from_floats(Shape{2}, {1.0f, 2.000001f});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_TRUE(a.all_close(c, 1e-5));
  EXPECT_FALSE(a.all_close(Tensor::from_floats(Shape{2}, {1.0f, 3.0f})));
  EXPECT_FALSE(a.all_close(Tensor::from_floats(Shape{1, 2}, {1.0f, 2.0f})));
}

TEST(TensorTest, BoolAccessibleAsUint8) {
  Tensor b = Tensor::from_bools(Shape{2}, {true, false});
  EXPECT_EQ(b.data<uint8_t>()[0], 1);  // kBool readable as uint8
}

TEST(TensorTest, ZeroElementTensor) {
  Tensor t = Tensor::zeros(DType::kFloat32, Shape{0, 4});
  EXPECT_EQ(t.num_elements(), 0);
  EXPECT_TRUE(t.equals(t.clone()));
}

TEST(TensorTest, StackLeadingRejectsMismatchedParts) {
  std::vector<Tensor> dtype_mismatch{
      Tensor::from_floats(Shape{2}, {1.0f, 2.0f}),
      Tensor::from_ints(Shape{2}, {3, 4}),
  };
  EXPECT_THROW(stack_leading(dtype_mismatch), ValueError);
  std::vector<Tensor> shape_mismatch{
      Tensor::from_floats(Shape{2}, {1.0f, 2.0f}),
      Tensor::from_floats(Shape{3}, {3.0f, 4.0f, 5.0f}),
  };
  EXPECT_THROW(stack_leading(shape_mismatch), ValueError);
  EXPECT_THROW(stack_leading({}), ValueError);
}

TEST(TensorTest, StackLeadingRankOneAndSinglePart) {
  // Rank-1 parts stack into a matrix.
  Tensor m = stack_leading({Tensor::from_floats(Shape{2}, {1.0f, 2.0f}),
                            Tensor::from_floats(Shape{2}, {3.0f, 4.0f})});
  EXPECT_EQ(m.shape(), (Shape{2, 2}));
  EXPECT_EQ(m.to_floats(), (std::vector<float>{1, 2, 3, 4}));
  // A single part just gains a leading batch dim of 1.
  Tensor one = stack_leading({Tensor::from_ints(Shape{3}, {7, 8, 9})});
  EXPECT_EQ(one.dtype(), DType::kInt32);
  EXPECT_EQ(one.shape(), (Shape{1, 3}));
  EXPECT_EQ(one.to_ints(), (std::vector<int32_t>{7, 8, 9}));
  // Scalar parts stack into a vector.
  Tensor v = stack_leading({Tensor::scalar(1.5f), Tensor::scalar(2.5f)});
  EXPECT_EQ(v.shape(), Shape{2});
  EXPECT_EQ(v.to_floats(), (std::vector<float>{1.5f, 2.5f}));
}

TEST(TensorTest, UnstackLeadingEdgeCases) {
  EXPECT_THROW(unstack_leading(Tensor::scalar(1.0f)), ValueError);
  // Rank-1 unstacks into scalars.
  std::vector<Tensor> scalars =
      unstack_leading(Tensor::from_floats(Shape{3}, {1.0f, 2.0f, 3.0f}));
  ASSERT_EQ(scalars.size(), 3u);
  EXPECT_EQ(scalars[1].shape(), Shape{});
  EXPECT_DOUBLE_EQ(scalars[1].scalar_value(), 2.0);
  // Leading dim of zero yields no parts.
  EXPECT_TRUE(
      unstack_leading(Tensor::zeros(DType::kFloat32, Shape{0, 4})).empty());
  // Parts own their storage: mutating the batch later must not alias.
  Tensor batch = Tensor::from_floats(Shape{2, 2}, {1, 2, 3, 4});
  std::vector<Tensor> parts = unstack_leading(batch);
  batch.mutable_data<float>()[0] = 99.0f;
  EXPECT_EQ(parts[0].to_floats(), (std::vector<float>{1, 2}));
}

TEST(TensorTest, StackUnstackRoundTrip) {
  std::vector<Tensor> parts{
      Tensor::from_floats(Shape{2, 2}, {1, 2, 3, 4}),
      Tensor::from_floats(Shape{2, 2}, {5, 6, 7, 8}),
      Tensor::from_floats(Shape{2, 2}, {9, 10, 11, 12}),
  };
  Tensor batch = stack_leading(parts);
  EXPECT_EQ(batch.shape(), (Shape{3, 2, 2}));
  std::vector<Tensor> back = unstack_leading(batch);
  ASSERT_EQ(back.size(), parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    EXPECT_TRUE(back[i].equals(parts[i])) << "part " << i;
  }
  // And the other direction: unstack then stack reproduces the batch.
  EXPECT_TRUE(stack_leading(back).equals(batch));
}

}  // namespace
}  // namespace rlgraph
