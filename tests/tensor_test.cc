// Tests for Shape and Tensor.
#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace rlgraph {
namespace {

TEST(ShapeTest, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.num_elements(), 24);
  EXPECT_TRUE(s.fully_specified());
  EXPECT_FALSE(s.is_scalar());
  EXPECT_TRUE(Shape{}.is_scalar());
  EXPECT_EQ(Shape{}.num_elements(), 1);
}

TEST(ShapeTest, PartialShapes) {
  Shape s{kUnknownDim, 5};
  EXPECT_FALSE(s.fully_specified());
  EXPECT_THROW(s.num_elements(), ValueError);
  EXPECT_TRUE(s.matches(Shape{7, 5}));
  EXPECT_TRUE(s.matches(Shape{1, 5}));
  EXPECT_FALSE(s.matches(Shape{7, 6}));
  EXPECT_FALSE(s.matches(Shape{5}));
}

TEST(ShapeTest, Manipulation) {
  Shape s{3, 4};
  EXPECT_EQ(s.prepend(2), (Shape{2, 3, 4}));
  EXPECT_EQ(s.with_dim(0, 9), (Shape{9, 4}));
  EXPECT_EQ(s.concat(Shape{5}), (Shape{3, 4, 5}));
  EXPECT_EQ(s.drop_front(1), (Shape{4}));
  EXPECT_EQ(s.drop_front(2), Shape{});
  EXPECT_THROW(s.drop_front(3), ValueError);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ((Shape{kUnknownDim, 3}).to_string(), "(?, 3)");
  EXPECT_EQ(Shape{}.to_string(), "()");
}

TEST(ShapeTest, Broadcasting) {
  EXPECT_EQ(broadcast_shapes(Shape{2, 3}, Shape{2, 3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shapes(Shape{2, 3}, Shape{3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shapes(Shape{2, 1}, Shape{1, 5}), (Shape{2, 5}));
  EXPECT_EQ(broadcast_shapes(Shape{}, Shape{4, 4}), (Shape{4, 4}));
  EXPECT_EQ(broadcast_shapes(Shape{kUnknownDim, 3}, Shape{3}),
            (Shape{kUnknownDim, 3}));
  EXPECT_THROW(broadcast_shapes(Shape{2}, Shape{3}), ValueError);
}

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t = Tensor::zeros(DType::kFloat32, Shape{2, 2});
  EXPECT_EQ(t.num_elements(), 4);
  EXPECT_EQ(t.byte_size(), 16u);
  t.mutable_data<float>()[3] = 7.0f;
  EXPECT_FLOAT_EQ(t.data<float>()[3], 7.0f);
  EXPECT_DOUBLE_EQ(t.at_flat(3), 7.0);
  EXPECT_THROW(t.data<int32_t>(), ValueError);
}

TEST(TensorTest, ScalarFactories) {
  EXPECT_DOUBLE_EQ(Tensor::scalar(2.5f).scalar_value(), 2.5);
  EXPECT_DOUBLE_EQ(Tensor::scalar_int(-3).scalar_value(), -3.0);
  EXPECT_DOUBLE_EQ(Tensor::scalar_bool(true).scalar_value(), 1.0);
  EXPECT_THROW(Tensor::zeros(DType::kFloat32, Shape{2}).scalar_value(),
               ValueError);
}

TEST(TensorTest, FromVectors) {
  Tensor f = Tensor::from_floats(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(f.data<float>()[2], 3.0f);
  Tensor i = Tensor::from_ints(Shape{3}, {5, 6, 7});
  EXPECT_EQ(i.data<int32_t>()[1], 6);
  Tensor b = Tensor::from_bools(Shape{2}, {true, false});
  EXPECT_EQ(b.data<uint8_t>()[0], 1);
  EXPECT_THROW(Tensor::from_floats(Shape{2}, {1, 2, 3}), ValueError);
}

TEST(TensorTest, SharedBufferSemanticsAndClone) {
  Tensor a = Tensor::from_floats(Shape{2}, {1, 2});
  Tensor b = a;  // shares the buffer
  b.mutable_data<float>()[0] = 9.0f;
  EXPECT_FLOAT_EQ(a.data<float>()[0], 9.0f);
  Tensor c = a.clone();
  c.mutable_data<float>()[0] = 5.0f;
  EXPECT_FLOAT_EQ(a.data<float>()[0], 9.0f);
}

TEST(TensorTest, Reshape) {
  Tensor t = Tensor::from_floats(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(r.data<float>()[4], 5.0f);  // same underlying order
  EXPECT_THROW(t.reshaped(Shape{4}), ValueError);
}

TEST(TensorTest, Cast) {
  Tensor f = Tensor::from_floats(Shape{3}, {1.7f, -2.3f, 0.0f});
  Tensor i = f.cast(DType::kInt32);
  EXPECT_EQ(i.to_ints(), (std::vector<int32_t>{1, -2, 0}));
  Tensor b = Tensor::from_bools(Shape{2}, {true, false});
  Tensor bf = b.cast(DType::kFloat32);
  EXPECT_FLOAT_EQ(bf.data<float>()[0], 1.0f);
}

TEST(TensorTest, EqualsAndAllClose) {
  Tensor a = Tensor::from_floats(Shape{2}, {1.0f, 2.0f});
  Tensor b = Tensor::from_floats(Shape{2}, {1.0f, 2.0f});
  Tensor c = Tensor::from_floats(Shape{2}, {1.0f, 2.000001f});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_TRUE(a.all_close(c, 1e-5));
  EXPECT_FALSE(a.all_close(Tensor::from_floats(Shape{2}, {1.0f, 3.0f})));
  EXPECT_FALSE(a.all_close(Tensor::from_floats(Shape{1, 2}, {1.0f, 2.0f})));
}

TEST(TensorTest, BoolAccessibleAsUint8) {
  Tensor b = Tensor::from_bools(Shape{2}, {true, false});
  EXPECT_EQ(b.data<uint8_t>()[0], 1);  // kBool readable as uint8
}

TEST(TensorTest, ZeroElementTensor) {
  Tensor t = Tensor::zeros(DType::kFloat32, Shape{0, 4});
  EXPECT_EQ(t.num_elements(), 0);
  EXPECT_TRUE(t.equals(t.clone()));
}

}  // namespace
}  // namespace rlgraph
