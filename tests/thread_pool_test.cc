// Work-stealing pool and data-parallel primitive tests: task completion,
// shard-boundary purity (the determinism contract), caller participation /
// nesting, exception propagation, and the forced-serial path.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace rlgraph {
namespace {

// Every test pins the parallelism it needs and leaves the process serial,
// so test order cannot leak pool state.
struct ParallelismGuard {
  explicit ParallelismGuard(size_t n) { set_global_parallelism(n); }
  ~ParallelismGuard() { set_global_parallelism(1); }
};

TEST(ThreadPoolTest, SubmitRunsTasksAndReturnsValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.post([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, TasksRunOnPoolThreadsNotTheSubmitter) {
  ThreadPool pool(2);
  std::thread::id self = std::this_thread::get_id();
  auto fut = pool.submit([] { return std::this_thread::get_id(); });
  EXPECT_NE(fut.get(), self);
}

TEST(ShardBoundsTest, PureFunctionOfGrainAndN) {
  // The contract behind bitwise reproducibility: boundaries never depend on
  // the configured parallelism.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ParallelismGuard guard(threads);
    ShardBounds b = shard_bounds(100, 1000);
    EXPECT_EQ(b.num_shards, 10);
    EXPECT_EQ(b.shard_size, 100);
  }
}

TEST(ShardBoundsTest, SmallInputsYieldOneShard) {
  ShardBounds b = shard_bounds(1 << 14, 100);
  EXPECT_EQ(b.num_shards, 1);
  EXPECT_EQ(b.shard_size, 100);
  EXPECT_EQ(shard_bounds(16, 0).num_shards, 0);
}

TEST(ShardBoundsTest, ShardCountIsCappedAndCoversRange) {
  for (int64_t n : {int64_t{1}, int64_t{17}, int64_t{1000}, int64_t{1 << 20}}) {
    for (int64_t grain : {int64_t{1}, int64_t{7}, int64_t{256}}) {
      ShardBounds b = shard_bounds(grain, n);
      ASSERT_GE(b.num_shards, 1);
      ASSERT_LE(b.num_shards, 256);
      // Shards tile [0, n) exactly.
      EXPECT_GE(b.num_shards * b.shard_size, n);
      EXPECT_LT((b.num_shards - 1) * b.shard_size, n);
    }
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ParallelismGuard guard(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(64, kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SerialModeCoversEveryIndexExactlyOnce) {
  ParallelismGuard guard(1);  // RLGRAPH_NUM_THREADS=1 equivalent
  constexpr int64_t kN = 10000;
  std::vector<int> hits(kN, 0);  // plain ints: serial path, no pool threads
  parallel_for(64, kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 1);
}

TEST(ParallelForTest, PropagatesFirstException) {
  ParallelismGuard guard(4);
  EXPECT_THROW(parallel_for(1, 1000,
                            [](int64_t begin, int64_t) {
                              if (begin >= 500) {
                                throw std::runtime_error("shard failed");
                              }
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, NestedSectionsDoNotDeadlock) {
  // An inter-op step running an intra-op sharded kernel produces nested
  // parallel sections on pool threads; caller participation must keep this
  // live even when every worker is busy.
  ParallelismGuard guard(4);
  std::atomic<int64_t> total{0};
  parallel_for(1, 8, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      parallel_for(1, 64, [&](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ParallelShardsTest, ShardIndicesMatchBounds) {
  ParallelismGuard guard(4);
  ShardBounds b = shard_bounds(32, 1000);
  ASSERT_GT(b.num_shards, 1);
  std::vector<std::atomic<int>> seen(static_cast<size_t>(b.num_shards));
  parallel_shards(32, 1000, [&](int64_t shard, int64_t begin, int64_t end) {
    EXPECT_EQ(begin, shard * b.shard_size);
    EXPECT_EQ(end, std::min<int64_t>(1000, begin + b.shard_size));
    seen[static_cast<size_t>(shard)].fetch_add(1);
  });
  for (int64_t s = 0; s < b.num_shards; ++s) {
    EXPECT_EQ(seen[static_cast<size_t>(s)].load(), 1);
  }
}

TEST(GlobalPoolTest, RespectsConfiguredParallelism) {
  ParallelismGuard guard(4);
  EXPECT_EQ(global_parallelism(), 4u);
  // The caller participates, so the pool itself runs N-1 workers.
  EXPECT_EQ(global_pool().size(), 3u);
}

}  // namespace
}  // namespace rlgraph
