// Tracing layer tests: disabled-mode cost model, cross-thread ring buffers,
// Chrome trace_event export invariants, and a golden trace for Session::run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "backend/static_context.h"
#include "graph/session.h"
#include "util/json.h"
#include "util/trace.h"

namespace rlgraph {
namespace {

// Every test starts from a clean slate; tracing is process-global state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (trace::collecting()) trace::stop();
    trace::reset();
  }
  void TearDown() override {
    if (trace::collecting()) trace::stop();
    trace::reset();
  }
};

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(trace::enabled());
  {
    trace::TraceSpan span("test", "should_not_exist");
    span.set_detail("ignored");
    span.set_arg("k", 1);
    EXPECT_FALSE(span.active());
  }
  trace::record_span("test", "also_not", trace::TraceClock::now(),
                     trace::TraceClock::now());
  EXPECT_EQ(trace::event_count(), 0);
  Json doc = trace::to_json();
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST_F(TraceTest, StartStopLifecycle) {
  EXPECT_FALSE(trace::collecting());
  trace::start();
  EXPECT_TRUE(trace::collecting());
  EXPECT_TRUE(trace::enabled());
  { trace::TraceSpan span("test", "one"); }
  std::string summary = trace::stop();
  EXPECT_FALSE(trace::collecting());
  EXPECT_FALSE(trace::enabled());
  EXPECT_EQ(trace::event_count(), 1);
  EXPECT_NE(summary.find("one"), std::string::npos);
  // Spans opened after stop() record nothing.
  { trace::TraceSpan span("test", "late"); }
  EXPECT_EQ(trace::event_count(), 1);
  // start() clears the previous collection.
  trace::start();
  EXPECT_EQ(trace::event_count(), 0);
}

TEST_F(TraceTest, SpansNestAndCloseAcrossThreads) {
  trace::start();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        trace::TraceSpan outer("test", "outer");
        {
          trace::TraceSpan inner("test", "inner");
          inner.set_arg("i", i);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  trace::stop();
  EXPECT_EQ(trace::event_count(), kThreads * kSpansPerThread * 2);
  EXPECT_EQ(trace::dropped_events(), 0);

  Json doc = trace::to_json();
  const JsonArray& events = doc.at("traceEvents").as_array();
  std::set<int64_t> tids;
  int outer_count = 0, inner_count = 0;
  for (const Json& e : events) {
    if (e.at("ph").as_string() != "X") continue;
    tids.insert(e.at("tid").as_int());
    const std::string& name = e.at("name").as_string();
    if (name == "outer") ++outer_count;
    if (name == "inner") ++inner_count;
  }
  EXPECT_EQ(outer_count, kThreads * kSpansPerThread);
  EXPECT_EQ(inner_count, kThreads * kSpansPerThread);
  // Each recording thread keeps its own ring and its own trace tid.
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));

  // Nesting must close properly: on any one thread, sorting by start time
  // pairs every outer with an inner fully contained in it.
  for (int64_t tid : tids) {
    double last_outer_end = -1.0;
    for (const Json& e : events) {
      if (e.at("ph").as_string() != "X" || e.at("tid").as_int() != tid) {
        continue;
      }
      double ts = e.at("ts").as_double();
      double end = ts + e.at("dur").as_double();
      if (e.at("name").as_string() == "outer") {
        last_outer_end = end;
      } else {
        ASSERT_GE(last_outer_end, 0.0);
        EXPECT_LE(end, last_outer_end + 1e-6)
            << "inner span leaked past its enclosing outer span";
      }
    }
  }
}

TEST_F(TraceTest, RingOverwritesOldestWithoutBlocking) {
  trace::start();
  const int total = static_cast<int>(trace::kRingCapacity) + 500;
  for (int i = 0; i < total; ++i) {
    trace::TraceSpan span("test", "s");
  }
  trace::stop();
  EXPECT_EQ(trace::event_count(),
            static_cast<int64_t>(trace::kRingCapacity));
  EXPECT_EQ(trace::dropped_events(), 500);
}

TEST_F(TraceTest, ExportedJsonParsesAndEveryXEventIsComplete) {
  const std::string path = "trace_test_out.json";
  trace::start(path);
  {
    trace::TraceSpan span("test", "with_args");
    span.set_arg("batch", 32);
    span.set_arg("version", 7);
    span.set_detail("shape [32, 4]");
  }
  trace::record_span("test", "measured_elsewhere",
                     trace::TraceClock::now() - std::chrono::microseconds(50),
                     trace::TraceClock::now(), "k", 3);
  trace::stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "stop() must write the trace file";
  std::stringstream buf;
  buf << in.rdbuf();
  Json doc = Json::parse(buf.str());  // throws on malformed output
  std::remove(path.c_str());

  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);  // 2 X spans + 1 M thread_name record
  int x_count = 0;
  for (const Json& e : events) {
    const std::string& ph = e.at("ph").as_string();
    ASSERT_TRUE(ph == "X" || ph == "M") << "unexpected phase " << ph;
    EXPECT_GE(e.at("pid").as_int(), 1);
    EXPECT_GE(e.at("tid").as_int(), 1);
    if (ph != "X") continue;
    ++x_count;
    // Complete duration events: matched ts/dur, both non-negative.
    EXPECT_GE(e.at("ts").as_double(), 0.0);
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    EXPECT_TRUE(e.at("cat").is_string());
    if (e.at("name").as_string() == "with_args") {
      const Json& args = e.at("args");
      EXPECT_EQ(args.at("batch").as_int(), 32);
      EXPECT_EQ(args.at("version").as_int(), 7);
      EXPECT_EQ(args.at("detail").as_string(), "shape [32, 4]");
    }
    if (e.at("name").as_string() == "measured_elsewhere") {
      EXPECT_EQ(e.at("args").at("k").as_int(), 3);
      EXPECT_NEAR(e.at("dur").as_double(), 50.0, 25.0);
    }
  }
  EXPECT_EQ(x_count, 2);
}

// Golden trace: running a fixed two-op graph through a fresh Session must
// produce exactly the expected span-name skeleton — compile once, then a
// cache hit, with plan execution and the graph's kernels inside.
TEST_F(TraceTest, GoldenSessionRunSpanSet) {
  VariableStore store;
  Rng rng(1);
  StaticGraphContext ctx(&store, &rng);
  OpRef x = ctx.placeholder("x", DType::kFloat32, Shape{2});
  OpRef y = ctx.mul(ctx.add(x, ctx.scalar(1.0f)), ctx.scalar(2.0f));
  Session session(ctx.graph(), &store, &rng);
  FeedMap feeds;
  feeds[x.node] = Tensor::from_floats(Shape{2}, {1.0f, 2.0f});
  std::vector<Endpoint> fetches{{y.node, y.index}};

  trace::start();
  session.run(fetches, feeds);  // cold: compiles
  session.run(fetches, feeds);  // warm: plan-cache hit
  trace::stop();

  std::set<std::string> names;
  Json doc = trace::to_json();
  for (const Json& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "X") names.insert(e.at("name").as_string());
  }
  const std::set<std::string> expected{
      "session/run", "session/compile", "session/cache_hit",
      "session/execute", "plan/execute", "Add", "Mul"};
  for (const std::string& want : expected) {
    EXPECT_TRUE(names.count(want)) << "missing golden span: " << want;
  }
  // Nothing outside the session/plan/kernel taxonomy appears in a pure
  // Session::run trace.
  for (const std::string& got : names) {
    EXPECT_TRUE(expected.count(got)) << "unexpected span: " << got;
  }
}

}  // namespace
}  // namespace rlgraph
