// Compile-and-link check for the public umbrella header plus a tiny
// integration touching one symbol from each subsystem through it.
#include <gtest/gtest.h>

#include "raylite/object_store.h"
#include "rlgraph.h"

namespace rlgraph {
namespace {

TEST(UmbrellaHeaderTest, OneSymbolPerSubsystem) {
  // spaces / tensor
  SpacePtr space = FloatBox(Shape{2})->with_batch_rank();
  Rng rng(1);
  Tensor t = kernels::random_uniform(Shape{1, 2}, 0, 1, rng);
  EXPECT_TRUE(space->contains(NestedTensor(t)));
  // env
  GridWorld env(GridWorld::Config{});
  EXPECT_EQ(env.num_actions(), 4);
  // components + core
  auto policy = std::make_shared<Policy>(
      "policy", Json::parse(R"([{"type": "dense", "units": 4}])"), IntBox(2),
      PolicyHead::kQValues);
  ComponentTest test(policy,
                     {{"get_q_values", {FloatBox(Shape{3})->with_batch_rank()}}});
  EXPECT_EQ(test.test_with_sampled_inputs("get_q_values", 2)[0].shape(),
            (Shape{2, 2}));
  // execution
  ParameterServer ps;
  EXPECT_EQ(ps.version(), 0);
  DeviceRegistry devices(1);
  EXPECT_TRUE(devices.has_device("/gpu:0"));
  // raylite (via ray_executor include chain)
  raylite::ObjectStore store;
  auto id = store.put(42);
  EXPECT_EQ(*store.get<int>(id), 42);
}

}  // namespace
}  // namespace rlgraph
