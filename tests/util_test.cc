// Tests for the util substrate: JSON, RNG, metrics, serialization, queues,
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/json.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/queues.h"
#include "util/random.h"
#include "util/serialization.h"
#include "util/thread_pool.h"

namespace rlgraph {
namespace {

// --- JSON -------------------------------------------------------------------

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_double(), 3.5);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5E-2").as_double(), -0.025);
  EXPECT_EQ(Json::parse("\"hello\"").as_string(), "hello");
}

TEST(JsonTest, ParsesContainers) {
  Json j = Json::parse(R"({"a": [1, 2, 3], "b": {"c": true}})");
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_EQ(j.at("a").as_array()[1].as_int(), 2);
  EXPECT_TRUE(j.at("b").at("c").as_bool());
}

TEST(JsonTest, ParsesEscapes) {
  Json j = Json::parse(R"("line\nbreak\t\"quoted\" \\ A")");
  EXPECT_EQ(j.as_string(), "line\nbreak\t\"quoted\" \\ A");
}

TEST(JsonTest, ParsesNestedDeep) {
  Json j = Json::parse(R"([[[[1]]], {"x": [{"y": [2]}]}])");
  EXPECT_EQ(j.as_array()[0].as_array()[0].as_array()[0].as_array()[0].as_int(),
            1);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), ConfigError);
  EXPECT_THROW(Json::parse("{"), ConfigError);
  EXPECT_THROW(Json::parse("[1,]"), ConfigError);
  EXPECT_THROW(Json::parse("{\"a\": }"), ConfigError);
  EXPECT_THROW(Json::parse("tru"), ConfigError);
  EXPECT_THROW(Json::parse("1 2"), ConfigError);
  EXPECT_THROW(Json::parse("\"unterminated"), ConfigError);
  EXPECT_THROW(Json::parse("01a"), ConfigError);
}

TEST(JsonTest, ErrorsCarryLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": bad\n}");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonTest, DumpRoundTrips) {
  const std::string text =
      R"({"arr":[1,2.5,null,true],"nested":{"k":"v"},"s":"x\ny"})";
  Json j = Json::parse(text);
  Json j2 = Json::parse(j.dump());
  EXPECT_TRUE(j == j2);
  // Pretty dump also round-trips.
  Json j3 = Json::parse(j.dump(2));
  EXPECT_TRUE(j == j3);
}

TEST(JsonTest, TypedGettersWithDefaults) {
  Json j = Json::parse(R"({"a": 5, "b": "x"})");
  EXPECT_EQ(j.get_int("a", 0), 5);
  EXPECT_EQ(j.get_int("missing", 7), 7);
  EXPECT_EQ(j.get_string("b", ""), "x");
  EXPECT_TRUE(j.get_bool("missing", true));
  EXPECT_THROW(j.at("missing"), NotFoundError);
  EXPECT_THROW(j.at("a").as_string(), ConfigError);
}

TEST(JsonTest, MutationBuildsObjects) {
  Json j;
  j["x"] = Json(1);
  j["y"]["z"] = Json("deep");
  EXPECT_EQ(j.at("x").as_int(), 1);
  EXPECT_EQ(j.at("y").at("z").as_string(), "deep");
}

// --- RNG --------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
  EXPECT_THROW(rng.uniform_int(0), ValueError);
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(3);
  std::vector<double> weights{1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.categorical(weights)];
  }
  double ratio = static_cast<double>(counts[1]) / counts[0];
  EXPECT_NEAR(ratio, 3.0, 0.4);
  EXPECT_THROW(rng.categorical({}), ValueError);
  EXPECT_THROW(rng.categorical({-1.0}), ValueError);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(9);
  Rng b = a.split();
  // Streams should differ immediately.
  bool any_diff = false;
  Rng a2(9);
  Rng b2 = a2.split();
  for (int i = 0; i < 10; ++i) {
    double va = b.uniform(), vb = b2.uniform();
    EXPECT_DOUBLE_EQ(va, vb);  // split is deterministic
    if (va != a.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  double sum = 0, sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(2.0, 0.5);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

// --- Logging -----------------------------------------------------------------

TEST(LoggingTest, LevelFilteringAndRestore) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed levels must not crash and are cheap no-ops.
  RLG_LOG_DEBUG << "hidden " << 1;
  RLG_LOG_INFO << "hidden " << 2.5;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

// --- Metrics ----------------------------------------------------------------

TEST(MetricsTest, SummaryStats) {
  SummaryStats s;
  s.record(1.0);
  s.record(3.0);
  s.record(5.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(8.0 / 3.0), 1e-9);
}

TEST(MetricsTest, RegistryCountersAndTimers) {
  MetricRegistry reg;
  reg.increment("frames", 10);
  reg.increment("frames", 5);
  reg.record_time("act", 0.5);
  EXPECT_EQ(reg.counter("frames"), 15);
  EXPECT_EQ(reg.counter("missing"), 0);
  EXPECT_EQ(reg.timer("act").count(), 1);
  reg.reset();
  EXPECT_EQ(reg.counter("frames"), 0);
}

TEST(MetricsTest, ScopedTimerRecords) {
  MetricRegistry reg;
  { ScopedTimer t(&reg, "scope"); }
  EXPECT_EQ(reg.timer("scope").count(), 1);
}

TEST(MetricsTest, GaugesAreLastWriteWins) {
  MetricRegistry reg;
  EXPECT_DOUBLE_EQ(reg.gauge("staleness"), 0.0);
  reg.set_gauge("staleness", 3.0);
  reg.set_gauge("staleness", 1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("staleness"), 1.5);
  EXPECT_EQ(reg.gauges().size(), 1u);
  EXPECT_NE(reg.report().find("staleness: 1.5"), std::string::npos);
  reg.reset();
  EXPECT_DOUBLE_EQ(reg.gauge("staleness"), 0.0);
}

TEST(MetricsTest, HistogramQuantilesApproximateTheDistribution) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);

  // 1..100 ms uniformly: p50 ~ 50ms, p95 ~ 95ms, p99 ~ 99ms. Log buckets
  // give ~15% relative resolution, so assert within a generous band.
  for (int i = 1; i <= 100; ++i) h.record(i * 1e-3);
  EXPECT_EQ(h.count(), 100);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-6);
  EXPECT_GT(h.p50(), 0.035);
  EXPECT_LT(h.p50(), 0.070);
  EXPECT_GT(h.p95(), 0.075);
  EXPECT_LT(h.p95(), 0.120);
  EXPECT_GE(h.p99(), h.p95());
  EXPECT_DOUBLE_EQ(h.max_seen(), 0.1);

  h.reset();
  EXPECT_EQ(h.count(), 0);
}

TEST(MetricsTest, HistogramHandlesOutOfRangeValues) {
  Histogram h;
  h.record(0.0);     // underflow bucket
  h.record(-5.0);    // underflow bucket
  h.record(1e9);     // overflow bucket
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.max_seen(), 1e9);
  // Quantiles stay within the representable range.
  EXPECT_LE(h.quantile(1.0), Histogram::kMaxValue);
  EXPECT_GE(h.quantile(0.0), 0.0);
}

TEST(MetricsTest, HistogramConcurrentRecordsAllLand) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(1e-4);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(&reg.histogram("lat"), &h);  // stable address
  EXPECT_EQ(reg.histogram_names().size(), 1u);
  EXPECT_NE(reg.report().find("lat: count=20000"), std::string::npos);
}

TEST(MetricsTest, HistogramWindowedSnapshotConsumesDisjointWindows) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i * 1e-3);
  HistogramSnapshot w1 = h.snapshot_window();
  EXPECT_EQ(w1.count, 100);
  EXPECT_NEAR(w1.mean(), 0.0505, 1e-6);
  EXPECT_GT(w1.p50(), 0.035);
  EXPECT_LT(w1.p50(), 0.070);

  // The window was consumed: with nothing recorded since, the next window
  // is empty even though the cumulative distribution is not.
  HistogramSnapshot w2 = h.snapshot_window();
  EXPECT_EQ(w2.count, 0);
  EXPECT_DOUBLE_EQ(w2.p99(), 0.0);

  // Only post-consumption recordings land in the next window — a shifted
  // distribution shows up undiluted by the earlier history...
  for (int i = 0; i < 50; ++i) h.record(1.0);
  HistogramSnapshot w3 = h.snapshot_window();
  EXPECT_EQ(w3.count, 50);
  EXPECT_GT(w3.p50(), 0.5);

  // ...while the cumulative counts keep everything.
  EXPECT_EQ(h.count(), 150);
  HistogramSnapshot total = h.snapshot_total();
  EXPECT_EQ(total.count, 150);
  EXPECT_LT(total.p50(), 0.5);  // dominated by the 100 small samples
}

TEST(MetricsTest, HistogramWindowSurvivesOutOfRangeAndReset) {
  Histogram h;
  h.record(-1.0);  // underflow
  h.record(1e9);   // overflow
  HistogramSnapshot w = h.snapshot_window();
  EXPECT_EQ(w.count, 2);  // under/overflow buckets are part of the window

  h.record(1e-3);
  h.reset();  // reset clears the window baseline along with the counts
  for (int i = 0; i < 5; ++i) h.record(1e-3);
  w = h.snapshot_window();
  EXPECT_EQ(w.count, 5);
  EXPECT_EQ(h.count(), 5);
}

// --- Serialization -----------------------------------------------------------

TEST(SerializationTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_i64(-42);
  w.write_f32(3.25f);
  w.write_f64(-1.5e100);
  w.write_string("hello world");
  ByteReader r(w.take());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -1.5e100);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_TRUE(r.at_end());
}

TEST(SerializationTest, TruncatedStreamThrows) {
  ByteWriter w;
  w.write_u32(7);
  ByteReader r(w.take());
  EXPECT_EQ(r.read_u32(), 7u);
  EXPECT_THROW(r.read_u64(), Error);
}

// --- Queues ------------------------------------------------------------------

TEST(QueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
}

TEST(QueueTest, BoundedBlocksProducerUntilConsumed) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  EXPECT_FALSE(q.try_push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.pop(), 2);
}

TEST(QueueTest, CloseUnblocksAndDrains) {
  BlockingQueue<int> q;
  q.push(5);
  q.close();
  EXPECT_FALSE(q.push(6));
  EXPECT_EQ(*q.pop(), 5);       // drains remaining
  EXPECT_FALSE(q.pop().has_value());  // then signals closed
}

TEST(QueueTest, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(QueueTest, TimedPop) {
  BlockingQueue<int> q;
  // Empty queue: times out instead of blocking forever.
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(5)).has_value());
  q.push(3);
  EXPECT_EQ(*q.pop_for(std::chrono::milliseconds(5)), 3);
  // A late producer wakes the timed waiter.
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(4);
  });
  EXPECT_EQ(*q.pop_for(std::chrono::seconds(10)), 4);
  producer.join();
  q.close();
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(5)).has_value());
}

TEST(QueueTest, ConcurrentProducersConsumers) {
  BlockingQueue<int> q(8);
  std::atomic<int64_t> sum{0};
  const int per_producer = 500;
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= per_producer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) sum.fetch_add(*v);
    });
  }
  for (int p = 0; p < 3; ++p) threads[p].join();
  q.close();
  threads[3].join();
  threads[4].join();
  EXPECT_EQ(sum.load(), 3LL * per_producer * (per_producer + 1) / 2);
}

// --- ThreadPool ----------------------------------------------------------------

TEST(ThreadPoolTest, RunsTasksAndReturnsValues) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

}  // namespace
}  // namespace rlgraph
